#!/usr/bin/env python3
"""Object detection: comparing every search method on Tiny-YOLO-v2.

A real-time detector has a hard latency budget, so the *quality* of the
found configuration matters — and so does the *time to find it*.  This
example pits every selector in the repo against each other on the same
profiled look-up table (paper §VI-B: RL vs Random Search; related work:
PBQP of Anderson & Gregg):

* all-Vanilla and Best Single Library (the no-search baselines),
* greedy per-layer selection (the Fig. 1 trap),
* Random Search at the same episode budget as QS-DNN,
* PBQP (the exact-ish optimization-based competitor),
* QS-DNN (this paper),
* the exact optimum (chain DP — Tiny-YOLO is a chain).

Run:  python examples/object_detection_search_methods.py
"""

from repro import (
    InferenceEngineOptimizer,
    Mode,
    build_network,
    jetson_tx2,
)
from repro.analysis import compare_methods
from repro.analysis.curves import fig4_learning_curve


def main() -> None:
    platform = jetson_tx2()
    network = build_network("tiny_yolo_v2")

    optimizer = InferenceEngineOptimizer(network, platform, mode=Mode.GPGPU, seed=0)
    lut = optimizer.profile()

    comparison = compare_methods(lut, episodes=1000, seed=0)
    print(comparison.render())
    fps = 1000.0 / comparison.qsdnn_ms
    print(
        f"\nQS-DNN's schedule sustains ~{fps:.0f} frames/s on the TX-2 "
        "model\n(the detector is conv-only, so the GPU sweeps the board "
        "here -\ncontrast with MobileNet, where the CPU wins layers back)."
    )

    print("\nLearning curve (Fig. 4 protocol, 1000 episodes):\n")
    print(fig4_learning_curve(lut, episodes=1000, seed=0).render())


if __name__ == "__main__":
    main()
