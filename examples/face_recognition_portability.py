#!/usr/bin/env python3
"""Face recognition across heterogeneous platforms (paper §I, §VI).

An industrial face-recognition pipeline (SphereFace-20 embeddings) must
ship on whatever hardware the customer has.  QS-DNN's promise is that
the *same automatic flow* produces a tuned deployment per platform — no
hand-porting.  This example tunes the network for three targets and
shows how the learned schedules differ:

* Jetson TX-2, GPGPU mode (CPU + GPU),
* Jetson TX-2, CPU mode (a single A57 thread),
* Raspberry Pi 3 (Cortex-A53, CPU only).

Run:  python examples/face_recognition_portability.py
"""

from collections import Counter

from repro import (
    InferenceEngineOptimizer,
    Mode,
    QSDNNSearch,
    SearchConfig,
    best_single_library,
    build_network,
    jetson_tx2,
    raspberry_pi3,
)
from repro.utils.tables import AsciiTable
from repro.utils.units import format_ms


def tune(platform, mode: Mode, seed: int = 0):
    """Run the full two-phase flow for one target."""
    network = build_network("spherenet20")
    optimizer = InferenceEngineOptimizer(network, platform, mode=mode, seed=seed)
    lut = optimizer.profile()
    episodes = max(1000, 25 * len(lut.layers))
    result = QSDNNSearch(lut, SearchConfig(episodes=episodes, seed=seed)).run()
    return lut, result, best_single_library(lut)


def main() -> None:
    targets = [
        ("TX-2 (CPU+GPU)", jetson_tx2(), Mode.GPGPU),
        ("TX-2 (CPU only)", jetson_tx2(), Mode.CPU),
        ("Raspberry Pi 3", raspberry_pi3(), Mode.CPU),
    ]
    table = AsciiTable(
        ["target", "BSL", "QS-DNN", "gain", "library mix"],
        title="SphereFace-20 embedding latency per target platform",
    )
    for label, platform, mode in targets:
        lut, result, bsl = tune(platform, mode)
        mix = Counter(
            lut.meta[uid].library for uid in result.best_assignments.values()
        )
        mix_text = ", ".join(f"{lib}:{n}" for lib, n in mix.most_common())
        table.add_row(
            [
                label,
                f"{bsl.library} {format_ms(bsl.total_ms)}",
                format_ms(result.best_ms),
                f"{bsl.total_ms / result.best_ms:.2f}x",
                mix_text,
            ]
        )
    print(table.render())
    print(
        "\nThe same automatic flow adapts per platform: the GPGPU schedule"
        "\nsplits work between cuDNN and CPU libraries (with cuBLAS for the"
        "\nembedding FC); the CPU-only schedules re-balance between ArmCL,"
        "\nNNPACK and BLAS lowerings according to each core's strengths."
    )


if __name__ == "__main__":
    main()
