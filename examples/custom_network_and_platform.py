#!/usr/bin/env python3
"""Bring your own network and your own board.

Downstream users rarely ship a zoo architecture: this example builds a
custom keyword-spotting-style CNN with the :class:`NetworkBuilder` API,
defines a custom heterogeneous platform (a big-core CPU plus a small
embedded GPU), and runs the identical two-phase flow — nothing in QS-DNN
is specific to the zoo or the TX-2.

Run:  python examples/custom_network_and_platform.py
"""

from repro import (
    InferenceEngineOptimizer,
    Mode,
    NetworkBuilder,
    Platform,
    QSDNNSearch,
    SearchConfig,
    TensorShape,
    best_single_library,
)
from repro.hw import NoiseModel, ProcessorKind, ProcessorModel, TransferModel
from repro.nn.summary import summarize
from repro.utils.units import format_ms


def build_custom_network():
    """A compact audio-spectrogram classifier (1x64x64 input)."""
    b = NetworkBuilder("kws_cnn", TensorShape(1, 64, 64))
    b.conv_bn_relu("stem", out_channels=16, kernel=3, padding=1)
    trunk = b.pool_max("pool1", kernel=2)
    # A small inception-style block: parallel 1x1 / 3x3 paths.
    left = b.conv_bn_relu("block/1x1", out_channels=24, kernel=1, after=trunk)
    right = b.conv_bn_relu("block/3x3", out_channels=24, kernel=3, padding=1,
                           after=trunk)
    merged = b.concat("block/concat", inputs=[left, right])
    b.dw_bn_relu("sep", kernel=3, padding=1, after=merged)
    b.conv_bn_relu("proj", out_channels=64, kernel=1)
    b.global_pool_avg("gap")
    b.fc("logits", out_channels=12)
    b.softmax("prob")
    return b.build()


def build_custom_platform() -> Platform:
    """A hypothetical board: fast CPU core + small GPU, slow interconnect."""
    cpu = ProcessorModel(
        name="big_core", kind=ProcessorKind.CPU,
        peak_gflops=24.0, mem_bandwidth_gbs=10.0, overhead_ms=0.001,
    )
    gpu = ProcessorModel(
        name="small_gpu", kind=ProcessorKind.GPU,
        peak_gflops=200.0, mem_bandwidth_gbs=15.0, overhead_ms=0.060,
    )
    return Platform(
        name="custom_board",
        processors=(cpu, gpu),
        transfer=TransferModel(latency_ms=0.080, bandwidth_gbs=2.0),
        noise=NoiseModel(sigma=0.02),
    )


def main() -> None:
    network = build_custom_network()
    platform = build_custom_platform()
    print(summarize(network))
    print()

    optimizer = InferenceEngineOptimizer(network, platform, mode=Mode.GPGPU, seed=0)
    lut = optimizer.profile()
    result = QSDNNSearch(lut, SearchConfig(episodes=800, seed=0)).run()
    deployment = optimizer.deploy(result.schedule())
    bsl = best_single_library(lut)

    print(deployment.render())
    print(
        f"\nBSL ({bsl.library}): {format_ms(bsl.total_ms)}  ->  "
        f"QS-DNN: {format_ms(result.best_ms)} "
        f"({bsl.total_ms / result.best_ms:.2f}x)"
    )
    print(
        "\nWith an 80 us transfer latency, the agent keeps this small "
        "network on the CPU\nunless a layer is big enough to amortize the "
        "trip - tune the TransferModel\nand watch the schedule flip."
    )


if __name__ == "__main__":
    main()
