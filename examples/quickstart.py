#!/usr/bin/env python3
"""Quickstart: optimize LeNet-5's inference on a Jetson TX-2.

The full QS-DNN flow in ~30 lines:

1. model the platform and pick a network,
2. phase 1 — profile every primitive type on the (simulated) board,
3. phase 2 — run the Q-learning search over the resulting look-up table,
4. deploy the learned schedule and compare it against the baselines.

Run:  python examples/quickstart.py
"""

from repro import (
    InferenceEngineOptimizer,
    Mode,
    QSDNNSearch,
    SearchConfig,
    best_single_library,
    build_network,
    jetson_tx2,
)
from repro.utils.units import format_ms, format_speedup


def main() -> None:
    platform = jetson_tx2()
    network = build_network("lenet5")
    print(f"Platform: {platform}")
    print(f"Network : {network}\n")

    # Phase 1: the inference engine optimizer benchmarks each primitive
    # type on the board and builds the latency look-up table.
    optimizer = InferenceEngineOptimizer(network, platform, mode=Mode.GPGPU, seed=0)
    lut = optimizer.profile()
    report = optimizer.profiling_report
    space_log10 = optimizer.space.space_size_log10(network)
    print(
        f"Profiled {report.network_inferences} network passes + "
        f"{report.compatibility_passes} compatibility pass "
        f"(the exhaustive alternative: ~10^{space_log10:.0f} configurations)"
    )

    # Phase 2: Q-learning search over the LUT (paper defaults: lr=0.05,
    # gamma=0.9, replay 128, 50%-exploration epsilon schedule).
    result = QSDNNSearch(lut, SearchConfig(episodes=500, seed=0)).run()
    print(f"\nSearch: {result.summary()}")

    # Deploy: measure the learned schedule end-to-end on the board.
    deployment = optimizer.deploy(result.schedule())
    print()
    print(deployment.render())

    # Compare against the industry default: one good library everywhere.
    bsl = best_single_library(lut)
    print(
        f"\nBest single library : {bsl.library} @ {format_ms(bsl.total_ms)}"
        f"\nQS-DNN              : {format_ms(result.best_ms)}"
        f" ({format_speedup(bsl.total_ms / result.best_ms)} faster)"
    )


if __name__ == "__main__":
    main()
