#!/usr/bin/env python3
"""Where do the milliseconds go?  Tracing a deployed schedule.

After QS-DNN picks a configuration, the execution trace shows exactly
how the inference unfolds: which layers run on which processor, and
what each compatibility penalty (layout conversion, CPU<->GPU copy)
costs in between.  The trace also exports Chrome-trace JSON for
chrome://tracing / Perfetto.

Run:  python examples/deployment_trace.py
"""

from pathlib import Path

from repro import (
    InferenceEngineOptimizer,
    Mode,
    QSDNNSearch,
    SearchConfig,
    build_network,
    jetson_tx2,
)
from repro.engine import Executor
from repro.engine.trace import (
    build_trace,
    chrome_trace_json,
    lane_totals,
    render_timeline,
)
from repro.utils.units import format_ms


def main() -> None:
    platform = jetson_tx2(noise_sigma=0.0)  # exact model times for the trace
    network = build_network("squeezenet_v1.1")

    optimizer = InferenceEngineOptimizer(network, platform, mode=Mode.GPGPU, seed=0)
    lut = optimizer.profile()
    episodes = max(1000, 25 * len(lut.layers))
    result = QSDNNSearch(lut, SearchConfig(episodes=episodes, seed=0)).run()

    executor = Executor(network, optimizer.space, platform)
    execution = executor.run(result.schedule())
    events = build_trace(network, optimizer.space, execution)

    totals = lane_totals(events)
    print(
        f"SqueezeNet v1.1 learned schedule: {format_ms(execution.total_ms)} "
        "end-to-end\n  "
        + "  ".join(f"{lane}: {format_ms(ms)}" for lane, ms in sorted(totals.items()))
        + "\n"
    )

    # Show the first fire module's slice of the timeline.
    fire2 = [e for e in events if "fire2" in e.name or "pool1" in e.name]
    print(render_timeline(fire2, width=40))

    out = Path("squeezenet_trace.json")
    out.write_text(chrome_trace_json(events))
    print(
        f"\nFull Chrome-trace written to {out} "
        "(open in chrome://tracing or ui.perfetto.dev)"
    )


if __name__ == "__main__":
    main()
