#!/usr/bin/env python3
"""Energy-aware primitive selection (paper §VII future work).

Battery-powered deployments care about joules as much as milliseconds.
This example sweeps the latency/energy trade-off on MobileNet-v1: the
scalarized objective ``latency + lambda * energy`` is just a transformed
look-up table, so the unmodified Q-learning engine explores the whole
Pareto front — watch the schedule abandon the fast-but-hungry GPU as
lambda grows.

Run:  python examples/energy_aware_search.py
"""

from repro import InferenceEngineOptimizer, Mode, build_network, jetson_tx2
from repro.ext import EnergyModel, pareto_front, pareto_sweep
from repro.utils.tables import AsciiTable


def main() -> None:
    platform = jetson_tx2()
    network = build_network("mobilenet_v1")
    optimizer = InferenceEngineOptimizer(network, platform, mode=Mode.GPGPU, seed=0)
    lut = optimizer.profile()

    model = EnergyModel()  # CPU 1.8 W, GPU 7.0 W busy power
    print(
        f"Energy model: CPU {model.cpu_watts} W, GPU {model.gpu_watts} W, "
        f"copies {model.transfer_watts} W\n"
    )

    points = pareto_sweep(
        lut, lams=[0.0, 0.05, 0.1, 0.2, 0.5, 1.0], episodes=1500, seed=0,
        model=model,
    )
    table = AsciiTable(
        ["lambda (1/W)", "latency (ms)", "energy (mJ)", "GPU layers",
         "energy/frame @30fps (mW)"],
        title="MobileNet-v1: latency/energy sweep on the TX-2",
    )
    for p in points:
        table.add_row(
            [
                f"{p.lam:g}",
                f"{p.latency_ms:.2f}",
                f"{p.energy_mj:.1f}",
                p.gpu_layers(lut),
                f"{p.energy_mj * 30:.0f}",
            ]
        )
    print(table.render())

    front = pareto_front(points)
    print(
        f"\nPareto front: {len(front)} non-dominated schedules, from "
        f"{front[0].latency_ms:.1f} ms / {front[0].energy_mj:.0f} mJ "
        f"to {front[-1].latency_ms:.1f} ms / {front[-1].energy_mj:.0f} mJ."
    )


if __name__ == "__main__":
    main()
