#!/usr/bin/env python3
"""The paper's MobileNet showcase (§VI-A): heterogeneous scheduling.

MobileNet-v1 is where per-layer selection shines on a CPU+GPU platform:
the learned schedule "combines the optimized Depth-Wise code from ArmCL,
convolutions from cuDNN and certain ReLU and B-Norm layers from Vanilla
to avoid costly extra copies to GPU", beating the best vendor library by
well over 1.4x.

This example prints the learned per-layer assignment of one separable
block so the mechanism is visible, plus the whole-network library mix.

Run:  python examples/mobilenet_heterogeneous.py
"""

from collections import Counter

from repro import (
    InferenceEngineOptimizer,
    Mode,
    QSDNNSearch,
    SearchConfig,
    best_single_library,
    build_network,
    jetson_tx2,
)
from repro.utils.tables import AsciiTable
from repro.utils.units import format_ms, format_speedup


def main() -> None:
    platform = jetson_tx2()
    network = build_network("mobilenet_v1")

    optimizer = InferenceEngineOptimizer(network, platform, mode=Mode.GPGPU, seed=0)
    lut = optimizer.profile()

    episodes = max(1000, 25 * len(lut.layers))
    result = QSDNNSearch(lut, SearchConfig(episodes=episodes, seed=0)).run()
    bsl = best_single_library(lut)

    print(
        f"MobileNet-v1 on {platform.name} (GPGPU mode), "
        f"{episodes} episodes\n"
        f"  best single library : {bsl.library} @ {format_ms(bsl.total_ms)}\n"
        f"  QS-DNN              : {format_ms(result.best_ms)} "
        f"({format_speedup(bsl.total_ms / result.best_ms)} over BSL; paper: >1.4x)\n"
    )

    # Whole-network mix.
    mix = Counter(lut.meta[uid].library for uid in result.best_assignments.values())
    print("Library mix across 84 layers:")
    for library, count in mix.most_common():
        print(f"  {library:8s} {count:3d} layers")

    # One separable block, layer by layer (block 12 sits at 7x7x1024
    # where CPU depth-wise + GPU point-wise mixing pays off).
    table = AsciiTable(
        ["layer", "primitive", "processor", "layout", "time"],
        title="\nLearned schedule of separable block 12:",
    )
    for name in (
        "conv12_dw", "conv12_dw/bn", "conv12_dw/relu",
        "conv12_pw", "conv12_pw/bn", "conv12_pw/relu",
    ):
        uid = result.best_assignments[name]
        meta = lut.meta[uid]
        table.add_row(
            [
                name,
                uid,
                str(meta.processor),
                str(meta.layout),
                format_ms(lut.layer_time(name, uid)),
            ]
        )
    print(table.render())

    dw_armcl = sum(
        1
        for layer, uid in result.best_assignments.items()
        if layer.endswith("_dw") and lut.meta[uid].library == "armcl"
    )
    print(
        f"\nDepth-wise layers running on ArmCL (CPU NEON): {dw_armcl}/13 "
        "- cuDNN-era grouped convolutions lose to the CPU here, exactly "
        "as the paper reports."
    )


if __name__ == "__main__":
    main()
