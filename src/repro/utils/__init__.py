"""Shared utilities: seeded RNG plumbing, units, tables, ASCII plots."""

from repro.utils.rng import RngStream, derive_rng, spawn_seed
from repro.utils.units import (
    format_ms,
    format_speedup,
    gflops,
    mbytes,
    ms_to_s,
    s_to_ms,
    us_to_ms,
)
from repro.utils.tables import AsciiTable
from repro.utils.ascii_plot import line_plot
from repro.utils.fsio import atomic_write_text
from repro.utils.stats import geometric_mean, mean_and_ci, running_min

__all__ = [
    "RngStream",
    "derive_rng",
    "spawn_seed",
    "format_ms",
    "format_speedup",
    "gflops",
    "mbytes",
    "ms_to_s",
    "s_to_ms",
    "us_to_ms",
    "AsciiTable",
    "atomic_write_text",
    "line_plot",
    "geometric_mean",
    "mean_and_ci",
    "running_min",
]
