"""Unit conversions and human-readable formatting.

Internally the whole code base works in **milliseconds** for latency,
**FLOPs** (floating-point operations, not FLOP/s) for work and **bytes**
for traffic.  These helpers keep conversions explicit at the boundaries.
"""

from __future__ import annotations

US_PER_MS = 1000.0
MS_PER_S = 1000.0
BYTES_PER_MB = 1024.0 * 1024.0


def us_to_ms(microseconds: float) -> float:
    """Convert microseconds to milliseconds."""
    return microseconds / US_PER_MS


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / MS_PER_S


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_S


def gflops(flops: float) -> float:
    """Express a FLOP count in GFLOPs."""
    return flops / 1e9


def mbytes(num_bytes: float) -> float:
    """Express a byte count in MiB."""
    return num_bytes / BYTES_PER_MB


def format_ms(milliseconds: float, digits: int = 3) -> str:
    """Format a latency with an adaptive unit (us / ms / s).

    >>> format_ms(0.0123)
    '12.3us'
    >>> format_ms(1.5)
    '1.50ms'
    >>> format_ms(2500.0)
    '2.50s'
    """
    if milliseconds < 0.1:
        return f"{milliseconds * US_PER_MS:.{max(digits - 2, 0)}f}us"
    if milliseconds < MS_PER_S:
        return f"{milliseconds:.{max(digits - 1, 0)}f}ms"
    return f"{milliseconds / MS_PER_S:.{max(digits - 1, 0)}f}s"


def format_speedup(ratio: float) -> str:
    """Format a speedup ratio the way the paper's Table II does (``12.3x``)."""
    if ratio >= 100:
        return f"{ratio:.0f}x"
    if ratio >= 10:
        return f"{ratio:.1f}x"
    return f"{ratio:.2f}x"
