"""Deterministic random-number plumbing.

Everything stochastic in the reproduction (measurement noise, the
epsilon-greedy policy, replay sampling, random search) draws from
:class:`numpy.random.Generator` objects that are derived *explicitly* from
user-facing integer seeds.  No module touches the global numpy RNG, so two
runs with the same seed produce byte-identical tables.

Streams are derived by name, so adding a new consumer of randomness never
perturbs the draws seen by existing consumers (a property plain
``seed + k`` offset schemes do not have).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigError

_UINT64_MASK = (1 << 64) - 1


def _hash_to_seed(parts: tuple) -> int:
    """Hash an arbitrary tuple of printable parts into a 64-bit seed."""
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _UINT64_MASK


def spawn_seed(base_seed: int, *names: object) -> int:
    """Derive a child seed from ``base_seed`` and a path of names.

    The derivation is stable across processes and Python versions because
    it goes through SHA-256 rather than ``hash()``.
    """
    if not isinstance(base_seed, int):
        raise ConfigError(f"seed must be an int, got {type(base_seed).__name__}")
    return _hash_to_seed((base_seed,) + names)


def derive_rng(base_seed: int, *names: object) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for a named stream."""
    return np.random.default_rng(spawn_seed(base_seed, *names))


class RngStream:
    """A hierarchical source of named, reproducible RNGs.

    ``RngStream(seed).child("noise")`` always yields the same generator for
    the same seed, independent of any other stream having been created
    before it.

    Example
    -------
    >>> stream = RngStream(7)
    >>> a = stream.child("noise").normal()
    >>> b = RngStream(7).child("noise").normal()
    >>> a == b
    True
    """

    def __init__(self, seed: int, *path: object) -> None:
        if not isinstance(seed, int):
            raise ConfigError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._path = tuple(path)

    @property
    def seed(self) -> int:
        """The root integer seed this stream was built from."""
        return self._seed

    @property
    def path(self) -> tuple:
        """The name path identifying this stream under the root seed."""
        return self._path

    def child(self, *names: object) -> np.random.Generator:
        """Return a generator for the sub-stream addressed by ``names``."""
        return derive_rng(self._seed, *self._path, *names)

    def substream(self, *names: object) -> "RngStream":
        """Return a new :class:`RngStream` rooted one level deeper."""
        return RngStream(self._seed, *self._path, *names)

    def __repr__(self) -> str:
        return f"RngStream(seed={self._seed}, path={self._path!r})"
