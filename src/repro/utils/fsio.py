"""Crash-safe file publication: write to a temp name, then rename.

Every artifact the repo persists (LUT cache entries, CLI ``--out``
schedules, campaign result dumps, reports) goes through
:func:`atomic_write_text`.  A plain ``Path.write_text`` interrupted
mid-write leaves a truncated file behind — a half-written LUT JSON
later fails ``repro search --lut`` with an opaque decode error, and a
half-written cache entry would poison every fleet member that fetches
it.  ``os.replace`` is atomic on POSIX and Windows, so readers observe
either the old complete file or the new complete file, never a mix.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Publish ``text`` at ``path`` atomically; returns the final path.

    Writes to a per-writer temp name in the same directory (same
    filesystem, so the rename cannot degrade to a copy), fsync-free by
    design (these are caches and reports, not databases), then renames
    over the target.  Concurrent writers publishing the same path do
    not interleave: each owns its temp file and the last rename wins
    whole.  Parent directories are created as needed.  On failure the
    temp file is removed and the previous target content is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path
