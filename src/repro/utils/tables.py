"""Minimal ASCII table rendering for benchmark and report output.

The benchmark harnesses print the same rows as the paper's tables; this
module keeps that presentation logic in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class AsciiTable:
    """Accumulate rows and render them as an aligned ASCII table.

    Example
    -------
    >>> t = AsciiTable(["net", "speedup"])
    >>> t.add_row(["LeNet-5", "3.2x"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    net     | speedup
    --------+--------
    LeNet-5 | 3.2x
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self._headers = [str(h) for h in headers]
        self._rows: list[list[str]] = []

    @property
    def headers(self) -> list[str]:
        """Column headers, as strings."""
        return list(self._headers)

    @property
    def rows(self) -> list[list[str]]:
        """All rows added so far, as strings."""
        return [list(row) for row in self._rows]

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; cells are stringified with ``str``."""
        row = [str(c) for c in cells]
        if len(row) != len(self._headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self._headers)} columns"
            )
        self._rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = self._widths()
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self._headers, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines.append(header.rstrip())
        lines.append(rule)
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
