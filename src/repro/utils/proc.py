"""Process-level accounting helpers (stdlib-only).

One home for the "how big did this process get" question the CLI and
benchmarks both ask after a large sweep — the mega-batch path trades
memory (one ``(K, S, A)`` Q block) for wall clock, and peak RSS is the
honest way to report that trade.
"""

from __future__ import annotations

import resource
import sys


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in megabytes.

    ``ru_maxrss`` is kilobytes on Linux and *bytes* on macOS — the
    only portability wrinkle worth handling here.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0
