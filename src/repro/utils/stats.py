"""Small statistics helpers used by the analysis layer."""

from __future__ import annotations

import math
from typing import Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the right mean for speedups)."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean_and_ci(values: Sequence[float], z: float = 1.96) -> tuple[float, float]:
    """Return ``(mean, half-width)`` of a normal-approx confidence interval.

    With fewer than two samples the half-width is 0 by convention.
    """
    if not values:
        raise ValueError("mean_and_ci of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(var / n)


def running_min(values: Sequence[float]) -> list[float]:
    """Prefix minimum — the 'best seen so far' curve of a search."""
    out: list[float] = []
    best = math.inf
    for v in values:
        best = min(best, v)
        out.append(best)
    return out
