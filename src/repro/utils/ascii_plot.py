"""Terminal line plots for learning curves (Figs. 4 and 5).

A dependency-free scatter/line renderer: good enough to *see* the learning
curve converge in CI logs, which is all the figure reproductions need.
"""

from __future__ import annotations

from typing import Sequence


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 72,
    height: int = 18,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
    marker: str = "*",
) -> str:
    """Render ``ys`` against ``xs`` on a character canvas.

    Points are plotted with ``marker``; axes carry min/max annotations.
    Returns the plot as a multi-line string.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return "(empty plot)"
    if width < 8 or height < 4:
        raise ValueError("canvas too small")

    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        canvas[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_w = 10
    for i, row_cells in enumerate(canvas):
        if i == 0:
            label = f"{y_max:9.3g} "
        elif i == height - 1:
            label = f"{y_min:9.3g} "
        else:
            label = " " * label_w
        lines.append(label + "|" + "".join(row_cells))
    lines.append(" " * label_w + "+" + "-" * width)
    x_left = f"{x_min:g}"
    x_right = f"{x_max:g}"
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (label_w + 1) + x_left + " " * max(gap, 1) + x_right)
    if xlabel or ylabel:
        lines.append(" " * (label_w + 1) + f"x: {xlabel}   y: {ylabel}".rstrip())
    return "\n".join(lines)
