"""Table II: per-network speedups over Vanilla (paper §VI-A).

For every network we report, per library, the speedup of its
fastest-primitive schedule over Vanilla; the Best Single Library (BSL);
QS-DNN's speedup; QS-DNN's improvement over the BSL; and Random Search
at the same 1000-episode budget.  All totals are LUT objectives (layer
times + compatibility penalties), i.e. the quantity both searches
optimize; deployment re-measurement agrees to within noise (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import _cache
from repro.backends.registry import Mode
from repro.baselines.best_single_library import single_library_results
from repro.baselines.random_search import random_search
from repro.core.config import SearchConfig
from repro.core.search import QSDNNSearch
from repro.engine.optimizer import InferenceEngineOptimizer
from repro.hw.platform import Platform
from repro.utils.tables import AsciiTable
from repro.utils.units import format_ms, format_speedup
from repro.zoo import build_network


@dataclass
class Table2Row:
    """One network's Table II entries for one mode."""

    network: str
    mode: str
    vanilla_ms: float
    #: library -> total ms of its fastest-primitive schedule.
    library_ms: dict[str, float] = field(default_factory=dict)
    bsl_library: str = ""
    bsl_ms: float = 0.0
    qsdnn_ms: float = 0.0
    rs_ms: float = 0.0
    qsdnn_libraries: list[str] = field(default_factory=list)
    space_log10: float = 0.0

    @property
    def qsdnn_speedup(self) -> float:
        """QS-DNN speedup over Vanilla."""
        return self.vanilla_ms / self.qsdnn_ms

    @property
    def qsdnn_vs_bsl(self) -> float:
        """QS-DNN improvement over the Best Single Library."""
        return self.bsl_ms / self.qsdnn_ms

    @property
    def rl_vs_rs(self) -> float:
        """How much better RL's solution is than RS's (same budget)."""
        return self.rs_ms / self.qsdnn_ms

    def library_speedup(self, library: str) -> float:
        """A single library's speedup over Vanilla."""
        return self.vanilla_ms / self.library_ms[library]


#: Episodes per layer for the auto budget (paper §V-B: "the search space
#: and the conditions of the search can be defined for each network").
EPISODES_PER_LAYER = 25
#: Floor matching the paper's 1000-episode runs (Figs. 4-5).
MIN_EPISODES = 1000


def auto_episodes(num_layers: int) -> int:
    """Per-network episode budget: max(1000, 25 x layers)."""
    return max(MIN_EPISODES, EPISODES_PER_LAYER * num_layers)


def run_table2_row(
    network: str,
    mode: Mode,
    platform: Platform,
    episodes: int | None = None,
    seed: int = 0,
    kernel: str = "auto",
) -> Table2Row:
    """Profile + search + baselines for one (network, mode) cell.

    ``episodes=None`` uses the per-network auto budget; RS always gets
    the same budget as QS-DNN for a fair comparison.
    """
    graph = build_network(network)
    optimizer = InferenceEngineOptimizer(graph, platform, mode=mode, seed=seed)
    lut = optimizer.profile()
    return table2_row_from_lut(lut, episodes=episodes, seed=seed, kernel=kernel)


def table2_row_from_lut(
    lut, episodes: int | None = None, seed: int = 0, kernel: str = "auto"
) -> Table2Row:
    """Search + baselines for one already-profiled LUT (the campaign
    worker's entry point — LUTs may come from the on-disk cache)."""
    per_library = single_library_results(lut)
    vanilla_ms = next(r.total_ms for r in per_library if r.library == "vanilla")
    accelerated = [r for r in per_library if r.library != "vanilla"]
    bsl = accelerated[0]

    if episodes is None:
        episodes = auto_episodes(len(lut.layers))
    config = SearchConfig(episodes=episodes, seed=seed, kernel=kernel)
    rl = QSDNNSearch(lut, config).run()
    rs = random_search(lut, episodes=episodes, seed=seed)

    return Table2Row(
        network=lut.graph_name,
        mode=str(lut.mode),
        vanilla_ms=vanilla_ms,
        library_ms={r.library: r.total_ms for r in per_library},
        bsl_library=bsl.library,
        bsl_ms=bsl.total_ms,
        qsdnn_ms=rl.best_ms,
        rs_ms=rs.best_ms,
        qsdnn_libraries=sorted(
            {lut.meta[u].library for u in rl.best_assignments.values()}
        ),
        space_log10=_space_log10(lut),
    )


def _space_log10(lut) -> float:
    import math

    return sum(math.log10(len(c)) for c in lut.candidates.values())


def run_table2(
    networks: list[str],
    mode: Mode,
    platform: Platform,
    episodes: int | None = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | None = None,
    cache_remote: str | None = None,
) -> list[Table2Row]:
    """All rows of one Table II half (CPU or GPGPU).

    ``jobs > 1`` shards the per-network cells across worker processes
    via a :class:`~repro.runtime.campaign.Campaign`; ``cache_dir`` /
    ``cache_remote`` enable the tiered LUT cache (used even when
    serial; see :mod:`repro.runtime.lutcache`).
    """
    if jobs > 1 or cache_dir is not None or cache_remote is not None:
        from repro.runtime.campaign import (
            Campaign,
            grid,
            require_canonical_platform,
        )

        campaign = Campaign(
            grid(
                networks,
                platforms=[require_canonical_platform(platform)],
                modes=[str(mode)],
                seeds=[seed],
                episodes=episodes,
            ),
            workers=jobs,
            cache_dir=cache_dir,
            cache_remote=cache_remote,
        )
        return [result.payload for result in campaign.run()]
    return [
        run_table2_row(n, mode, platform, episodes=episodes, seed=seed)
        for n in networks
    ]


def render_table2(rows: list[Table2Row], title: str | None = None) -> str:
    """Render rows the way the paper's Table II presents them."""
    if not rows:
        return "(no rows)"
    libraries = sorted(
        {lib for row in rows for lib in row.library_ms if lib != "vanilla"}
    )
    headers = (
        ["network", "vanilla"]
        + [f"{lib} (x)" for lib in libraries]
        + ["BSL", "QS-DNN (x)", "QS vs BSL", "RS (x)", "RL vs RS"]
    )
    table = AsciiTable(headers, title=title)
    for row in rows:
        cells = [row.network, format_ms(row.vanilla_ms)]
        for lib in libraries:
            if lib in row.library_ms:
                cells.append(format_speedup(row.library_speedup(lib)))
            else:
                cells.append("-")
        cells += [
            row.bsl_library,
            format_speedup(row.qsdnn_speedup),
            format_speedup(row.qsdnn_vs_bsl),
            format_speedup(row.vanilla_ms / row.rs_ms),
            format_speedup(row.rl_vs_rs),
        ]
        table.add_row(cells)
    return table.render()


# Re-export for callers that want cached rows in long benchmark sessions.
cached_table2_row = _cache.cached_table2_row
