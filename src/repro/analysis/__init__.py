"""Analysis harnesses that regenerate the paper's tables and figures."""

from repro.analysis.speedup import Table2Row, run_table2, run_table2_row, render_table2
from repro.analysis.curves import (
    Fig4Data,
    Fig5Data,
    fig4_learning_curve,
    fig5_rl_vs_rs,
)
from repro.analysis.compare import MethodComparison, compare_methods
from repro.analysis.report import claim_checks, full_report, markdown_table2
from repro.analysis.win_matrix import render_win_matrix, win_matrix

__all__ = [
    "win_matrix",
    "render_win_matrix",
    "claim_checks",
    "full_report",
    "markdown_table2",
    "Table2Row",
    "run_table2",
    "run_table2_row",
    "render_table2",
    "Fig4Data",
    "Fig5Data",
    "fig4_learning_curve",
    "fig5_rl_vs_rs",
    "MethodComparison",
    "compare_methods",
]
