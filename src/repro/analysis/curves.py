"""Figures 4 and 5: learning curves and RL-vs-RS convergence."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.random_search import random_search
from repro.core.config import SearchConfig
from repro.core.result import SearchResult
from repro.core.search import QSDNNSearch
from repro.engine.lut import LatencyTable
from repro.utils.ascii_plot import line_plot
from repro.utils.rng import spawn_seed
from repro.utils.stats import mean_and_ci


@dataclass
class Fig4Data:
    """One 1000-episode search's learning curve (paper Fig. 4)."""

    result: SearchResult
    #: Episodes averaged into one plotted point.
    bucket: int = 10

    @property
    def bucketed(self) -> tuple[list[float], list[float]]:
        """(episode midpoints, mean sampled latency per bucket)."""
        curve = self.result.curve_ms
        xs, ys = [], []
        for start in range(0, len(curve), self.bucket):
            chunk = curve[start : start + self.bucket]
            xs.append(start + len(chunk) / 2)
            ys.append(sum(chunk) / len(chunk))
        return xs, ys

    def render(self, width: int = 72, height: int = 16) -> str:
        """ASCII rendering of the learning curve."""
        xs, ys = self.bucketed
        eps = self.result.epsilon_trace
        switch = next(
            (i for i, e in enumerate(eps) if e < 1.0), len(eps)
        )
        title = (
            f"Fig.4 | {self.result.graph_name}: sampled latency per episode "
            f"(exploration ends at episode {switch})"
        )
        return line_plot(
            xs, ys, width=width, height=height, title=title,
            xlabel="episode", ylabel="latency ms",
        )


def fig4_learning_curve(
    lut: LatencyTable, episodes: int = 1000, seed: int = 0
) -> Fig4Data:
    """Run the Fig. 4 experiment: one paper-schedule search, full trace.

    Figures 4 and 5 study the *learning process*, so the search runs
    without the post-search polish (``polish_sweeps=0``) — pure
    Algorithm 1 output, as in the paper.
    """
    config = SearchConfig(
        episodes=episodes, seed=seed, track_curve=True, polish_sweeps=0
    )
    result = QSDNNSearch(lut, config).run()
    return Fig4Data(result=result)


@dataclass
class Fig5Data:
    """RL vs RS as a function of episode budget (paper Fig. 5).

    Every point is the mean over ``runs`` independent complete searches
    with that budget — exactly the paper's protocol ("each point
    indicates the average result for a complete search for the given
    episodes"), variance shrinking as the search converges.
    """

    network: str
    budgets: list[int]
    rl_mean: list[float] = field(default_factory=list)
    rl_ci: list[float] = field(default_factory=list)
    rs_mean: list[float] = field(default_factory=list)
    rs_ci: list[float] = field(default_factory=list)

    def ratio_at(self, budget: int) -> float:
        """RS-mean / RL-mean at one budget."""
        i = self.budgets.index(budget)
        return self.rs_mean[i] / self.rl_mean[i]

    def render(self, width: int = 72, height: int = 16) -> str:
        """ASCII plot: RL (*) and RS (o) mean best latency per budget."""
        rl = line_plot(
            self.budgets, self.rl_mean, width=width, height=height,
            title=f"Fig.5 | {self.network}: RL (*) mean best latency",
            xlabel="episodes", ylabel="latency ms", marker="*",
        )
        rs = line_plot(
            self.budgets, self.rs_mean, width=width, height=height,
            title=f"Fig.5 | {self.network}: RS (o) mean best latency",
            xlabel="episodes", ylabel="latency ms", marker="o",
        )
        return rl + "\n" + rs


def fig5_rl_vs_rs(
    lut: LatencyTable,
    budgets: list[int] | None = None,
    runs: int = 5,
    seed: int = 0,
) -> Fig5Data:
    """Run the Fig. 5 experiment on one network's LUT."""
    if budgets is None:
        budgets = [25, 50, 100, 150, 200, 350, 500, 750, 1000]
    data = Fig5Data(network=lut.graph_name, budgets=list(budgets))
    for budget in budgets:
        rl_scores, rs_scores = [], []
        for run in range(runs):
            run_seed = spawn_seed(seed, "fig5", budget, run)
            config = SearchConfig(
                episodes=budget, seed=run_seed, track_curve=False,
                polish_sweeps=0,
            )
            rl_scores.append(QSDNNSearch(lut, config).run().best_ms)
            rs_scores.append(
                random_search(
                    lut, episodes=budget, seed=run_seed, track_curve=False
                ).best_ms
            )
        rl_m, rl_c = mean_and_ci(rl_scores)
        rs_m, rs_c = mean_and_ci(rs_scores)
        data.rl_mean.append(rl_m)
        data.rl_ci.append(rl_c)
        data.rs_mean.append(rs_m)
        data.rs_ci.append(rs_c)
    return data
