"""Markdown report generation for reproduction runs.

Produces an EXPERIMENTS-style markdown document from measured
:class:`~repro.analysis.speedup.Table2Row` objects, so downstream users
can regenerate a paper-vs-measured report for *their* platform model
with two calls.
"""

from __future__ import annotations

from repro.analysis.speedup import Table2Row
from repro.utils.stats import geometric_mean
from repro.utils.units import format_ms, format_speedup


def markdown_table2(rows: list[Table2Row], title: str) -> str:
    """One Table II half as a GitHub-flavoured markdown table."""
    if not rows:
        return f"## {title}\n\n(no rows)\n"
    libraries = sorted(
        {lib for row in rows for lib in row.library_ms if lib != "vanilla"}
    )
    header = (
        ["network", "vanilla"]
        + [f"{lib} (x)" for lib in libraries]
        + ["BSL", "QS-DNN (x)", "QS vs BSL", "RL vs RS"]
    )
    lines = [f"## {title}", ""]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for row in rows:
        cells = [row.network, format_ms(row.vanilla_ms)]
        for lib in libraries:
            cells.append(
                format_speedup(row.library_speedup(lib))
                if lib in row.library_ms
                else "-"
            )
        cells += [
            row.bsl_library,
            format_speedup(row.qsdnn_speedup),
            format_speedup(row.qsdnn_vs_bsl),
            format_speedup(row.rl_vs_rs),
        ]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def claim_checks(rows: list[Table2Row], mode: str) -> str:
    """Markdown bullet list evaluating the paper's claims on the rows."""
    lines = [f"### Claim checks ({mode})", ""]
    beats_bsl = all(row.qsdnn_vs_bsl >= 0.99 for row in rows)
    lines.append(
        f"* QS-DNN outperforms every single library: "
        f"{'yes' if beats_bsl else 'NO'} "
        f"(min {min(row.qsdnn_vs_bsl for row in rows):.2f}x)"
    )
    if mode == "gpgpu":
        gm = geometric_mean([row.qsdnn_vs_bsl for row in rows])
        lines.append(
            f"* mean speedup over best vendor library: {gm:.2f}x (paper: ~2x)"
        )
    else:
        best = max(row.qsdnn_speedup for row in rows)
        lines.append(
            f"* max speedup over Vanilla: {format_speedup(best)} (paper: ~45x)"
        )
    lines.append(
        f"* QS-DNN vs RS at equal budget: up to "
        f"{format_speedup(max(row.rl_vs_rs for row in rows))} "
        "(paper: up to 15x)"
    )
    lines.append("")
    return "\n".join(lines)


def full_report(
    cpu_rows: list[Table2Row],
    gpgpu_rows: list[Table2Row],
    platform_name: str,
    seed: int,
) -> str:
    """A complete markdown reproduction report."""
    parts = [
        "# QS-DNN reproduction report",
        "",
        f"Platform model: `{platform_name}`, seed {seed}.",
        "",
        markdown_table2(cpu_rows, "Table II - CPU mode"),
        claim_checks(cpu_rows, "cpu"),
        markdown_table2(gpgpu_rows, "Table II - GPGPU mode"),
        claim_checks(gpgpu_rows, "gpgpu"),
    ]
    return "\n".join(parts)
