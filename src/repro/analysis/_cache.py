"""Process-local memoization for expensive analysis artifacts.

Benchmarks and examples repeatedly need the same profiled LUTs and
Table II rows; this keeps a keyed cache so a bench session profiles each
(network, mode, seed) triple once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.analysis.speedup import Table2Row

_LUTS: dict[tuple, object] = {}
_ROWS: dict[tuple, "Table2Row"] = {}


def cached_lut(network: str, mode, platform, seed: int = 0):
    """Profile (or fetch) the LUT for one (network, mode, platform, seed)."""
    from repro.engine.optimizer import InferenceEngineOptimizer
    from repro.zoo import build_network

    key = (network, str(mode), platform.name, seed)
    if key not in _LUTS:
        graph = build_network(network)
        optimizer = InferenceEngineOptimizer(graph, platform, mode=mode, seed=seed)
        _LUTS[key] = optimizer.profile()
    return _LUTS[key]


def cached_table2_row(network: str, mode, platform, episodes: int | None = None,
                      seed: int = 0):
    """Compute (or fetch) one Table II row."""
    from repro.analysis.speedup import run_table2_row

    key = (network, str(mode), platform.name, episodes, seed)
    if key not in _ROWS:
        _ROWS[key] = run_table2_row(
            network, mode, platform, episodes=episodes, seed=seed
        )
    return _ROWS[key]


def clear() -> None:
    """Drop all cached artifacts (tests use this for isolation)."""
    _LUTS.clear()
    _ROWS.clear()
