"""Side-by-side comparison of every search/selection method on one LUT."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.annealing import simulated_annealing
from repro.baselines.best_single_library import best_single_library
from repro.baselines.cem import cross_entropy_method
from repro.baselines.dp_optimal import chain_dp, is_chain
from repro.baselines.genetic import genetic_search
from repro.baselines.greedy import greedy_per_layer
from repro.baselines.pbqp import pbqp_solve
from repro.baselines.random_search import random_search
from repro.core.config import SearchConfig
from repro.core.search import QSDNNSearch
from repro.engine.lut import LatencyTable
from repro.utils.tables import AsciiTable
from repro.utils.units import format_ms


@dataclass(frozen=True)
class MethodComparison:
    """Latency achieved by each method on the same LUT."""

    network: str
    mode: str
    vanilla_ms: float
    bsl_ms: float
    greedy_ms: float
    qsdnn_ms: float
    rs_ms: float
    annealing_ms: float
    pbqp_ms: float
    cem_ms: float
    ga_ms: float
    optimal_ms: float | None  # exact (chain DP) when the graph is a chain
    # Function-approximation baselines (ext/): absent from payloads
    # stored before they existed, so they default to None and old rows
    # decode unchanged.
    linear_q_ms: float | None = None
    mlp_q_ms: float | None = None

    def render(self) -> str:
        """Ascii table of every method's latency, normalized to QS-DNN."""
        table = AsciiTable(
            ["method", "latency", "vs QS-DNN"],
            title=f"{self.network} ({self.mode})",
        )
        entries = [
            ("vanilla", self.vanilla_ms),
            ("best single library", self.bsl_ms),
            ("greedy per layer", self.greedy_ms),
            ("random search", self.rs_ms),
            ("simulated annealing", self.annealing_ms),
            ("cross-entropy method", self.cem_ms),
            ("genetic algorithm", self.ga_ms),
            ("PBQP (Anderson & Gregg)", self.pbqp_ms),
            ("QS-DNN", self.qsdnn_ms),
        ]
        if self.linear_q_ms is not None:
            entries.append(("linear Q (approx.)", self.linear_q_ms))
        if self.mlp_q_ms is not None:
            entries.append(("MLP Q (approx.)", self.mlp_q_ms))
        if self.optimal_ms is not None:
            entries.append(("exact optimum (chain DP)", self.optimal_ms))
        for name, ms in entries:
            table.add_row([name, format_ms(ms), f"{ms / self.qsdnn_ms:.2f}x"])
        return table.render()


def compare_methods_many(
    networks: list[str],
    mode,
    platform,
    episodes: int | None = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | None = None,
    store_path: str | None = None,
) -> list[MethodComparison]:
    """Method comparisons for many networks, sharded across processes.

    Each network is one :class:`~repro.runtime.campaign.CampaignJob`
    (kind ``"compare"``); ``jobs`` controls worker processes and
    ``cache_dir`` the on-disk LUT cache.  ``store_path`` names a
    :class:`~repro.runtime.store.ResultStore` database: comparisons
    already stored there are returned without recomputation (floats
    round-trip bitwise) and fresh ones are persisted — the same store
    a running ``repro serve`` fills, so analysis can reuse the
    service's solved corpus.
    """
    from repro.runtime.campaign import (
        Campaign,
        grid,
        require_canonical_platform,
    )

    job_list = grid(
        networks,
        platforms=[require_canonical_platform(platform)],
        modes=[str(mode)],
        seeds=[seed],
        episodes=episodes,
        kind="compare",
    )
    if store_path is None:
        campaign = Campaign(job_list, workers=jobs, cache_dir=cache_dir)
        return [result.payload for result in campaign.run()]

    from repro.runtime.store import ResultStore

    with ResultStore(store_path) as store:
        payloads: list[MethodComparison | None] = []
        missing = []
        for job in job_list:
            stored = store.get(job)
            payloads.append(stored.payload if stored is not None else None)
            if stored is None:
                missing.append(job)
        if missing:
            campaign = Campaign(missing, workers=jobs, cache_dir=cache_dir)
            fresh = iter(campaign.run())
            for index, payload in enumerate(payloads):
                if payload is None:
                    result = next(fresh)
                    store.put(
                        result.job, result.payload, result.wall_clock_s
                    )
                    payloads[index] = result.payload
    return payloads


def compare_methods(
    lut: LatencyTable,
    episodes: int = 1000,
    seed: int = 0,
    kernel: str = "auto",
    approx: bool = False,
) -> MethodComparison:
    """Run every method at the same budget on one LUT.

    ``approx=True`` also prices the function-approximation baselines
    (``ext/linear_q``, ``ext/mlp_q``) — off by default because they
    roll out in Python and dominate wall clock on large networks.
    """
    vanilla = {
        layer: lut.best_uid(
            layer,
            within={
                u for u in lut.candidates[layer]
                if lut.meta[u].library == "vanilla"
            },
        )
        for layer in lut.layers
    }
    rl = QSDNNSearch(
        lut, SearchConfig(episodes=episodes, seed=seed, kernel=kernel)
    ).run()
    linear_q_ms = mlp_q_ms = None
    if approx:
        from repro.ext.linear_q import LinearQConfig, LinearQSearch
        from repro.ext.mlp_q import MLPQConfig, MLPQSearch

        linear_q_ms = LinearQSearch(
            lut, LinearQConfig(episodes=episodes, seed=seed)
        ).run().best_ms
        mlp_q_ms = MLPQSearch(
            lut, MLPQConfig(episodes=episodes, seed=seed)
        ).run().best_ms
    return MethodComparison(
        network=lut.graph_name,
        mode=lut.mode,
        vanilla_ms=lut.schedule_time(vanilla),
        bsl_ms=best_single_library(lut).total_ms,
        greedy_ms=greedy_per_layer(lut).best_ms,
        qsdnn_ms=rl.best_ms,
        rs_ms=random_search(lut, episodes=episodes, seed=seed).best_ms,
        annealing_ms=simulated_annealing(lut, episodes=episodes, seed=seed).best_ms,
        pbqp_ms=pbqp_solve(lut).best_ms,
        cem_ms=cross_entropy_method(lut, episodes=episodes, seed=seed).best_ms,
        ga_ms=genetic_search(lut, episodes=episodes, seed=seed).best_ms,
        optimal_ms=chain_dp(lut).best_ms if is_chain(lut) else None,
        linear_q_ms=linear_q_ms,
        mlp_q_ms=mlp_q_ms,
    )
