"""Episodes-to-match: how much search a warm start actually saves.

A warm-started run (``core/priors``) is only worth its plumbing if it
reaches the cold run's best latency in meaningfully fewer episodes.
This module turns two :class:`~repro.core.result.SearchResult`\\ s —
one cold, one warm, same scenario — into that number:

* ``episodes_to_match(curve, target)``: the first episode whose
  running best is <= ``target`` (1-based), or ``None`` if the curve
  never gets there.
* ``transfer_row(cold, warm)``: the full per-scenario comparison,
  including the headline ``ratio`` = warm episodes-to-match / cold
  episode budget.  ``ratio <= 0.5`` is the bar the warm-start bench
  section holds itself to.

Both results must carry their ``curve_ms`` (the default for every
search path in this repo).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from repro.core.result import SearchResult
from repro.errors import ConfigError
from repro.utils.tables import AsciiTable
from repro.utils.units import format_ms


def episodes_to_match(curve_ms: list[float], target_ms: float) -> int | None:
    """First 1-based episode whose running best reaches ``target_ms``.

    The comparison is ``<=`` on the raw floats — no tolerance — so a
    warm run "matches" only when it is bitwise-equal or strictly
    better, mirroring the acceptance bar of the warm-start bench.
    """
    best = math.inf
    for episode, total in enumerate(curve_ms, start=1):
        if total < best:
            best = total
        if best <= target_ms:
            return episode
    return None


@dataclass(frozen=True)
class TransferRow:
    """One scenario's cold-vs-warm episode economics."""

    network: str
    mode: str
    warm_start: str  # the warm run's prior kind ("stored"/"surrogate")
    cold_best_ms: float
    warm_best_ms: float
    cold_episodes: int
    warm_episodes_to_match: int | None
    ratio: float | None  # episodes-to-match / cold budget; None: no match

    @property
    def matched(self) -> bool:
        return self.warm_episodes_to_match is not None

    def to_dict(self) -> dict:
        return asdict(self)


def transfer_row(
    cold: SearchResult, warm: SearchResult, mode: str = ""
) -> TransferRow:
    """Compare a warm run against its cold twin on the same scenario.

    ``mode`` labels the row (a ``SearchResult`` does not carry the
    design-space mode itself).
    """
    if cold.graph_name != warm.graph_name:
        raise ConfigError(
            f"cold run is {cold.graph_name!r} but warm run is "
            f"{warm.graph_name!r}; episodes-to-match needs one scenario"
        )
    if not cold.curve_ms or not warm.curve_ms:
        raise ConfigError("episodes-to-match needs both runs' curve_ms")
    match = episodes_to_match(warm.curve_ms, cold.best_ms)
    return TransferRow(
        network=cold.graph_name,
        mode=mode,
        warm_start=warm.warm_start,
        cold_best_ms=cold.best_ms,
        warm_best_ms=warm.best_ms,
        cold_episodes=cold.episodes,
        warm_episodes_to_match=match,
        ratio=None if match is None else match / cold.episodes,
    )


def render_transfer(rows: list[TransferRow]) -> str:
    """Ascii report over many scenarios, one row each."""
    table = AsciiTable(
        ["network", "prior", "cold best", "warm best",
         "match @", "of budget"],
        title="warm-start transfer: episodes to match the cold best",
    )
    for row in rows:
        table.add_row([
            row.network,
            row.warm_start,
            format_ms(row.cold_best_ms),
            format_ms(row.warm_best_ms),
            "never" if row.warm_episodes_to_match is None
            else str(row.warm_episodes_to_match),
            "-" if row.ratio is None else f"{100.0 * row.ratio:.1f}%",
        ])
    return table.render()
