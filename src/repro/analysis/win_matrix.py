"""Which library wins which layer kind?  (Reproduction insight.)

Table II reports whole-network numbers; this view explains them: for a
schedule (learned or optimal), count the winning library per layer kind.
The paper's §VI-A narratives fall straight out of it — ArmCL owning
depth-wise, cuBLAS owning FC in GPGPU mode, cuDNN owning big
convolutions, Vanilla surviving only on tiny element-wise layers.
"""

from __future__ import annotations

from collections import defaultdict

from repro.engine.lut import LatencyTable
from repro.nn.graph import NetworkGraph
from repro.utils.tables import AsciiTable


def win_matrix(
    lut: LatencyTable,
    assignments: dict[str, str],
    graph: NetworkGraph,
) -> dict[str, dict[str, int]]:
    """``matrix[layer_kind][library]`` = number of layers won."""
    matrix: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for layer in graph.layers():
        uid = assignments[layer.name]
        matrix[str(layer.kind)][lut.meta[uid].library] += 1
    return {kind: dict(libraries) for kind, libraries in matrix.items()}


def render_win_matrix(
    matrix: dict[str, dict[str, int]], title: str | None = None
) -> str:
    """ASCII table: rows = layer kinds, columns = libraries."""
    libraries = sorted({lib for row in matrix.values() for lib in row})
    table = AsciiTable(["layer kind"] + libraries + ["total"], title=title)
    for kind in sorted(matrix):
        row = matrix[kind]
        cells = [kind]
        for lib in libraries:
            count = row.get(lib, 0)
            cells.append(str(count) if count else ".")
        cells.append(str(sum(row.values())))
        table.add_row(cells)
    return table.render()
