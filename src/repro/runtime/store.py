"""Persistent result store: solved search scenarios, queryable by key.

The campaign service (:mod:`repro.runtime.service`) treats every
:class:`~repro.runtime.campaign.CampaignJob` as an *instance* of the
primitive-selection problem.  Solved instances are worth keeping:
repeated submissions of the same (network, platform, mode, seed,
kernel, ...) scenario become cache hits instead of re-running the
search, and the accumulated corpus is exactly the transfer-learning
substrate the ROADMAP's warm-start item needs (per Mulder et al.,
searches of related networks/platforms initialize new ones).

:class:`ResultStore` is sqlite-backed (stdlib ``sqlite3``; pass
``":memory:"`` for an ephemeral store) and keyed by the *full* job
identity — every :class:`CampaignJob` field participates, so two jobs
collide only when they would compute byte-identical payloads.  Payloads
are stored as JSON; Python's ``json`` emits shortest-round-trip float
literals, so ``best_ms`` (and every curve entry) survives the
round-trip **bitwise** — the store can answer for a live search without
perturbing Table II or the service's exactness contract.

Write throughput is a first-class concern (the fleet's batched result
deliveries land many rows per request): file-backed stores run in WAL
mode with ``synchronous=NORMAL`` (one fsync per commit, not per page),
:meth:`ResultStore.put_many` lands a whole batch in one transaction,
and an optional *group-commit* buffer (``group_commit=N``) coalesces
individual :meth:`ResultStore.put` calls into batched commits the
service flushes on batch boundaries and shutdown.  The durability
trade-offs are spelled out in ``docs/fleet.md``; none of the batching
changes a single stored byte — reads always see buffered writes
(they flush first), and every row is the same 16-column tuple a
commit-per-write store would produce.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.config import SearchConfig
from repro.core.multi_seed import MultiSeedResult
from repro.core.result import SearchResult
from repro.errors import ConfigError
from repro.runtime.campaign import CampaignJob

#: Bump when the row layout or payload encoding changes; rows written
#: under another schema are ignored (never mis-decoded).
STORE_SCHEMA_VERSION = 1

_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    schema_version INTEGER NOT NULL,
    network TEXT NOT NULL,
    platform TEXT NOT NULL,
    mode TEXT NOT NULL,
    seed INTEGER NOT NULL,
    kind TEXT NOT NULL,
    kernel TEXT NOT NULL,
    episodes INTEGER,
    repeats INTEGER NOT NULL,
    seeds INTEGER NOT NULL,
    payload_kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    best_ms REAL,
    wall_clock_s REAL NOT NULL,
    created_s REAL NOT NULL
)
"""

_CHECKPOINT_DDL = """
CREATE TABLE IF NOT EXISTS checkpoints (
    job_key TEXT PRIMARY KEY,
    format INTEGER NOT NULL,
    episode INTEGER NOT NULL,
    best_ms REAL,
    checkpoint TEXT NOT NULL,
    updated_s REAL NOT NULL
)
"""

_LEASE_DDL = """
CREATE TABLE IF NOT EXISTS leases (
    lease_id TEXT PRIMARY KEY,
    job_id TEXT NOT NULL,
    job_key TEXT NOT NULL,
    worker TEXT NOT NULL,
    state TEXT NOT NULL,
    attempt INTEGER NOT NULL,
    created_s REAL NOT NULL,
    deadline_s REAL NOT NULL,
    heartbeats INTEGER NOT NULL,
    finished_s REAL
)
"""

#: Lease lifecycle states.  ``active`` is the only live state;
#: ``completed``/``failed`` are worker-reported outcomes, ``expired``
#: means the reaper (or a late heartbeat check) found the deadline
#: passed, ``released`` means the service let go of the lease itself
#: (shutdown, or stale rows from a previous service process).
LEASE_ACTIVE, LEASE_COMPLETED, LEASE_FAILED, LEASE_EXPIRED, LEASE_RELEASED = (
    "active",
    "completed",
    "failed",
    "expired",
    "released",
)

_LEASE_COLUMNS = (
    "lease_id, job_id, job_key, worker, state, attempt, created_s, "
    "deadline_s, heartbeats, finished_s"
)


def job_key(job: CampaignJob) -> str:
    """The store's primary key for one job: its full identity.

    Every field of the job participates (episodes/repeats/seeds/kernel
    included), so distinct scenarios never alias.  ``episodes=None``
    (the per-network auto budget) keys as ``auto``.  ``warm_start``
    appends a segment only when set, so every pre-prior key — and the
    stored corpus built under it — stays valid verbatim.
    """
    episodes = "auto" if job.episodes is None else str(job.episodes)
    parts = [
        job.network,
        job.platform,
        job.mode,
        f"seed{job.seed}",
        job.kind,
        f"ep{episodes}",
        f"r{job.repeats}",
        f"k{job.seeds}",
        job.kernel,
    ]
    if job.warm_start != "off":
        parts.append(f"warm-{job.warm_start}")
    return "/".join(parts)


def encode_payload(payload) -> tuple[str, str]:
    """Serialize a campaign payload to ``(payload_kind, json)``.

    Supports every payload ``execute_job`` produces: ``SearchResult``,
    ``MultiSeedResult``, ``Table2Row`` and ``MethodComparison``.
    Floats round-trip bitwise (shortest-repr JSON literals); a
    ``SearchResult``'s ``config`` is reduced to the fields needed to
    re-label the run (the epsilon schedule object is not persisted).
    """
    from repro.analysis.compare import MethodComparison
    from repro.analysis.speedup import Table2Row

    if isinstance(payload, SearchResult):
        return "search_result", json.dumps(_search_result_dict(payload))
    if isinstance(payload, MultiSeedResult):
        body = {
            "results": [_search_result_dict(r) for r in payload.results],
            "wall_clock_s": payload.wall_clock_s,
            "batched_pricings": payload.batched_pricings,
            "lockstep": payload.lockstep,
        }
        return "multi_seed_result", json.dumps(body)
    if isinstance(payload, Table2Row):
        return "table2_row", json.dumps(asdict(payload))
    if isinstance(payload, MethodComparison):
        return "method_comparison", json.dumps(asdict(payload))
    raise ConfigError(f"cannot store payload of type {type(payload).__name__}")


def decode_payload(payload_kind: str, text: str):
    """Inverse of :func:`encode_payload`."""
    from repro.analysis.compare import MethodComparison
    from repro.analysis.speedup import Table2Row

    body = json.loads(text)
    if payload_kind == "search_result":
        return _search_result_from(body)
    if payload_kind == "multi_seed_result":
        return MultiSeedResult(
            results=[_search_result_from(r) for r in body["results"]],
            wall_clock_s=body["wall_clock_s"],
            batched_pricings=body["batched_pricings"],
            lockstep=body["lockstep"],
        )
    if payload_kind == "table2_row":
        return Table2Row(**body)
    if payload_kind == "method_comparison":
        return MethodComparison(**body)
    raise ConfigError(f"unknown stored payload kind {payload_kind!r}")


def best_ms_of(payload) -> float | None:
    """The headline latency of a payload (None when it has no single one)."""
    best = getattr(payload, "best_ms", None)
    if best is not None:
        return float(best)
    qsdnn = getattr(payload, "qsdnn_ms", None)
    if qsdnn is not None:
        return float(qsdnn)
    results = getattr(payload, "results", None)
    if results:
        return min(float(r.best_ms) for r in results)
    return None


def _search_result_dict(result: SearchResult) -> dict:
    config = result.config
    return {
        "graph_name": result.graph_name,
        "method": result.method,
        "best_assignments": result.best_assignments,
        "best_ms": result.best_ms,
        "episodes": result.episodes,
        "curve_ms": result.curve_ms,
        "epsilon_trace": result.epsilon_trace,
        "wall_clock_s": result.wall_clock_s,
        "greedy_ms": result.greedy_ms,
        "kernel_backend": result.kernel_backend,
        "seed": config.seed if config is not None else None,
        "warm_start": result.warm_start,
    }


def _search_result_from(body: dict) -> SearchResult:
    seed = body.get("seed")
    config = None
    if seed is not None and body["episodes"] >= 1:
        config = SearchConfig(episodes=body["episodes"], seed=seed)
    return SearchResult(
        graph_name=body["graph_name"],
        method=body["method"],
        best_assignments=dict(body["best_assignments"]),
        best_ms=body["best_ms"],
        episodes=body["episodes"],
        curve_ms=list(body["curve_ms"]),
        epsilon_trace=list(body["epsilon_trace"]),
        wall_clock_s=body["wall_clock_s"],
        config=config,
        greedy_ms=body["greedy_ms"],
        kernel_backend=body["kernel_backend"],
        warm_start=body.get("warm_start", "off"),
    )


@dataclass
class LeaseRecord:
    """One job lease as the lease table tracks it.

    A lease is the unit of the fleet's pull protocol: one worker's
    bounded claim on queued work.  Liveness is heartbeat-extended
    (``deadline_s`` moves forward); a missed deadline expires the
    lease and requeues its jobs.  ``attempt`` counts the jobs' leases
    so far (1-based), bounding crash-requeue loops.

    A *batch* lease (``POST /leases`` with ``max_jobs > 1``) covers
    several jobs under one lease id and one heartbeat; ``job_id`` and
    ``job_key`` then hold the space-joined ids/keys (job ids and keys
    never contain spaces), and :attr:`job_ids`/:attr:`job_keys` give
    the split-out views.
    """

    lease_id: str
    job_id: str
    job_key: str
    worker: str
    state: str = LEASE_ACTIVE
    attempt: int = 1
    created_s: float = 0.0
    deadline_s: float = 0.0
    heartbeats: int = 0
    finished_s: float | None = None

    @property
    def live(self) -> bool:
        """Whether the lease is still active (deadline not considered)."""
        return self.state == LEASE_ACTIVE

    @property
    def job_ids(self) -> list[str]:
        """All job ids under this lease (one element for single leases)."""
        return self.job_id.split(" ")

    @property
    def job_keys(self) -> list[str]:
        """All job keys under this lease, aligned with :attr:`job_ids`."""
        return self.job_key.split(" ")

    def age_s(self, now: float) -> float:
        """Seconds since the lease was granted."""
        return max(0.0, now - self.created_s)

    def to_dict(self) -> dict:
        """JSON-ready view (the wire format of ``GET /workers``).

        ``job_id``/``job_key`` stay the *first* job for compatibility
        with single-lease consumers; ``job_ids`` lists the whole batch
        and ``jobs`` counts it.
        """
        body = asdict(self)
        ids = self.job_ids
        body["job_id"] = ids[0]
        body["job_key"] = self.job_keys[0]
        body["job_ids"] = ids
        body["jobs"] = len(ids)
        return body


@dataclass
class StoredCheckpoint:
    """One persisted anytime-search checkpoint, keyed by job identity.

    ``text`` is the canonical JSON of :mod:`repro.core.checkpoint`
    (decode with ``decode_checkpoint``, which rejects foreign formats
    loudly); ``episode``/``best_ms`` are denormalized for cheap
    progress reads — streaming a job's progress never parses the full
    Q-block payload.
    """

    job_key: str
    format: int
    episode: int
    best_ms: float | None
    text: str
    updated_s: float


@dataclass
class StoredResult:
    """One solved scenario as the store returns it."""

    job: CampaignJob
    payload: object
    #: Headline latency (None for payloads without a single best).
    best_ms: float | None = None
    wall_clock_s: float = 0.0
    #: Unix timestamp of the original computation.
    created_s: float = field(default=0.0)


class ResultStore:
    """Sqlite-backed store of solved campaign jobs, keyed by identity.

    Parameters
    ----------
    path:
        Database file (parent directories are created), or
        ``":memory:"`` for a store that lives only as long as this
        object.
    wal:
        Run file-backed stores in ``journal_mode=WAL`` with
        ``synchronous=NORMAL`` — writers don't block readers and
        sqlite fsyncs once per commit instead of once per journal
        page.  Ignored for ``":memory:"``.  A power loss can roll the
        database back to the last WAL checkpoint, but never corrupts
        it; pass ``wal=False`` to keep the default rollback journal
        with full-durability ``synchronous=FULL`` semantics.
    group_commit:
        When > 0, :meth:`put` buffers rows in memory and commits them
        ``group_commit`` at a time (one transaction per flush) instead
        of one transaction per call.  Reads flush first, so buffered
        writes are always visible; :meth:`flush`, :meth:`put_many` and
        :meth:`close` also drain the buffer.  Rows in the buffer are
        lost if the *process* crashes before a flush — the service
        only buffers results it can recompute (jobs requeue on lease
        expiry), so acknowledged-and-lost is bounded by the flush the
        caller controls.

    The connection is shared across threads behind a lock (the service
    touches the store from its event-loop thread and from HTTP handler
    coroutines; the CLI from the main thread).
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        wal: bool = True,
        group_commit: int = 0,
    ) -> None:
        if group_commit < 0:
            raise ConfigError(f"group_commit must be >= 0, got {group_commit}")
        self.path = str(path)
        self.group_commit = int(group_commit)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        #: Pending group-commit rows, key -> 16-column row (last write
        #: wins, matching INSERT OR REPLACE semantics).
        self._buffer: dict[str, tuple] = {}
        #: Flush statistics: transactions flushed, rows they carried,
        #: and total seconds spent committing (the benchmark and the
        #: ``repro_store_flush_seconds`` histogram read these).
        self.flush_stats = {"flushes": 0, "rows": 0, "total_s": 0.0}
        self.wal = bool(wal) and self.path != ":memory:"
        with self._lock:
            if self.wal:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_TABLE_DDL)
            self._conn.execute(_LEASE_DDL)
            self._conn.execute(_CHECKPOINT_DDL)
            self._conn.commit()

    # -- writes -------------------------------------------------------------

    _INSERT_SQL = (
        "INSERT OR REPLACE INTO results VALUES "
        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
    )

    @staticmethod
    def _row(job: CampaignJob, payload, wall_clock_s: float) -> tuple[str, tuple]:
        """Encode one solved job as its ``(key, 16-column row)``."""
        key = job_key(job)
        payload_kind, text = encode_payload(payload)
        return key, (
            key,
            STORE_SCHEMA_VERSION,
            job.network,
            job.platform,
            job.mode,
            job.seed,
            job.kind,
            job.kernel,
            job.episodes,
            job.repeats,
            job.seeds,
            payload_kind,
            text,
            best_ms_of(payload),
            wall_clock_s,
            time.time(),
        )

    def _flush_locked(self) -> tuple[int, float]:
        """Commit every buffered row (caller holds the lock); returns
        ``(rows, elapsed_s)`` for THIS commit — callers feeding latency
        histograms must use this value, not a delta of the shared
        ``flush_stats`` accumulator (which other threads advance too).
        """
        if not self._buffer:
            return 0, 0.0
        rows = list(self._buffer.values())
        started = time.perf_counter()
        self._conn.executemany(self._INSERT_SQL, rows)
        self._conn.commit()
        elapsed = time.perf_counter() - started
        self._buffer.clear()
        self.flush_stats["flushes"] += 1
        self.flush_stats["rows"] += len(rows)
        self.flush_stats["total_s"] += elapsed
        return len(rows), elapsed

    def flush(self) -> int:
        """Commit buffered group-commit rows; returns how many landed."""
        return self.flush_timed()[0]

    def flush_timed(self) -> tuple[int, float]:
        """Like :meth:`flush`, but returns ``(rows, elapsed_s)`` — the
        commit latency of exactly this call (the service feeds it into
        the flush-latency histogram)."""
        with self._lock:
            return self._flush_locked()

    @property
    def pending(self) -> int:
        """Rows sitting in the group-commit buffer (0 when disabled)."""
        with self._lock:
            return len(self._buffer)

    def put(self, job: CampaignJob, payload, wall_clock_s: float = 0.0) -> str:
        """Insert (or replace) one solved job; returns its key.

        With ``group_commit=0`` (the default) the row commits before
        this returns.  Otherwise it lands in the buffer and commits on
        the next flush — triggered here once the buffer reaches the
        group-commit threshold.
        """
        key, row = self._row(job, payload, wall_clock_s)
        with self._lock:
            if self.group_commit > 0:
                self._buffer[key] = row
                if len(self._buffer) >= self.group_commit:
                    self._flush_locked()
            else:
                started = time.perf_counter()
                self._conn.execute(self._INSERT_SQL, row)
                self._conn.commit()
                self.flush_stats["flushes"] += 1
                self.flush_stats["rows"] += 1
                self.flush_stats["total_s"] += time.perf_counter() - started
        return key

    def put_many(
        self, items: list[tuple[CampaignJob, object, float]]
    ) -> tuple[list[str], float]:
        """Insert a batch of ``(job, payload, wall_clock_s)`` in ONE
        transaction; returns ``(keys, elapsed_s)`` — the keys in input
        order plus this commit's own latency.

        Any buffered group-commit rows ride along in the same commit
        (one fsync covers everything).  Bitwise semantics are identical
        to repeated :meth:`put` calls — same encoder, same row layout.
        """
        encoded = [self._row(job, payload, wall) for job, payload, wall in items]
        with self._lock:
            for key, row in encoded:
                self._buffer[key] = row
            _, elapsed = self._flush_locked()
        return [key for key, _ in encoded], elapsed

    def delete(self, job: CampaignJob) -> bool:
        """Drop one solved job; returns whether it existed."""
        key = job_key(job)
        with self._lock:
            buffered = self._buffer.pop(key, None) is not None
            cursor = self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self._conn.commit()
            return buffered or cursor.rowcount > 0

    # -- reads --------------------------------------------------------------

    def contains(self, job: CampaignJob) -> bool:
        """Whether this exact job is stored (no payload decode)."""
        with self._lock:
            self._flush_locked()
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ? AND schema_version = ?",
                (job_key(job), STORE_SCHEMA_VERSION),
            ).fetchone()
        return row is not None

    def get(self, job: CampaignJob) -> StoredResult | None:
        """The stored result of exactly this job, or None on a miss."""
        with self._lock:
            self._flush_locked()
            row = self._conn.execute(
                "SELECT payload_kind, payload, best_ms, wall_clock_s, created_s "
                "FROM results WHERE key = ? AND schema_version = ?",
                (job_key(job), STORE_SCHEMA_VERSION),
            ).fetchone()
        if row is None:
            return None
        payload_kind, text, best_ms, wall_clock_s, created_s = row
        return StoredResult(
            job=job,
            payload=decode_payload(payload_kind, text),
            best_ms=best_ms,
            wall_clock_s=wall_clock_s,
            created_s=created_s,
        )

    def query(
        self,
        network: str | None = None,
        platform: str | None = None,
        mode: str | None = None,
        kind: str | None = None,
        seed: int | None = None,
    ) -> list[StoredResult]:
        """All stored results matching the given filters (AND semantics).

        Results come back oldest-first; every filter is optional, so
        ``query()`` lists the whole corpus.
        """
        clauses, params = ["schema_version = ?"], [STORE_SCHEMA_VERSION]
        for column, value in (
            ("network", network),
            ("platform", platform),
            ("mode", mode),
            ("kind", kind),
            ("seed", seed),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = (
            "SELECT network, platform, mode, seed, kind, kernel, episodes, "
            "repeats, seeds, payload_kind, payload, best_ms, wall_clock_s, "
            "created_s FROM results WHERE " + " AND ".join(clauses)
            + " ORDER BY created_s"
        )
        with self._lock:
            self._flush_locked()
            rows = self._conn.execute(sql, params).fetchall()
        results = []
        for row in rows:
            job = CampaignJob(
                network=row[0],
                platform=row[1],
                mode=row[2],
                seed=row[3],
                kind=row[4],
                kernel=row[5],
                episodes=row[6],
                repeats=row[7],
                seeds=row[8],
            )
            results.append(
                StoredResult(
                    job=job,
                    payload=decode_payload(row[9], row[10]),
                    best_ms=row[11],
                    wall_clock_s=row[12],
                    created_s=row[13],
                )
            )
        return results

    # -- checkpoints (the anytime-search resume substrate) -------------------

    def put_checkpoint(
        self,
        key: str,
        text: str,
        format: int,
        episode: int,
        best_ms: float | None,
        now: float | None = None,
    ) -> str:
        """Persist (or replace) one job's latest checkpoint; returns key.

        One row per job identity — a newer checkpoint of the same job
        replaces the older one (resume always wants the latest
        boundary).  Commits immediately: a checkpoint's whole point is
        surviving the crash that follows it, so it never rides the
        group-commit buffer.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO checkpoints VALUES (?, ?, ?, ?, ?, ?)",
                (key, int(format), int(episode), best_ms, text, now),
            )
            self._conn.commit()
        return key

    def get_checkpoint(self, key: str) -> StoredCheckpoint | None:
        """The latest persisted checkpoint of this job key, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT job_key, format, episode, best_ms, checkpoint, "
                "updated_s FROM checkpoints WHERE job_key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        return StoredCheckpoint(
            job_key=row[0],
            format=row[1],
            episode=row[2],
            best_ms=row[3],
            text=row[4],
            updated_s=row[5],
        )

    def delete_checkpoint(self, key: str) -> bool:
        """Drop one job's checkpoint (completion hygiene); True if it
        existed."""
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM checkpoints WHERE job_key = ?", (key,)
            )
            self._conn.commit()
            return cursor.rowcount > 0

    def gc_checkpoints(self, ttl_s: float, now: float | None = None) -> int:
        """Drop checkpoints not updated within ``ttl_s`` seconds.

        Stale rows belong to jobs nobody resubmitted — the reaper calls
        this so an abandoned preemption cannot grow the store without
        bound.  Returns the number of rows collected.
        """
        now = time.time() if now is None else now
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM checkpoints WHERE updated_s < ?", (now - ttl_s,)
            )
            self._conn.commit()
            return cursor.rowcount

    def count_checkpoints(self) -> int:
        """Number of persisted checkpoints (tests and ``GET /stats``)."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM checkpoints"
            ).fetchone()
        return int(count)

    # -- leases (the fleet's pull protocol; see runtime/service.py) ----------

    def create_lease(
        self,
        lease_id: str,
        job_id: str | list[str],
        job_key: str | list[str],
        worker: str,
        ttl_s: float,
        attempt: int = 1,
        now: float | None = None,
    ) -> LeaseRecord:
        """Grant one lease: ``worker`` owns the job(s) until the deadline.

        ``job_id``/``job_key`` may be lists (a batch lease); they are
        stored space-joined — see :attr:`LeaseRecord.job_ids`.
        """
        now = time.time() if now is None else now
        record = LeaseRecord(
            lease_id=lease_id,
            job_id=" ".join(job_id) if isinstance(job_id, list) else job_id,
            job_key=" ".join(job_key) if isinstance(job_key, list) else job_key,
            worker=worker,
            state=LEASE_ACTIVE,
            attempt=attempt,
            created_s=now,
            deadline_s=now + ttl_s,
        )
        with self._lock:
            self._conn.execute(
                f"INSERT INTO leases ({_LEASE_COLUMNS}) VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.lease_id,
                    record.job_id,
                    record.job_key,
                    record.worker,
                    record.state,
                    record.attempt,
                    record.created_s,
                    record.deadline_s,
                    record.heartbeats,
                    record.finished_s,
                ),
            )
            self._conn.commit()
        return record

    def get_lease(self, lease_id: str) -> LeaseRecord | None:
        """One lease by id, or None."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_LEASE_COLUMNS} FROM leases WHERE lease_id = ?",
                (lease_id,),
            ).fetchone()
        return LeaseRecord(*row) if row is not None else None

    def heartbeat_lease(
        self, lease_id: str, ttl_s: float, now: float | None = None
    ) -> LeaseRecord | None:
        """Extend an active lease's deadline; None when not extendable.

        A heartbeat arriving *after* the deadline flips the lease to
        ``expired`` right here (instead of waiting for the reaper), so
        "heartbeat after expiry answers 409" holds deterministically —
        the worker learns it lost the lease on its very next beat.
        """
        now = time.time() if now is None else now
        with self._lock:
            row = self._conn.execute(
                "SELECT state, deadline_s FROM leases WHERE lease_id = ?",
                (lease_id,),
            ).fetchone()
            if row is None or row[0] != LEASE_ACTIVE:
                return None
            if row[1] < now:
                self._conn.execute(
                    "UPDATE leases SET state = ?, finished_s = ? "
                    "WHERE lease_id = ?",
                    (LEASE_EXPIRED, now, lease_id),
                )
                self._conn.commit()
                return None
            self._conn.execute(
                "UPDATE leases SET deadline_s = ?, heartbeats = heartbeats + 1 "
                "WHERE lease_id = ?",
                (now + ttl_s, lease_id),
            )
            self._conn.commit()
        return self.get_lease(lease_id)

    def finish_lease(
        self, lease_id: str, state: str, now: float | None = None
    ) -> LeaseRecord | None:
        """Move an *active* lease to a terminal state; None otherwise.

        The active-only guard makes result submission race-free: of a
        worker's submission and the reaper's expiry, exactly one wins.
        """
        if state not in (LEASE_COMPLETED, LEASE_FAILED, LEASE_EXPIRED, LEASE_RELEASED):
            raise ConfigError(f"invalid terminal lease state {state!r}")
        now = time.time() if now is None else now
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE leases SET state = ?, finished_s = ? "
                "WHERE lease_id = ? AND state = ?",
                (state, now, lease_id, LEASE_ACTIVE),
            )
            self._conn.commit()
            if cursor.rowcount == 0:
                return None
        return self.get_lease(lease_id)

    def expire_due_leases(self, now: float | None = None) -> list[LeaseRecord]:
        """Flip every active lease past its deadline to ``expired``.

        Returns the freshly expired leases — the reaper requeues their
        jobs (bounded by the retry budget).
        """
        now = time.time() if now is None else now
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_LEASE_COLUMNS} FROM leases "
                "WHERE state = ? AND deadline_s < ?",
                (LEASE_ACTIVE, now),
            ).fetchall()
            if rows:
                self._conn.execute(
                    "UPDATE leases SET state = ?, finished_s = ? "
                    "WHERE state = ? AND deadline_s < ?",
                    (LEASE_EXPIRED, now, LEASE_ACTIVE, now),
                )
                self._conn.commit()
        expired = [LeaseRecord(*row) for row in rows]
        for record in expired:
            record.state = LEASE_EXPIRED
            record.finished_s = now
        return expired

    def active_leases(self) -> list[LeaseRecord]:
        """Every active lease, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_LEASE_COLUMNS} FROM leases WHERE state = ? "
                "ORDER BY created_s",
                (LEASE_ACTIVE,),
            ).fetchall()
        return [LeaseRecord(*row) for row in rows]

    def release_active_leases(self, now: float | None = None) -> int:
        """Release every active lease (service start/stop hygiene).

        A service inheriting a persistent store from a crashed
        predecessor must not treat its stale leases as live work;
        a service shutting down releases what its drain did not wait
        out.  Returns the number of leases released.
        """
        now = time.time() if now is None else now
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE leases SET state = ?, finished_s = ? WHERE state = ?",
                (LEASE_RELEASED, now, LEASE_ACTIVE),
            )
            self._conn.commit()
            return cursor.rowcount

    def __len__(self) -> int:
        """Number of stored results (current schema only)."""
        with self._lock:
            self._flush_locked()
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE schema_version = ?",
                (STORE_SCHEMA_VERSION,),
            ).fetchone()
        return int(count)

    def close(self) -> None:
        """Flush any buffered rows and close the sqlite connection."""
        with self._lock:
            try:
                self._flush_locked()
            finally:
                self._conn.close()

    def __enter__(self) -> "ResultStore":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the connection."""
        self.close()
