"""Stdlib HTTP client for the campaign service (``repro submit``).

A thin wrapper over :mod:`http.client` — the service speaks plain
HTTP/1.1 with JSON bodies and Server-Sent-Events progress streams, so
no third-party client is needed.  Maps the service's error statuses
back onto the package's exception hierarchy: 429 raises
:class:`~repro.errors.QueueFullError`, other non-2xx statuses raise
:class:`~repro.errors.ServiceError` carrying the server's message.

The client keeps **one persistent keep-alive connection** (the service
honours ``Connection: keep-alive``), so a worker's lease/heartbeat/
result traffic rides a single TCP stream instead of paying connect +
slow-start per request.  The pooled connection is lock-guarded (one
request in flight per client) and transparently replaced when the
server closes it between requests; every path — success, HTTP error,
transport error — either returns the connection to the pool or closes
it, so no socket leaks.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from urllib.parse import urlencode, urlsplit

from repro.errors import LeaseExpiredError, QueueFullError, ServiceError

#: Default service address (the ``ServiceConfig`` defaults).
DEFAULT_URL = "http://127.0.0.1:8421"

#: Transport errors that mean "the server closed the idle keep-alive
#: connection between our requests".  Only these are retried, and only
#: on a *reused* connection's first attempt — the request never reached
#: the application, so resending cannot double-execute anything.  A
#: timeout or error mid-response is NOT retried (the request may have
#: executed).
_RETRYABLE = (
    http.client.BadStatusLine,
    http.client.RemoteDisconnected,
    ConnectionResetError,
    BrokenPipeError,
)


class ServiceClient:
    """Synchronous client for one campaign-service endpoint.

    Parameters
    ----------
    url:
        Base address, e.g. ``http://127.0.0.1:8421``.
    timeout:
        Socket timeout in seconds for each request (progress streams
        use it per-read, so heartbeats keep long streams alive).
    keep_alive:
        Reuse one persistent connection across requests (the default).
        ``False`` sends ``Connection: close`` and dials per request —
        the pre-pooling behaviour, kept for the throughput benchmark's
        legacy mode and as an escape hatch for broken middleboxes.
    """

    def __init__(
        self,
        url: str = DEFAULT_URL,
        timeout: float = 60.0,
        keep_alive: bool = True,
    ) -> None:
        split = urlsplit(url if "//" in url else f"//{url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(f"only http:// URLs are supported, got {url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8421
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._lock = threading.Lock()
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -----------------------------------------------------------

    def _exchange(
        self,
        method: str,
        path: str,
        payload: bytes | None,
        headers: dict,
    ) -> tuple[int, bytes]:
        """One request/response on the pooled connection.

        Takes the pooled connection (or dials), sends, reads the full
        body, and returns the connection to the pool when both sides
        agreed to keep it alive — otherwise closes it.  A transport
        error on a freshly *reused* connection before any response
        bytes arrived means the server reaped the idle socket; that
        one case retries once on a fresh connection.
        """
        if not self.keep_alive:
            headers.setdefault("Connection", "close")
        with self._lock:
            for attempt in (1, 2):
                conn, self._conn = self._conn, None
                reused = conn is not None
                if conn is None:
                    conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                try:
                    conn.request(method, path, body=payload, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                except _RETRYABLE:
                    conn.close()
                    if reused and attempt == 1:
                        continue
                    raise
                except BaseException:
                    conn.close()
                    raise
                if self.keep_alive and not response.will_close:
                    self._conn = conn
                else:
                    conn.close()
                return response.status, raw
        raise AssertionError("unreachable")  # pragma: no cover

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """One request/response cycle; returns ``(status, json_body)``."""
        payload = json.dumps(body).encode() if body is not None else None
        sent = {"Content-Type": "application/json"} if payload else {}
        sent.update(headers or {})
        status, raw = self._exchange(method, path, payload, sent)
        return status, json.loads(raw) if raw else {}

    def request_text(self, method: str, path: str) -> tuple[int, str]:
        """One request/response cycle for a non-JSON endpoint
        (``GET /metrics``); returns ``(status, text_body)``."""
        status, raw = self._exchange(method, path, None, {})
        return status, raw.decode()

    def close(self) -> None:
        """Close the pooled connection (if any); the client stays
        usable — the next request simply dials again."""
        with self._lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the pooled connection."""
        self.close()

    def _checked(self, method: str, path: str, body: dict | None = None) -> dict:
        status, parsed = self.request(method, path, body)
        if status == 429:
            raise QueueFullError(parsed.get("error", "queue full"))
        if status >= 400:
            raise ServiceError(
                f"{method} {path} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    # -- the API ------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._checked("GET", "/healthz")

    def submit(self, body: dict, tenant: str | None = None) -> list[dict]:
        """``POST /jobs``; returns the accepted job records.

        ``tenant`` sets the ``X-Tenant`` header (admission quotas and
        rate limits are accounted per tenant; omitted = "default").
        """
        headers = {"X-Tenant": tenant} if tenant is not None else None
        status, parsed = self.request("POST", "/jobs", body, headers=headers)
        if status == 429:
            raise QueueFullError(parsed.get("error", "queue full"))
        if status >= 400:
            raise ServiceError(
                f"POST /jobs -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed["jobs"]

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition, verbatim.

        Parse it with :func:`repro.runtime.metrics.parse_samples`.
        """
        status, text = self.request_text("GET", "/metrics")
        if status >= 400:
            raise ServiceError(f"GET /metrics -> {status}")
        return text

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}`` — full record, payload included when done."""
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """``GET /jobs`` — every record the service tracks."""
        return self._checked("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/{id}`` — cancel a queued job, or preempt a
        running one into a checkpoint when the service checkpoints."""
        return self._checked("DELETE", f"/jobs/{job_id}")

    def results(self, **filters) -> list[dict]:
        """``GET /results`` with optional equality filters."""
        query = urlencode({k: v for k, v in filters.items() if v is not None})
        path = f"/results?{query}" if query else "/results"
        return self._checked("GET", path)["results"]

    def shutdown(self) -> dict:
        """``POST /shutdown`` — graceful remote stop."""
        return self._checked("POST", "/shutdown")

    # -- worker protocol (the fleet; see runtime/worker.py) ---------------

    def register_worker(self, name: str | None = None) -> dict:
        """``POST /workers`` — register this host; returns the grant
        (worker id, lease TTL, suggested heartbeat interval)."""
        body = {"name": name} if name is not None else {}
        return self._checked("POST", "/workers", body)

    def workers(self) -> dict:
        """``GET /workers`` — registered workers plus active leases."""
        return self._checked("GET", "/workers")

    def lease(self, worker_id: str, max_jobs: int = 1) -> dict | None:
        """``POST /leases`` — claim the next queued job(s).

        Returns the grant (``lease`` + ``job``, plus ``jobs`` listing
        the whole batch) or None when the queue is empty (HTTP 204) —
        poll again later.  ``max_jobs > 1`` asks for a *batch* lease:
        up to that many jobs under one lease id and one heartbeat
        (the service clamps to its ``lease_batch_limit``).
        """
        body: dict = {"worker": worker_id}
        if max_jobs != 1:
            body["max_jobs"] = max_jobs
        status, parsed = self.request("POST", "/leases", body)
        if status == 204:
            return None
        if status == 409:
            raise LeaseExpiredError(parsed.get("error", "lease conflict"))
        if status >= 400:
            raise ServiceError(
                f"POST /leases -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def _checked_lease(self, path: str, body: dict | None = None) -> dict:
        """POST to a lease sub-resource; 409 means the lease is gone."""
        status, parsed = self.request("POST", path, body)
        if status == 409:
            raise LeaseExpiredError(parsed.get("error", "lease expired"))
        if status >= 400:
            raise ServiceError(
                f"POST {path} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def heartbeat(
        self, lease_id: str, checkpoints: dict[str, str] | None = None
    ) -> dict:
        """``POST /leases/{id}/heartbeat`` — extend the claim by one
        TTL.  Raises :class:`LeaseExpiredError` once the lease is gone.

        ``checkpoints`` optionally carries the latest encoded anytime
        checkpoint per job id of the lease (see
        :mod:`repro.core.checkpoint`); the service persists each into
        its store, making preemption and crash recovery lossless up to
        the last delivered snapshot.
        """
        body = {"checkpoints": checkpoints} if checkpoints else None
        return self._checked_lease(f"/leases/{lease_id}/heartbeat", body)

    def submit_result(self, lease_id: str, outcome: dict) -> dict:
        """``POST /leases/{id}/result`` — deliver the executed job.

        ``outcome`` is either an encoded payload (``payload_kind`` /
        ``payload`` / ``wall_clock_s`` / ``lut_from_cache``) or an
        ``{"error": ...}`` job failure.  Raises
        :class:`LeaseExpiredError` when the lease expired first (the
        job was requeued; discard the work).
        """
        return self._checked_lease(f"/leases/{lease_id}/result", outcome)

    def submit_results(self, lease_id: str, outcomes: list[dict]) -> dict:
        """``POST /leases/{id}/results`` — deliver a whole lease batch.

        Each outcome is the :meth:`submit_result` body plus a
        ``job_id`` attributing it to one job of the batch.  The
        response carries a per-job ``results`` status array and the
        ids of any jobs the service requeued (``requeued``) — one
        job's failure never poisons its siblings.
        """
        return self._checked_lease(
            f"/leases/{lease_id}/results", {"results": outcomes}
        )

    # -- LUT shard endpoints (the fleet cache; see runtime/lutcache.py) --

    def lut_index(self) -> list[dict]:
        """``GET /luts`` — every shard entry the service advertises."""
        return self._checked("GET", "/luts")["luts"]

    def get_lut(self, platform: str, network: str, **key) -> dict | None:
        """``GET /luts/{platform}/{network}`` — the LUT JSON payload.

        ``key`` holds the remaining identity fields (``mode``, and
        optionally ``seed``/``repeats``/``version``).  Returns None on
        a 404 miss instead of raising — a miss is an answer.
        """
        query = urlencode({k: v for k, v in key.items() if v is not None})
        status, parsed = self.request("GET", f"/luts/{platform}/{network}?{query}")
        if status == 404:
            return None
        if status >= 400:
            raise ServiceError(
                f"GET /luts/{platform}/{network} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def put_lut(self, platform: str, network: str, payload: dict, **key) -> dict:
        """``PUT /luts/{platform}/{network}`` — publish one LUT entry."""
        query = urlencode({k: v for k, v in key.items() if v is not None})
        status, parsed = self.request(
            "PUT", f"/luts/{platform}/{network}?{query}", payload
        )
        if status >= 400:
            raise ServiceError(
                f"PUT /luts/{platform}/{network} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def wait(self, job_id: str, poll_s: float = 0.2, timeout: float = 600.0) -> dict:
        """Poll ``GET /jobs/{id}`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def stream_progress(self, job_id: str):
        """``GET /jobs/{id}/progress`` — yields ``(event, data)`` pairs.

        Iterates the SSE stream until the server closes it (after the
        terminal event), decoding each ``data:`` line from JSON.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/progress")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                parsed = json.loads(raw) if raw else {}
                raise ServiceError(
                    f"GET /jobs/{job_id}/progress -> {response.status}: "
                    f"{parsed.get('error', 'unknown error')}"
                )
            event = None
            for raw_line in response:
                line = raw_line.decode().rstrip("\n")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: ") and event is not None:
                    yield event, json.loads(line[len("data: "):])
                elif not line:
                    event = None
        finally:
            conn.close()
