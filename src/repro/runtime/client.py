"""Stdlib HTTP client for the campaign service (``repro submit``).

A thin wrapper over :mod:`http.client` — the service speaks plain
HTTP/1.1 with JSON bodies and Server-Sent-Events progress streams, so
no third-party client is needed.  Maps the service's error statuses
back onto the package's exception hierarchy: 429 raises
:class:`~repro.errors.QueueFullError`, other non-2xx statuses raise
:class:`~repro.errors.ServiceError` carrying the server's message.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlencode, urlsplit

from repro.errors import LeaseExpiredError, QueueFullError, ServiceError

#: Default service address (the ``ServiceConfig`` defaults).
DEFAULT_URL = "http://127.0.0.1:8421"


class ServiceClient:
    """Synchronous client for one campaign-service endpoint.

    Parameters
    ----------
    url:
        Base address, e.g. ``http://127.0.0.1:8421``.
    timeout:
        Socket timeout in seconds for each request (progress streams
        use it per-read, so heartbeats keep long streams alive).
    """

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 60.0) -> None:
        split = urlsplit(url if "//" in url else f"//{url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(f"only http:// URLs are supported, got {url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8421
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """One request/response cycle; returns ``(status, json_body)``."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            sent = {"Content-Type": "application/json"} if payload else {}
            sent.update(headers or {})
            conn.request(method, path, body=payload, headers=sent)
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw else {}
            return response.status, parsed
        finally:
            conn.close()

    def request_text(self, method: str, path: str) -> tuple[int, str]:
        """One request/response cycle for a non-JSON endpoint
        (``GET /metrics``); returns ``(status, text_body)``."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, response.read().decode()
        finally:
            conn.close()

    def _checked(self, method: str, path: str, body: dict | None = None) -> dict:
        status, parsed = self.request(method, path, body)
        if status == 429:
            raise QueueFullError(parsed.get("error", "queue full"))
        if status >= 400:
            raise ServiceError(
                f"{method} {path} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    # -- the API ------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._checked("GET", "/healthz")

    def submit(self, body: dict, tenant: str | None = None) -> list[dict]:
        """``POST /jobs``; returns the accepted job records.

        ``tenant`` sets the ``X-Tenant`` header (admission quotas and
        rate limits are accounted per tenant; omitted = "default").
        """
        headers = {"X-Tenant": tenant} if tenant is not None else None
        status, parsed = self.request("POST", "/jobs", body, headers=headers)
        if status == 429:
            raise QueueFullError(parsed.get("error", "queue full"))
        if status >= 400:
            raise ServiceError(
                f"POST /jobs -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed["jobs"]

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition, verbatim.

        Parse it with :func:`repro.runtime.metrics.parse_samples`.
        """
        status, text = self.request_text("GET", "/metrics")
        if status >= 400:
            raise ServiceError(f"GET /metrics -> {status}")
        return text

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}`` — full record, payload included when done."""
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """``GET /jobs`` — every record the service tracks."""
        return self._checked("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/{id}`` (queued jobs only)."""
        return self._checked("DELETE", f"/jobs/{job_id}")

    def results(self, **filters) -> list[dict]:
        """``GET /results`` with optional equality filters."""
        query = urlencode({k: v for k, v in filters.items() if v is not None})
        path = f"/results?{query}" if query else "/results"
        return self._checked("GET", path)["results"]

    def shutdown(self) -> dict:
        """``POST /shutdown`` — graceful remote stop."""
        return self._checked("POST", "/shutdown")

    # -- worker protocol (the fleet; see runtime/worker.py) ---------------

    def register_worker(self, name: str | None = None) -> dict:
        """``POST /workers`` — register this host; returns the grant
        (worker id, lease TTL, suggested heartbeat interval)."""
        body = {"name": name} if name is not None else {}
        return self._checked("POST", "/workers", body)

    def workers(self) -> dict:
        """``GET /workers`` — registered workers plus active leases."""
        return self._checked("GET", "/workers")

    def lease(self, worker_id: str) -> dict | None:
        """``POST /leases`` — claim the next queued job.

        Returns the grant (``lease`` + ``job``) or None when the queue
        is empty (HTTP 204) — poll again later.
        """
        status, parsed = self.request("POST", "/leases", {"worker": worker_id})
        if status == 204:
            return None
        if status == 409:
            raise LeaseExpiredError(parsed.get("error", "lease conflict"))
        if status >= 400:
            raise ServiceError(
                f"POST /leases -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def _checked_lease(self, path: str, body: dict | None = None) -> dict:
        """POST to a lease sub-resource; 409 means the lease is gone."""
        status, parsed = self.request("POST", path, body)
        if status == 409:
            raise LeaseExpiredError(parsed.get("error", "lease expired"))
        if status >= 400:
            raise ServiceError(
                f"POST {path} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def heartbeat(self, lease_id: str) -> dict:
        """``POST /leases/{id}/heartbeat`` — extend the claim by one
        TTL.  Raises :class:`LeaseExpiredError` once the lease is gone."""
        return self._checked_lease(f"/leases/{lease_id}/heartbeat")

    def submit_result(self, lease_id: str, outcome: dict) -> dict:
        """``POST /leases/{id}/result`` — deliver the executed job.

        ``outcome`` is either an encoded payload (``payload_kind`` /
        ``payload`` / ``wall_clock_s`` / ``lut_from_cache``) or an
        ``{"error": ...}`` job failure.  Raises
        :class:`LeaseExpiredError` when the lease expired first (the
        job was requeued; discard the work).
        """
        return self._checked_lease(f"/leases/{lease_id}/result", outcome)

    # -- LUT shard endpoints (the fleet cache; see runtime/lutcache.py) --

    def lut_index(self) -> list[dict]:
        """``GET /luts`` — every shard entry the service advertises."""
        return self._checked("GET", "/luts")["luts"]

    def get_lut(self, platform: str, network: str, **key) -> dict | None:
        """``GET /luts/{platform}/{network}`` — the LUT JSON payload.

        ``key`` holds the remaining identity fields (``mode``, and
        optionally ``seed``/``repeats``/``version``).  Returns None on
        a 404 miss instead of raising — a miss is an answer.
        """
        query = urlencode({k: v for k, v in key.items() if v is not None})
        status, parsed = self.request("GET", f"/luts/{platform}/{network}?{query}")
        if status == 404:
            return None
        if status >= 400:
            raise ServiceError(
                f"GET /luts/{platform}/{network} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def put_lut(self, platform: str, network: str, payload: dict, **key) -> dict:
        """``PUT /luts/{platform}/{network}`` — publish one LUT entry."""
        query = urlencode({k: v for k, v in key.items() if v is not None})
        status, parsed = self.request(
            "PUT", f"/luts/{platform}/{network}?{query}", payload
        )
        if status >= 400:
            raise ServiceError(
                f"PUT /luts/{platform}/{network} -> {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def wait(self, job_id: str, poll_s: float = 0.2, timeout: float = 600.0) -> dict:
        """Poll ``GET /jobs/{id}`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def stream_progress(self, job_id: str):
        """``GET /jobs/{id}/progress`` — yields ``(event, data)`` pairs.

        Iterates the SSE stream until the server closes it (after the
        terminal event), decoding each ``data:`` line from JSON.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/progress")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                parsed = json.loads(raw) if raw else {}
                raise ServiceError(
                    f"GET /jobs/{job_id}/progress -> {response.status}: "
                    f"{parsed.get('error', 'unknown error')}"
                )
            event = None
            for raw_line in response:
                line = raw_line.decode().rstrip("\n")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: ") and event is not None:
                    yield event, json.loads(line[len("data: "):])
                elif not line:
                    event = None
        finally:
            conn.close()
