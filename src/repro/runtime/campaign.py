"""Batched search campaigns: many (network x platform x mode x seed)
jobs, sharded across worker processes.

The paper runs one search at a time; serving "as many scenarios as you
can imagine" means running whole grids of them — every Table II cell,
multi-seed robustness sweeps, per-platform comparisons.  A
:class:`Campaign` takes a list of :class:`CampaignJob` descriptions and

* shards them across a :class:`concurrent.futures.ProcessPoolExecutor`
  (``workers=1`` runs inline, no process overhead),
* resolves profiled LUTs through the tiered shard cache
  (:mod:`repro.runtime.lutcache`: local ``platform/network`` shard
  directories, then remote shard servers), so re-running a campaign —
  or sharing a cache directory or a fleet shard server between
  campaigns — skips the expensive profiling phase entirely,
* returns results in job order, each carrying its payload (a Table II
  row or a full method comparison) plus cache/wall-clock accounting.

Jobs carry platform *names* (resolved via :data:`PLATFORM_FACTORIES`
in the worker), so a campaign pickles cheaply and runs identically in
every process.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.backends.registry import Mode
from repro.engine.lut import LatencyTable
from repro.engine.optimizer import InferenceEngineOptimizer
from repro.engine.pricing import SharedCostTables
from repro.errors import ConfigError, ScheduleError
from repro.hw import jetson_tx2, jetson_tx2_maxn, raspberry_pi3
from repro.runtime.lutcache import LutKey, open_cache
from repro.utils.fsio import atomic_write_text
from repro.zoo import available_networks, build_network

#: Platform factories by name — the unit a job ships across processes.
PLATFORM_FACTORIES = {
    "jetson_tx2": jetson_tx2,
    "jetson_tx2_maxn": jetson_tx2_maxn,
    "raspberry_pi3": raspberry_pi3,
}

#: Payload kinds a campaign job can compute.
JOB_KINDS = (
    "table2",
    "compare",
    "cem",
    "ga",
    "multi-seed",
    "search",
    "linear-q",
    "mlp-q",
)

#: Kinds whose searches can be seeded from a Q prior (warm start).
WARMABLE_KINDS = ("search", "multi-seed")


def require_canonical_platform(platform) -> str:
    """The platform's registry name, or ConfigError if it is not a
    stock preset.

    Campaign jobs rebuild platforms *by name* in worker processes;
    accepting a customized platform here (e.g. a different noise
    sigma, or a derived preset like ``cpu_only``) would silently
    discard the customization and price against a different board.
    """
    factory = PLATFORM_FACTORIES.get(platform.name)
    if factory is None or factory() != platform:
        raise ConfigError(
            f"platform {platform.name!r} is not a stock preset; campaign "
            "jobs rebuild platforms by name, which would discard this "
            "platform's customizations — run serially without a cache "
            "directory, or add a factory to PLATFORM_FACTORIES"
        )
    return platform.name


@dataclass(frozen=True)
class CampaignJob:
    """One search scenario: a (network, platform, mode, seed) cell.

    ``kind`` selects the payload: ``"table2"`` produces a
    :class:`~repro.analysis.speedup.Table2Row`; ``"compare"`` a
    :class:`~repro.analysis.compare.MethodComparison` (every method at
    the same budget); ``"cem"`` / ``"ga"`` a single population-based
    :class:`~repro.core.result.SearchResult`; ``"multi-seed"`` a
    :class:`~repro.core.multi_seed.MultiSeedResult` over ``seeds``
    consecutive seeds starting at ``seed``; ``"search"`` a single
    QS-DNN :class:`~repro.core.result.SearchResult` — the same search
    (and bitwise the same ``best_ms``) that ``repro search`` runs over
    a saved LUT.  ``episodes=None`` uses the per-network auto budget.
    """

    network: str
    platform: str = "jetson_tx2"
    mode: str = "cpu"
    seed: int = 0
    episodes: int | None = None
    kind: str = "table2"
    repeats: int = 50
    #: Seed count for ``kind="multi-seed"`` (ignored by other kinds).
    seeds: int = 8
    #: Episode-kernel backend of the job's QS-DNN searches ("auto",
    #: "numba", "reference" or "mega"; see :mod:`repro.core.kernels`).
    kernel: str = "auto"
    #: Q-prior seeding the job's search (``off``/``stored``/
    #: ``surrogate``; see :mod:`repro.core.priors`).  Only the
    #: checkpointable search kinds accept a warm start.
    warm_start: str = "off"

    def __post_init__(self) -> None:
        if self.network not in available_networks():
            raise ConfigError(f"unknown network {self.network!r}")
        if self.platform not in PLATFORM_FACTORIES:
            raise ConfigError(
                f"unknown platform {self.platform!r}; "
                f"have {sorted(PLATFORM_FACTORIES)}"
            )
        Mode(self.mode)  # validates
        if self.kind not in JOB_KINDS:
            raise ConfigError(f"unknown job kind {self.kind!r}; have {JOB_KINDS}")
        # Jobs arrive from untrusted JSON (the service's POST /jobs):
        # integer fields must be *checked* integers, not duck-typed —
        # a string seed would otherwise be admitted and only blow up
        # later inside a worker process.
        for name in ("seed", "repeats", "seeds"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError(f"{name} must be an integer, got {value!r}")
        if self.episodes is not None and (
            not isinstance(self.episodes, int) or isinstance(self.episodes, bool)
        ):
            raise ConfigError(
                f"episodes must be an integer or null, got {self.episodes!r}"
            )
        if self.episodes is not None and self.episodes < 1:
            raise ConfigError(f"episodes must be >= 1, got {self.episodes}")
        if self.repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {self.repeats}")
        if self.seeds < 1:
            raise ConfigError(f"seeds must be >= 1, got {self.seeds}")
        if self.kernel not in ("auto", "numba", "reference", "mega"):
            raise ConfigError(
                "kernel must be auto, numba, reference or mega, "
                f"got {self.kernel!r}"
            )
        from repro.core.priors import validate_warm_start

        validate_warm_start(self.warm_start)
        if self.warm_start != "off" and self.kind not in WARMABLE_KINDS:
            raise ConfigError(
                f"warm_start={self.warm_start!r} applies to kinds "
                f"{WARMABLE_KINDS}, not {self.kind!r}"
            )

    @property
    def label(self) -> str:
        """Compact human-readable job identity."""
        return f"{self.network}/{self.platform}/{self.mode}/seed{self.seed}"


@dataclass
class CampaignResult:
    """Outcome of one campaign job."""

    job: CampaignJob
    #: Table2Row (table2), MethodComparison (compare), SearchResult
    #: (cem/ga) or MultiSeedResult (multi-seed).
    payload: object
    wall_clock_s: float = 0.0
    lut_from_cache: bool = False


def lut_cache_path(cache_dir: Path, job: CampaignJob) -> Path:
    """Where a job's profiled LUT lives in the sharded local tier.

    ``cache_dir/platform/network/mode__seedS__rR__vVERSION.json`` — the
    package version is part of the key so a cache directory shared
    across repo revisions never silently serves LUTs profiled under an
    older cost model (see :mod:`repro.runtime.lutcache`).
    """
    key = LutKey.from_job(job)
    return Path(cache_dir) / key.platform / key.network / key.filename


def profile_lut(job: CampaignJob) -> LatencyTable:
    """Run the inference phase for one job (the cache chain's last rung)."""
    platform = PLATFORM_FACTORIES[job.platform]()
    graph = build_network(job.network)
    optimizer = InferenceEngineOptimizer(
        graph, platform, mode=Mode(job.mode), seed=job.seed, repeats=job.repeats
    )
    return optimizer.profile()


#: Per-process memo of cache-resolved LUTs.  A worker that runs many
#: jobs against the same (platform, network, mode, seed, repeats) key
#: used to re-read and re-parse the cache entry — and rebuild the
#: IndexedLUT / CostEngine tensors — once per job.  Holding the
#: resolved ``LatencyTable`` keeps its ``indexed()`` / ``engine()``
#: caches warm across jobs in one process.  The key includes the cache
#: *identity* (directory and remotes), so distinct cache trees never
#: serve each other's entries, and the memo only engages when a cache
#: is configured at all: no cache means the caller asked for a fresh
#: profile every call, and that contract stands.
_LUT_MEMO: dict = {}
_LUT_MEMO_CAP = 32


def _lut_memo_key(job: CampaignJob, cache_dir, cache_remote):
    remotes = (
        (cache_remote,)
        if isinstance(cache_remote, str)
        else tuple(cache_remote or ())
    )
    root = str(Path(cache_dir).resolve()) if cache_dir is not None else None
    return (root, remotes, LutKey.from_job(job))


def load_or_profile_lut(
    job: CampaignJob,
    cache_dir: Path | None = None,
    cache_remote: str | list[str] | None = None,
) -> tuple[LatencyTable, bool]:
    """Resolve a job's LUT through the tiered cache, profiling on miss.

    Returns ``(lut, from_cache)``.  The chain is per-process memo →
    local shard tier → remote shard server(s) → profile, with remote
    hits published into the local tier and fresh profiles written
    through to every writable tier.  JSON round-trips preserve floats
    exactly, so a LUT from any tier prices bitwise-identically to a
    fresh profile; a memo hit *is* a cache hit (the memoized table was
    resolved through — or written through to — this same cache).
    """
    cache = open_cache(cache_dir, cache_remote)
    if cache is None:
        return profile_lut(job), False
    memo_key = _lut_memo_key(job, cache_dir, cache_remote)
    memoized = _LUT_MEMO.get(memo_key)
    if memoized is not None:
        from repro.runtime.metrics import DEFAULT_REGISTRY

        DEFAULT_REGISTRY.counter(
            "repro_lut_cache_hits_total",
            "LUT resolutions answered by a cache tier, by tier kind.",
        ).inc(tier="memo")
        return memoized, True
    resolution = cache.resolve(job, lambda: profile_lut(job))
    if len(_LUT_MEMO) >= _LUT_MEMO_CAP:
        _LUT_MEMO.pop(next(iter(_LUT_MEMO)))
    _LUT_MEMO[memo_key] = resolution.lut
    return resolution.lut, resolution.from_cache


#: Per-process map of *attached* shared-table segments by name — a
#: worker maps each segment once and reuses the attachment (and its
#: zero-copy engine) for every subsequent job.  Mappings are closed at
#: interpreter exit; the segment itself is the owner's to unlink.
_ATTACHED_TABLES: dict[str, SharedCostTables] = {}


def _close_attached_tables() -> None:
    for shared in _ATTACHED_TABLES.values():
        shared.close()
    _ATTACHED_TABLES.clear()


def _attach_shared_tables(lut: LatencyTable, name: str) -> None:
    """Point a LUT's pricing at the host's shared tensor segment.

    Best-effort by design: if the segment is gone (the owner died or
    already cleaned up) or describes a different table, the job simply
    builds its own engine — bitwise the same prices, one extra private
    copy.  Sharing is an optimization, never a correctness dependency.
    """
    view = lut.indexed()
    if view.has_engine:
        return  # memoized LUT already carries an engine (shared or not)
    try:
        shared = _ATTACHED_TABLES.get(name)
        if shared is None:
            shared = SharedCostTables.attach(name)
            if not _ATTACHED_TABLES:
                atexit.register(_close_attached_tables)
            _ATTACHED_TABLES[name] = shared
        view.adopt_engine(shared.engine())
    except (OSError, ScheduleError, ValueError):
        return


#: Batches of *owned* segments still live in this process, unlinked at
#: interpreter exit as a last resort (normal lifecycles unlink them in
#: a ``finally`` the moment their worker pool drains).  ``unlink`` is
#: idempotent, so the atexit sweep is free for well-behaved runs.
_OWNED_TABLES: list[list[SharedCostTables]] = []
_OWNER_PID = os.getpid()


@atexit.register
def _unlink_owned_tables() -> None:
    if os.getpid() != _OWNER_PID:
        # A forked worker inherited the registry; the segments belong
        # to the parent and must outlive this child.
        return
    for batch in _OWNED_TABLES:
        for shared in batch:
            shared.close()
            shared.unlink()
    _OWNED_TABLES.clear()


def release_shared_tables(exported: dict[LutKey, SharedCostTables]) -> None:
    """Unmap and unlink a batch of owned segments (idempotent)."""
    batch = list(exported.values())
    for shared in batch:
        shared.close()
        shared.unlink()
    if batch in _OWNED_TABLES:
        _OWNED_TABLES.remove(batch)


def checkpoint_spool_name(key: str) -> str:
    """Stable filesystem-safe spool-file stem for a job key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]


def spool_paths(spool_dir: str | Path, key: str) -> tuple[Path, Path, Path]:
    """The ``(checkpoint, progress, cancel)`` spool paths of a job key.

    The anytime spool is how checkpoints cross the pool-worker process
    boundary (``ProcessPoolExecutor`` cannot ship callables): workers
    atomically write ``<sha>.ckpt`` (the encoded checkpoint) and
    ``<sha>.progress`` (a tiny ``{"episode", "best_ms"}`` sidecar the
    SSE stream polls), and poll for a ``<sha>.cancel`` flag the service
    drops to preempt the job.
    """
    stem = checkpoint_spool_name(key)
    base = Path(spool_dir)
    return (
        base / f"{stem}.ckpt",
        base / f"{stem}.progress",
        base / f"{stem}.cancel",
    )


def _spool_checkpoint_callback(spool_dir: str | Path, key: str):
    """Build the spool-backed ``on_checkpoint`` for one job.

    Writes the snapshot and its progress sidecar atomically, then
    honors the cancel flag by returning ``False`` — the cancel check
    runs *after* the write so a preempted job's final checkpoint is
    always on disk for the service to persist and resume from.
    """
    from repro.core.checkpoint import encode_checkpoint

    ckpt_path, progress_path, cancel_path = spool_paths(spool_dir, key)

    def on_checkpoint(ckpt: dict):
        atomic_write_text(ckpt_path, encode_checkpoint(ckpt))
        atomic_write_text(
            progress_path,
            json.dumps(
                {"episode": ckpt["episode"], "best_ms": ckpt["best_ms"]}
            ),
        )
        return not cancel_path.exists()

    return on_checkpoint


def execute_job(
    job: CampaignJob,
    cache_dir: str | Path | None = None,
    cache_remote: str | list[str] | None = None,
    shared_tables: str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | Path | None = None,
    resume_text: str | None = None,
    on_checkpoint=None,
    warm_text: str | None = None,
) -> CampaignResult:
    """Run one job to completion (profiling, search, baselines).

    Module-level so worker processes can import it by reference.
    ``shared_tables`` names a :class:`SharedCostTables` segment the
    campaign parent exported for this job's LUT key; when given, the
    job prices against the host's single shared tensor copy instead of
    building its own (bitwise-identical either way).

    The anytime arguments apply to the checkpointable kinds
    (``"search"`` and ``"multi-seed"``) and are ignored by the rest:
    ``checkpoint_every=N`` captures a checkpoint every N episodes and
    hands it to ``on_checkpoint`` — or, when ``checkpoint_dir`` is
    given instead of a callable, to the spool callback built by
    :func:`_spool_checkpoint_callback` (the pool-worker path).
    ``resume_text`` is an encoded checkpoint to continue from; the
    resumed run finishes bitwise-identical to an uninterrupted one.

    ``warm_text`` is an encoded Q-prior spec
    (:func:`repro.core.priors.encode_prior_spec`) for jobs with
    ``warm_start != "off"`` — the transport-level form a submitter or
    service resolved from its result corpus.  A warm job with no spec
    (the corpus had nothing to offer) runs cold, by design: warm
    starts accelerate, they never gate.
    """
    from repro.analysis.compare import compare_methods
    from repro.analysis.speedup import auto_episodes, table2_row_from_lut
    from repro.baselines.cem import cross_entropy_method
    from repro.baselines.genetic import genetic_search
    from repro.core.config import SearchConfig
    from repro.core.multi_seed import MultiSeedSearch, seed_range
    from repro.core.search import QSDNNSearch
    from repro.runtime.metrics import DEFAULT_REGISTRY

    DEFAULT_REGISTRY.counter(
        "repro_campaign_jobs_total",
        "Jobs executed in this process, by kind.",
    ).inc(kind=job.kind)
    anytime: dict = {}
    if job.kind in ("search", "multi-seed") and (
        checkpoint_every or resume_text is not None or on_checkpoint is not None
    ):
        from repro.core.checkpoint import decode_checkpoint
        from repro.runtime.store import job_key

        callback = on_checkpoint
        if callback is None and checkpoint_dir is not None and checkpoint_every:
            callback = _spool_checkpoint_callback(checkpoint_dir, job_key(job))
        anytime = {
            "checkpoint_every": checkpoint_every,
            "on_checkpoint": callback,
            "resume": (
                decode_checkpoint(resume_text)
                if resume_text is not None
                else None
            ),
        }
    prior = None
    if job.warm_start != "off" and warm_text is not None:
        from repro.core.priors import decode_prior_spec

        prior = decode_prior_spec(warm_text)
        DEFAULT_REGISTRY.counter(
            "repro_warm_starts_total",
            "Warm-started search jobs executed, by prior kind.",
        ).inc(kind=prior.kind)
    started = time.perf_counter()
    lut, from_cache = load_or_profile_lut(job, cache_dir, cache_remote)
    if shared_tables is not None:
        _attach_shared_tables(lut, shared_tables)
    if job.kind == "table2":
        payload = table2_row_from_lut(
            lut, episodes=job.episodes, seed=job.seed, kernel=job.kernel
        )
    else:
        episodes = (
            auto_episodes(len(lut.layers))
            if job.episodes is None
            else job.episodes
        )
        if job.kind == "compare":
            payload = compare_methods(
                lut, episodes=episodes, seed=job.seed, kernel=job.kernel
            )
        elif job.kind == "cem":
            payload = cross_entropy_method(lut, episodes=episodes, seed=job.seed)
        elif job.kind == "ga":
            payload = genetic_search(lut, episodes=episodes, seed=job.seed)
        elif job.kind == "linear-q":
            from repro.ext.linear_q import LinearQConfig, LinearQSearch

            payload = LinearQSearch(
                lut, LinearQConfig(episodes=episodes, seed=job.seed)
            ).run()
        elif job.kind == "mlp-q":
            from repro.ext.mlp_q import MLPQConfig, MLPQSearch

            payload = MLPQSearch(
                lut, MLPQConfig(episodes=episodes, seed=job.seed)
            ).run()
        elif job.kind == "search":
            # Deliberately identical to `repro search` over this LUT:
            # same config defaults, same auto budget -> bitwise-equal
            # best_ms (the service's e2e acceptance check).
            payload = QSDNNSearch(
                lut,
                SearchConfig(
                    episodes=episodes,
                    seed=job.seed,
                    kernel=job.kernel,
                    warm_start=job.warm_start,
                ),
                prior=prior,
            ).run(**anytime)
        else:  # "multi-seed" — validated at construction
            payload = MultiSeedSearch(
                lut,
                SearchConfig(
                    episodes=episodes,
                    seed=job.seed,
                    kernel=job.kernel,
                    warm_start=job.warm_start,
                ),
                seeds=seed_range(job.seed, job.seeds),
                prior=prior,
            ).run(**anytime)
    return CampaignResult(
        job=job,
        payload=payload,
        wall_clock_s=time.perf_counter() - started,
        lut_from_cache=from_cache,
    )


class Campaign:
    """A batch of search jobs sharded across worker processes.

    Parameters
    ----------
    jobs:
        The scenarios to run.  Duplicate jobs are allowed (they run
        again — use distinct seeds for robustness sweeps).
    workers:
        Process count.  ``1`` (default) runs inline in this process;
        ``N > 1`` shards over a :class:`ProcessPoolExecutor`.
    cache_dir:
        Directory for the local LUT cache tier; ``None`` disables the
        local tier.
    cache_remote:
        URL (or list of URLs) of remote shard servers (a ``repro
        serve`` instance with a ``--cache-dir``) chained behind the
        local tier; see :mod:`repro.runtime.lutcache`.
    warm_store:
        Path of a :class:`~repro.runtime.store.ResultStore` database
        to resolve warm-start Q-priors from (jobs with
        ``warm_start != "off"``).  None runs warm jobs cold.
    """

    def __init__(
        self,
        jobs: list[CampaignJob],
        workers: int = 1,
        cache_dir: str | Path | None = None,
        cache_remote: str | list[str] | None = None,
        warm_store: str | Path | None = None,
    ) -> None:
        if not jobs:
            raise ConfigError("a campaign needs at least one job")
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.jobs = list(jobs)
        self.workers = workers
        self.cache_dir = cache_dir
        self.cache_remote = cache_remote
        self.warm_store = warm_store

    def run(self) -> list[CampaignResult]:
        """Execute every job; results come back in job order.

        With ``workers > 1`` the parent first exports each
        cache-resolvable job LUT's dense pricing tensors into one
        shared-memory segment per unique LUT key
        (:meth:`export_shared_tables`), hands workers the segment
        names, and unlinks every segment when the pool drains — even
        when a worker crashes mid-job (``finally``), so a killed
        worker never leaks ``/dev/shm`` space.
        """
        warm_texts = self._warm_texts()
        if self.workers == 1:
            return [
                execute_job(
                    job,
                    self.cache_dir,
                    self.cache_remote,
                    warm_text=warm_texts[i],
                )
                for i, job in enumerate(self.jobs)
            ]
        max_workers = min(self.workers, len(self.jobs))
        exported = self.export_shared_tables()
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        execute_job,
                        job,
                        self.cache_dir,
                        self.cache_remote,
                        self._segment_name(exported, job),
                        warm_text=warm_texts[i],
                    )
                    for i, job in enumerate(self.jobs)
                ]
                return [f.result() for f in futures]
        finally:
            release_shared_tables(exported)

    def _warm_texts(self) -> list[str | None]:
        """Per-job warm prior specs, resolved once per scenario.

        The campaign parent is the only place with store access (pool
        workers receive the portable spec, exactly like fleet workers
        receive it in a lease grant).  No store, or nothing usable in
        it, runs the job cold.
        """
        texts: list[str | None] = [None] * len(self.jobs)
        if self.warm_store is None or all(
            job.warm_start == "off" for job in self.jobs
        ):
            return texts
        from repro.core.priors import resolve_prior_spec
        from repro.runtime.store import ResultStore

        cache = open_cache(self.cache_dir, self.cache_remote)
        resolver = cache.peek if cache is not None else None
        memo: dict[tuple, str | None] = {}
        with ResultStore(self.warm_store) as store:
            for i, job in enumerate(self.jobs):
                if job.warm_start == "off":
                    continue
                key = (job.warm_start, job.network, job.platform, job.mode)
                if key not in memo:
                    memo[key] = resolve_prior_spec(
                        job.warm_start,
                        job.network,
                        job.platform,
                        job.mode,
                        store,
                        resolver,
                    )
                texts[i] = memo[key]
        return texts

    def export_shared_tables(self) -> dict[LutKey, SharedCostTables]:
        """Export one shared segment per unique cache-resolvable LUT key.

        Only keys the cache can already answer are exported — a peek
        miss means a worker is about to profile that LUT anyway (and
        write it through the cache for the next campaign), so the
        parent never profiles.  The caller owns the returned segments
        and must :func:`release_shared_tables` them.
        """
        exported: dict[LutKey, SharedCostTables] = {}
        cache = open_cache(self.cache_dir, self.cache_remote)
        if cache is None:
            return exported
        for job in self.jobs:
            key = LutKey.from_job(job)
            if key in exported:
                continue
            lut = cache.peek(job)
            if lut is None:
                continue
            exported[key] = SharedCostTables.create(lut.engine())
        if exported:
            _OWNED_TABLES.append(list(exported.values()))
        return exported

    @staticmethod
    def _segment_name(
        exported: dict[LutKey, SharedCostTables], job: CampaignJob
    ) -> str | None:
        shared = exported.get(LutKey.from_job(job))
        return shared.name if shared is not None else None


def grid(
    networks: list[str],
    platforms: list[str] | None = None,
    modes: list[str] | None = None,
    seeds: list[int] | None = None,
    episodes: int | None = None,
    kind: str = "table2",
    seeds_per_job: int = 8,
    kernel: str = "auto",
    warm_start: str = "off",
) -> list[CampaignJob]:
    """The full (network x platform x mode x seed) job cross-product.

    ``seeds_per_job`` is the K of ``kind="multi-seed"`` jobs (each grid
    seed starts an independent K-seed lockstep sweep); ``kernel``
    selects the episode-kernel backend of every job's searches;
    ``warm_start`` requests Q-prior seeding for warmable kinds.
    """
    jobs = [
        CampaignJob(
            network=network,
            platform=platform,
            mode=mode,
            seed=seed,
            episodes=episodes,
            kind=kind,
            seeds=seeds_per_job,
            kernel=kernel,
            warm_start=warm_start,
        )
        for platform in (platforms or ["jetson_tx2"])
        for mode in (modes or ["cpu"])
        for seed in (seeds or [0])
        for network in networks
    ]
    return jobs
