"""Tiered, sharded LUT cache: pay profiling cost once per *fleet*.

The inference phase is the expensive half of the paper's pipeline —
every (network, platform, mode) cell costs a full on-board profiling
pass — and before this module the on-disk cache was flat files on one
machine.  This subsystem makes the cache a chain of **tiers** resolved
in order:

1. **Local shard tier** — a directory sharded ``platform/network/``
   with one JSON entry per (mode, seed, repeats, version) key and a
   per-shard ``index.json``.  The index is advisory (stats, serving,
   prefetch listings); the entry files themselves are authoritative,
   so a lost index is rebuilt by scanning, never trusted over disk.
2. **Remote shard tiers** — other machines' caches served by their
   ``repro serve`` instance over plain ``http.client``
   (``GET/PUT /luts/{platform}/{network}``).  A remote hit is
   published atomically into the local tier, so each entry crosses the
   network once per machine.
3. **Profile on miss** — the classic fallback, with the fresh LUT
   written through to every writable tier so the rest of the fleet
   never profiles this key again.

Exactness contract: a LUT resolved from *any* tier prices
bitwise-identically to a fresh profile.  Entries travel as the JSON
text :meth:`~repro.engine.lut.LatencyTable.to_json` produced —
format-2 payloads whose floats round-trip exactly — and every fetched
entry is validated against its key (network/platform/mode) before it
is served or republished, so a mislabeled entry fails loudly
(:class:`~repro.errors.LutCacheError`) instead of pricing the wrong
scenario.

Remote tiers are *soft*: an unreachable or corrupt remote is recorded
on the resolution and the chain falls through (ultimately to
profiling) — a fleet cache being down must slow jobs, not fail them.
The local tier is *strict*: local disk corruption raises.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.engine.lut import LatencyTable
from repro.errors import LutCacheError, ServiceError
from repro.utils.fsio import atomic_write_text

#: Path segments a shard may use (platform/network names — letters,
#: digits, dot, underscore, dash; no separators, no traversal).
SEGMENT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Per-shard index file name (never a valid entry name: no ``__``).
INDEX_NAME = "index.json"


def _check_segment(name: str, what: str) -> str:
    if not SEGMENT_RE.match(name) or ".." in name:
        raise LutCacheError(f"invalid {what} segment {name!r}")
    return name


@dataclass(frozen=True)
class LutKey:
    """Identity of one cached LUT: the same fields the old flat
    filename carried, split into a shard (platform/network directory)
    and an entry name (mode/seed/repeats/version).

    The package version is part of the key so a cache shared across
    repo revisions never silently serves LUTs profiled under an older
    cost model.
    """

    platform: str
    network: str
    mode: str
    seed: int
    repeats: int
    version: str

    def __post_init__(self) -> None:
        # Every name-forming field is checked — keys can be built from
        # untrusted HTTP parameters (the service's /luts endpoints),
        # and any of them reaching a filesystem path unvalidated would
        # allow traversal out of the cache root.
        _check_segment(self.platform, "platform")
        _check_segment(self.network, "network")
        _check_segment(self.mode, "mode")
        _check_segment(self.version, "version")

    @classmethod
    def from_job(cls, job, version: str | None = None) -> "LutKey":
        """The cache key of a campaign job's LUT."""
        if version is None:
            from repro import __version__ as version
        return cls(
            platform=job.platform,
            network=job.network,
            mode=str(job.mode),
            seed=job.seed,
            repeats=job.repeats,
            version=version,
        )

    @property
    def shard(self) -> str:
        """Relative shard directory, ``platform/network``."""
        return f"{self.platform}/{self.network}"

    @property
    def filename(self) -> str:
        """Entry file name inside the shard directory."""
        return f"{self.mode}__seed{self.seed}__r{self.repeats}__v{self.version}.json"

    @property
    def legacy_filename(self) -> str:
        """The pre-sharding flat file name (read-compatibility)."""
        return (
            f"{self.platform}__{self.network}__{self.mode}"
            f"__seed{self.seed}__r{self.repeats}__v{self.version}.json"
        )

    def query(self) -> dict[str, str]:
        """The HTTP query parameters addressing this key's entry."""
        return {
            "mode": self.mode,
            "seed": str(self.seed),
            "repeats": str(self.repeats),
            "version": self.version,
        }

    def to_dict(self) -> dict:
        """JSON-ready view (the ``GET /luts`` listing row)."""
        return {
            "platform": self.platform,
            "network": self.network,
            "mode": self.mode,
            "seed": self.seed,
            "repeats": self.repeats,
            "version": self.version,
        }

    @classmethod
    def from_entry_name(cls, platform: str, network: str, name: str) -> "LutKey | None":
        """Parse an entry file name back into a key (None: not an entry)."""
        if not name.endswith(".json") or name == INDEX_NAME:
            return None
        parts = name[: -len(".json")].split("__")
        if len(parts) != 4:
            return None
        mode, seed_part, repeats_part, version_part = parts
        if (
            not seed_part.startswith("seed")
            or not repeats_part.startswith("r")
            or not version_part.startswith("v")
        ):
            return None
        try:
            return cls(
                platform=platform,
                network=network,
                mode=mode,
                seed=int(seed_part[len("seed"):]),
                repeats=int(repeats_part[len("r"):]),
                version=version_part[len("v"):],
            )
        except (ValueError, LutCacheError):
            return None


def validate_entry(text: str, key: LutKey) -> LatencyTable:
    """Parse a cache entry and check it matches its key.

    Any tier may hand back bytes (disk, network); before those bytes
    are priced or republished they must parse as a LUT whose identity
    fields agree with the key they were resolved under.
    """
    try:
        lut = LatencyTable.from_json(text)
    except Exception as error:
        raise LutCacheError(
            f"cache entry for {key.shard}/{key.filename} is not a valid "
            f"LUT: {type(error).__name__}: {error}"
        ) from error
    mismatches = [
        f"{field_name}={actual!r} (key says {expected!r})"
        for field_name, actual, expected in (
            ("network", lut.graph_name, key.network),
            ("platform", lut.platform_name, key.platform),
            ("mode", str(lut.mode), key.mode),
        )
        if actual != expected
    ]
    if mismatches:
        raise LutCacheError(
            f"cache entry for {key.shard}/{key.filename} mismatches its "
            f"key: {', '.join(mismatches)}"
        )
    return lut


@dataclass
class ShardStats:
    """Aggregate accounting of one ``platform/network`` shard."""

    shard: str
    entries: int = 0
    bytes: int = 0
    versions: set = field(default_factory=set)


class LocalTier:
    """The on-disk shard tree: ``root/platform/network/entry.json``.

    Also reads (and migrates) entries written by the old flat layout
    (``root/platform__network__mode__....json``), so a pre-sharding
    cache directory keeps its hits.
    """

    #: Failures of this tier abort resolution (local disk problems are
    #: actionable); remote tiers instead fall through the chain.
    soft = False
    writable = True

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.name = f"local:{self.root}"

    def path_for(self, key: LutKey) -> Path:
        """Where a key's entry lives in the shard tree."""
        return self.root / key.platform / key.network / key.filename

    def get(self, key: LutKey) -> str | None:
        """The entry's JSON text, or None on a miss."""
        path = self.path_for(key)
        if path.exists():
            return path.read_text()
        legacy = self.root / key.legacy_filename
        if legacy.exists():
            # Migrate a flat-layout entry into its shard so subsequent
            # reads (and the index, and remote serving) see it.
            text = legacy.read_text()
            self.put(key, text)
            return text
        return None

    def put(self, key: LutKey, text: str) -> Path:
        """Atomically publish an entry and refresh the shard index."""
        path = atomic_write_text(self.path_for(key), text)
        self._write_index(key.platform, key.network)
        return path

    # -- shard index ---------------------------------------------------------

    def _write_index(self, platform: str, network: str) -> None:
        """Rebuild one shard's ``index.json`` from the files on disk.

        A full-scan rewrite (not read-modify-write): concurrent
        writers each publish a complete, consistent snapshot, and the
        entry files stay the source of truth.
        """
        shard_dir = self.root / platform / network
        entries = {}
        for path in sorted(shard_dir.glob("*.json")):
            key = LutKey.from_entry_name(platform, network, path.name)
            if key is None:
                continue
            entries[path.name] = {
                **key.to_dict(),
                "bytes": path.stat().st_size,
            }
        atomic_write_text(
            shard_dir / INDEX_NAME,
            json.dumps(
                {"shard": f"{platform}/{network}", "entries": entries},
                indent=2,
            ),
        )

    def shard_index(self, platform: str, network: str) -> dict:
        """One shard's index payload (rebuilt on demand if absent)."""
        path = self.root / platform / network / INDEX_NAME
        if not path.exists():
            self._write_index(platform, network)
        if not path.exists():  # shard directory itself absent
            return {"shard": f"{platform}/{network}", "entries": {}}
        return json.loads(path.read_text())

    # -- maintenance ---------------------------------------------------------

    def keys(self) -> list[LutKey]:
        """Every entry key in the tree (sharded and legacy-flat)."""
        found = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.glob("*/*/*.json")):
            platform, network = path.parent.parent.name, path.parent.name
            key = LutKey.from_entry_name(platform, network, path.name)
            if key is not None:
                found.append(key)
        for path in sorted(self.root.glob("*.json")):
            parts = path.name[: -len(".json")].split("__", 2)
            if len(parts) == 3:
                key = LutKey.from_entry_name(parts[0], parts[1], parts[2] + ".json")
                if key is not None and key not in found:
                    found.append(key)
        return found

    def stats(self) -> list[ShardStats]:
        """Per-shard entry counts / byte totals / versions present."""
        per_shard: dict[str, ShardStats] = {}
        for key in self.keys():
            stat = per_shard.setdefault(key.shard, ShardStats(shard=key.shard))
            stat.entries += 1
            path = self.path_for(key)
            if not path.exists():  # legacy-flat only
                path = self.root / key.legacy_filename
            stat.bytes += path.stat().st_size
            stat.versions.add(key.version)
        return [per_shard[shard] for shard in sorted(per_shard)]

    def gc(self, keep_version: str) -> tuple[int, int]:
        """Drop entries of other versions and orphaned temp files.

        Returns ``(files_removed, bytes_reclaimed)``.  Entries profiled
        under another package version can never be served (the version
        is part of every key), so they are pure dead weight; ``*.tmp``
        leftovers are from writers that died mid-publish.
        """
        removed = reclaimed = 0
        touched: set[tuple[str, str]] = set()
        for key in self.keys():
            if key.version == keep_version:
                continue
            for path in (self.path_for(key), self.root / key.legacy_filename):
                if path.exists():
                    reclaimed += path.stat().st_size
                    path.unlink()
                    removed += 1
            touched.add((key.platform, key.network))
        for tmp in self.root.glob("**/*.tmp"):
            reclaimed += tmp.stat().st_size
            tmp.unlink()
            removed += 1
        for platform, network in touched:
            self._write_index(platform, network)
        return removed, reclaimed


class RemoteTier:
    """A remote shard server: another machine's ``repro serve``.

    Speaks the service's ``GET/PUT /luts/...`` endpoints through the
    stdlib :class:`~repro.runtime.client.ServiceClient` LUT methods
    (one wire-protocol implementation, not two).  Soft by design —
    *any* remote failure (unreachable host, malformed response, error
    status) is wrapped in :class:`LutCacheError`, surfaces on the
    resolution's ``errors`` list, and the chain falls through.
    """

    soft = True
    writable = True

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        from repro.runtime.client import ServiceClient

        self.url = url
        self.client = ServiceClient(url, timeout=timeout)
        self.name = f"remote:{url}"

    def _call(self, what: str, call):
        """Run one client call, wrapping every remote failure.

        The soft-tier contract says a broken remote must never abort
        resolution, so the net must be wide: connection errors, socket
        timeouts, half-closed responses (``http.client.HTTPException``)
        and non-JSON bodies from intermediaries (``ValueError`` via
        ``json.loads``) all become :class:`LutCacheError`.
        """
        import http.client

        try:
            return call()
        except ServiceError as error:
            raise LutCacheError(
                f"remote tier {self.url} {what} failed: {error}"
            ) from error
        except (OSError, ValueError, http.client.HTTPException) as error:
            raise LutCacheError(
                f"remote tier {self.url} unreachable: {error}"
            ) from error

    def get(self, key: LutKey) -> str | None:
        """Fetch one entry; None on a 404 miss."""
        payload = self._call(
            "GET",
            lambda: self.client.get_lut(key.platform, key.network, **key.query()),
        )
        if payload is None:
            return None
        # The wire re-parse is float-exact: JSON doubles survive a
        # loads/dumps cycle bitwise (shortest-repr round-trip).
        return json.dumps(payload)

    def put(self, key: LutKey, text: str) -> None:
        """Publish one entry to the remote tier (write-through)."""
        self._call(
            "PUT",
            lambda: self.client.put_lut(
                key.platform, key.network, json.loads(text), **key.query()
            ),
        )

    def keys(self) -> list[LutKey]:
        """Every key the remote advertises (``GET /luts``)."""
        rows = self._call("GET /luts", self.client.lut_index)
        return [LutKey(**row) for row in rows]


@dataclass
class LutResolution:
    """Outcome of one tiered lookup."""

    lut: LatencyTable
    #: Name of the tier that answered, or ``"profiled"`` on a miss.
    source: str
    #: True when any cache tier answered (the campaign's accounting bit).
    from_cache: bool
    #: Soft-tier failures encountered along the way (unreachable or
    #: corrupt remotes) — resolution succeeded regardless.
    errors: list[str] = field(default_factory=list)


class TieredLutCache:
    """A resolution chain over cache tiers, profiling as the last rung.

    Tiers are consulted in order; the first hit wins and is
    **filled forward** into every earlier writable tier (a remote hit
    lands in the local tier so the next lookup is local).  On a full
    miss the caller-supplied profiler runs and the result is
    **written through** to every writable tier.
    """

    def __init__(self, tiers: list, registry=None) -> None:
        from repro.runtime.metrics import DEFAULT_REGISTRY

        self.tiers = list(tiers)
        registry = registry if registry is not None else DEFAULT_REGISTRY
        self._hits = registry.counter(
            "repro_lut_cache_hits_total",
            "LUT resolutions answered by a cache tier, by tier kind.",
        )
        self._misses = registry.counter(
            "repro_lut_cache_misses_total",
            "LUT resolutions that fell through to profiling.",
        )

    def resolve(self, job, profile: Callable[[], LatencyTable]) -> LutResolution:
        """Resolve one job's LUT through the chain.

        ``profile`` runs only when every tier misses.  Exactness holds
        tier-independently: entries travel as the exact ``to_json``
        text, validation re-parses them, and JSON round-trips preserve
        every float bitwise.
        """
        key = LutKey.from_job(job)
        errors: list[str] = []
        for i, tier in enumerate(self.tiers):
            try:
                text = tier.get(key)
                if text is None:
                    continue
                lut = validate_entry(text, key)
            except (LutCacheError, ServiceError) as error:
                if not tier.soft:
                    raise
                errors.append(f"{tier.name}: {error}")
                continue
            self._fill(self.tiers[:i], key, text, errors)
            self._hits.inc(tier="remote" if tier.soft else "local")
            return LutResolution(
                lut=lut, source=tier.name, from_cache=True, errors=errors
            )
        lut = profile()
        self._fill(self.tiers, key, lut.to_json(), errors)
        self._misses.inc()
        return LutResolution(
            lut=lut, source="profiled", from_cache=False, errors=errors
        )

    def peek(self, job) -> LatencyTable | None:
        """Cached-only lookup: the job's LUT if any tier already holds
        it, else None — never profiles, never fills forward.

        The campaign parent uses this to export shared pricing tables
        *before* dispatching workers: only keys the cache can already
        answer are worth exporting (a miss means a worker is about to
        profile anyway, and the fresh entry lands in the cache for the
        next campaign).  Soft-tier failures are swallowed — a peek must
        never be louder than the resolution that follows it.
        """
        key = LutKey.from_job(job)
        for tier in self.tiers:
            try:
                text = tier.get(key)
                if text is None:
                    continue
                return validate_entry(text, key)
            except (LutCacheError, ServiceError):
                if not tier.soft:
                    raise
                continue
        return None

    def _fill(self, tiers, key: LutKey, text: str, errors: list[str]) -> None:
        for tier in tiers:
            if not tier.writable:
                continue
            try:
                tier.put(key, text)
            except (LutCacheError, ServiceError) as error:
                if not tier.soft:
                    raise
                errors.append(f"{tier.name}: {error}")


def open_cache(
    cache_dir: str | Path | None = None,
    cache_remote: str | list[str] | None = None,
) -> TieredLutCache | None:
    """Build the tier chain from the two CLI spellings.

    ``--cache-dir`` alone is the classic single-tier cache;
    ``--cache-remote`` chains one or more shard servers behind it.
    ``None``/``None`` disables caching entirely (returns None).
    """
    tiers: list = []
    if cache_dir is not None:
        tiers.append(LocalTier(cache_dir))
    if cache_remote:
        remotes = (
            [cache_remote] if isinstance(cache_remote, str) else list(cache_remote)
        )
        tiers.extend(RemoteTier(url) for url in remotes)
    return TieredLutCache(tiers) if tiers else None
