"""Scale-out runtime: batched campaigns over many search scenarios.

The search phase runs on a workstation CPU (paper §VI-A), so serving
many (network, platform, mode, seed) scenarios is an embarrassingly
parallel batch problem.  This package owns that layer — job
descriptions, process-pool sharding, and the on-disk LUT cache.
"""

from repro.runtime.campaign import (
    Campaign,
    CampaignJob,
    CampaignResult,
    PLATFORM_FACTORIES,
    execute_job,
    grid,
    load_or_profile_lut,
    lut_cache_path,
    require_canonical_platform,
)

__all__ = [
    "Campaign",
    "CampaignJob",
    "CampaignResult",
    "PLATFORM_FACTORIES",
    "execute_job",
    "grid",
    "load_or_profile_lut",
    "lut_cache_path",
    "require_canonical_platform",
]
