"""Scale-out runtime: campaigns, the async service, and the result store.

The search phase runs on a workstation CPU (paper §VI-A), so serving
many (network, platform, mode, seed) scenarios is an embarrassingly
parallel batch problem.  This package owns that layer:

* :mod:`repro.runtime.campaign` — job descriptions, process-pool
  sharding, and LUT resolution through the tiered cache (one-shot
  batch runs).
* :mod:`repro.runtime.lutcache` — the tiered, sharded LUT cache:
  local ``platform/network`` shard directories chained with remote
  shard servers, so profiling cost is paid once per fleet.
* :mod:`repro.runtime.service` — the long-running asyncio service:
  priority job queue, bounded workers, HTTP API with SSE progress
  streams (``repro serve``).
* :mod:`repro.runtime.store` — the persistent sqlite result store
  keyed by full job identity (repeat submissions become cache hits).
* :mod:`repro.runtime.client` — the stdlib HTTP client behind
  ``repro submit``.
"""

from repro.runtime.campaign import (
    Campaign,
    CampaignJob,
    CampaignResult,
    PLATFORM_FACTORIES,
    execute_job,
    grid,
    load_or_profile_lut,
    lut_cache_path,
    require_canonical_platform,
)
from repro.runtime.client import ServiceClient
from repro.runtime.lutcache import (
    LocalTier,
    LutKey,
    LutResolution,
    RemoteTier,
    TieredLutCache,
    open_cache,
)
from repro.runtime.service import CampaignService, JobRecord, checkpoints_of
from repro.runtime.store import ResultStore, StoredResult, job_key

__all__ = [
    "Campaign",
    "CampaignJob",
    "CampaignResult",
    "CampaignService",
    "JobRecord",
    "LocalTier",
    "LutKey",
    "LutResolution",
    "PLATFORM_FACTORIES",
    "RemoteTier",
    "ResultStore",
    "ServiceClient",
    "StoredResult",
    "TieredLutCache",
    "checkpoints_of",
    "execute_job",
    "grid",
    "job_key",
    "load_or_profile_lut",
    "lut_cache_path",
    "open_cache",
    "require_canonical_platform",
]
