"""Fleet worker: pull jobs from a campaign service over HTTP.

``repro work --server URL`` turns any host that can import this repo
into fleet capacity.  The protocol is deliberately worker-*pull* (the
service never dials out, so workers behind NAT just work):

1. **Register** — ``POST /workers`` once at startup; the grant carries
   this worker's id, the lease TTL and the suggested heartbeat
   interval.
2. **Lease** — ``POST /leases`` claims the highest-priority queued
   job; 204 means "nothing to do, poll again" (idle polls back off
   exponentially with jitter, capped at the configured interval, so a
   drained fleet does not hammer the service).  ``--lease-batch N``
   claims up to N jobs under ONE lease/heartbeat and delivers every
   result in one ``POST /leases/{id}/results`` — amortising the
   per-job round-trips that dominate small jobs.
3. **Heartbeat** — while the job executes (in this process, via
   :func:`~repro.runtime.campaign.execute_job` — the exact function
   the service's local pool runs), a daemon thread beats
   ``POST /leases/{id}/heartbeat`` every TTL/3 seconds.  A 409 tells
   the worker it lost the lease (the service requeued the job) and
   the result must be discarded.
4. **Result** — ``POST /leases/{id}/result`` delivers the encoded
   payload.  Encoding goes through
   :func:`~repro.runtime.store.encode_payload` — the same JSON the
   result store writes — so a remotely computed result lands in the
   store bitwise-identical to local execution (shortest-repr floats
   round-trip exactly).

Worker-side job failures are *reported*, not retried: the job raised,
so it would raise anywhere (searches are deterministic).  Crashes and
network partitions are what the lease machinery handles — the service
requeues after a missed heartbeat, bounded by ``max_lease_retries``.

The worker exits cleanly when the service becomes unreachable or
starts draining (both look like lease/registration failures after
retries) — a fleet host is cattle, not a pet.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    ConfigError,
    LeaseExpiredError,
    PreemptedError,
    ServiceError,
)
from repro.runtime.campaign import CampaignJob, execute_job
from repro.runtime.client import ServiceClient
from repro.runtime.store import encode_payload

#: Consecutive failed service round-trips before the worker gives up
#: (covers restarts and brief partitions without spinning forever).
MAX_CONSECUTIVE_ERRORS = 5


@dataclass
class WorkerConfig:
    """Configuration of one ``repro work`` process."""

    #: Campaign-service base URL (``http://host:port``).
    server: str
    #: Human-readable worker name (shows up in ``GET /workers``,
    #: lease ownership and per-worker metrics).
    name: str | None = None
    #: Local LUT cache tier for executed jobs (same flag as serve).
    cache_dir: str | None = None
    #: Remote LUT shard server(s) chained behind the local tier.
    cache_remote: str | None = None
    #: Maximum seconds between lease polls while the queue is empty
    #: (idle polls back off exponentially with jitter up to this cap).
    poll_s: float = 0.5
    #: Stop after this many executed jobs (0 = run until the service
    #: goes away).
    max_jobs: int = 0
    #: Jobs to claim per lease (1 = the classic one-job-per-round-trip
    #: protocol; the service clamps to its ``lease_batch_limit``).
    lease_batch: int = 1

    def __post_init__(self) -> None:
        if not self.server:
            raise ConfigError("worker needs a --server URL")
        if self.poll_s <= 0:
            raise ConfigError(f"poll_s must be > 0, got {self.poll_s}")
        if self.max_jobs < 0:
            raise ConfigError(f"max_jobs must be >= 0, got {self.max_jobs}")
        if self.lease_batch < 1:
            raise ConfigError(f"lease_batch must be >= 1, got {self.lease_batch}")


@dataclass
class WorkerStats:
    """What one worker run did (the ``repro work`` exit summary)."""

    completed: int = 0
    failed: int = 0
    lost_leases: int = 0
    polls: int = 0
    started_s: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "lost_leases": self.lost_leases,
            "polls": self.polls,
            "uptime_s": time.time() - self.started_s,
        }


class _Heartbeat(threading.Thread):
    """Daemon thread beating one lease until stopped or lost.

    Transient transport errors are tolerated (the TTL absorbs a few
    missed beats); a 409 sets :attr:`lost` and ends the thread — the
    service has already requeued the job (or revoked the lease to
    preempt it).

    Beats double as the fleet's checkpoint carrier: the executing
    thread :meth:`offer`\\ s each job's latest encoded checkpoint and
    the next beat ships every fresh one in the heartbeat body, where
    the service persists them.  Only the newest snapshot per job is
    kept (an older one is strictly worse), and snapshots that miss a
    beat to a transport error are re-queued for the next one unless a
    newer offer superseded them.
    """

    def __init__(self, client: ServiceClient, lease_id: str, interval_s: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{lease_id}")
        self.client = client
        self.lease_id = lease_id
        self.interval_s = interval_s
        self.lost = threading.Event()
        # Not `_stop`: threading.Thread claims that name internally.
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._checkpoints: dict[str, str] = {}

    def offer(self, job_id: str, text: str) -> None:
        """Stage a job's latest encoded checkpoint for the next beat."""
        with self._lock:
            self._checkpoints[job_id] = text

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            with self._lock:
                fresh, self._checkpoints = self._checkpoints, {}
            try:
                self.client.heartbeat(self.lease_id, checkpoints=fresh or None)
            except LeaseExpiredError:
                self.lost.set()
                return
            except (ServiceError, OSError):
                with self._lock:
                    for job_id, text in fresh.items():
                        self._checkpoints.setdefault(job_id, text)
                continue

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self.interval_s + 5.0)


def idle_backoff(
    poll_s: float, consecutive_empty: int, rng: random.Random | None = None
) -> float:
    """Sleep before the next lease poll after N consecutive empty ones.

    Jittered exponential backoff: starts at an eighth of the
    configured poll interval, doubles per empty poll, and caps at the
    interval itself — a worker re-engages a refilling queue quickly
    but a drained fleet converges to one poll per ``poll_s`` per
    worker.  The 0.5–1.0x jitter desynchronises workers that went
    idle together, so their polls don't arrive as a thundering herd.
    """
    if consecutive_empty <= 0:
        return 0.0
    if consecutive_empty >= 4:
        # The doubling reaches poll_s on the fourth empty poll; clamp
        # the exponent rather than computing it — 2**(n-1) overflows a
        # float once a long-idle worker's counter passes ~1024.
        base = poll_s
    else:
        base = (poll_s / 8.0) * (2.0 ** (consecutive_empty - 1))
    uniform = rng.uniform if rng is not None else random.uniform
    return base * uniform(0.5, 1.0)


def encode_outcome(result) -> dict:
    """A :class:`CampaignResult` as the result-submission wire body.

    ``encode_payload`` produces the store's canonical JSON text; the
    parse/serialize hop through the HTTP body preserves every float
    bitwise (Python's shortest-repr round-trip guarantee), which is
    what keeps remote execution indistinguishable from local.
    """
    kind, text = encode_payload(result.payload)
    return {
        "payload_kind": kind,
        "payload": json.loads(text),
        "wall_clock_s": result.wall_clock_s,
        "lut_from_cache": result.lut_from_cache,
    }


class FleetWorker:
    """One worker process: register, then lease/execute/report forever."""

    def __init__(
        self, config: WorkerConfig, client: ServiceClient | None = None
    ) -> None:
        self.config = config
        self.client = client or ServiceClient(config.server)
        self.stats = WorkerStats()
        self.worker_id: str | None = None
        self.heartbeat_s: float = 10.0

    def register(self) -> dict:
        """Announce this worker; remembers the id and heartbeat hint."""
        grant = self.client.register_worker(self.config.name)
        self.worker_id = grant["worker"]["id"]
        self.heartbeat_s = float(
            grant.get("heartbeat_s", grant.get("lease_ttl_s", 30.0) / 3.0)
        )
        return grant

    def _batch_size(self) -> int:
        """Jobs to request on the next lease (respects ``max_jobs``)."""
        size = self.config.lease_batch
        if self.config.max_jobs:
            done = self.stats.completed + self.stats.failed
            size = min(size, max(1, self.config.max_jobs - done))
        return size

    def run_one(self) -> bool:
        """Lease and fully process one job batch; False when the queue
        was empty."""
        assert self.worker_id is not None, "register() first"
        grant = self.client.lease(self.worker_id, max_jobs=self._batch_size())
        self.stats.polls += 1
        if grant is None:
            return False
        self._process(grant)
        return True

    @staticmethod
    def _make_on_checkpoint(beat: _Heartbeat, job_id: str):
        """Per-job anytime callback: stage the snapshot for the next
        heartbeat, and stop the search the moment the lease is lost —
        the service revoked it (preemption) or expired it, so further
        episodes are wasted work."""
        from repro.core.checkpoint import encode_checkpoint

        def on_checkpoint(ckpt: dict):
            beat.offer(job_id, encode_checkpoint(ckpt))
            return not beat.lost.is_set()

        return on_checkpoint

    def _process(self, grant: dict) -> None:
        lease_id = grant["lease"]["lease_id"]
        entries = grant.get("jobs") or [grant["job"]]
        checkpoint_every = int(grant.get("checkpoint_every") or 0) or None
        resume_map = grant.get("resume") or {}
        warm_map = grant.get("warm") or {}
        beat = _Heartbeat(self.client, lease_id, self.heartbeat_s)
        beat.start()
        outcomes: list[dict] = []
        try:
            for entry in entries:
                if beat.lost.is_set():
                    # The lease (and with it every job of the batch)
                    # is gone — executing the rest is wasted work.
                    break
                job = CampaignJob(**entry["job"])
                try:
                    result = execute_job(
                        job,
                        self.config.cache_dir,
                        self.config.cache_remote,
                        checkpoint_every=checkpoint_every,
                        resume_text=resume_map.get(entry["id"]),
                        warm_text=warm_map.get(entry["id"]),
                        on_checkpoint=(
                            self._make_on_checkpoint(beat, entry["id"])
                            if checkpoint_every
                            else None
                        ),
                    )
                except PreemptedError:
                    # The lease vanished mid-search; the final snapshot
                    # was already offered (though its beat may not have
                    # landed — the service keeps the last one that did).
                    # The loop's lost-lease check ends the batch.
                    continue
                except Exception as error:  # job failure — report, don't die
                    outcome = {"error": f"{type(error).__name__}: {error}"}
                else:
                    outcome = encode_outcome(result)
                outcome["job_id"] = entry["id"]
                outcomes.append(outcome)
        finally:
            beat.stop()
        if beat.lost.is_set():
            # The service expired the lease mid-run (e.g. a long GC or
            # paused VM): the jobs are already requeued, these results
            # must not race the retries.
            self.stats.lost_leases += 1
            return
        try:
            if len(entries) == 1:
                outcome = dict(outcomes[0])
                outcome.pop("job_id")  # single-result body, as ever
                self.client.submit_result(lease_id, outcome)
            else:
                self.client.submit_results(lease_id, outcomes)
        except LeaseExpiredError:
            self.stats.lost_leases += 1
            return
        for outcome in outcomes:
            if "error" in outcome:
                self.stats.failed += 1
            else:
                self.stats.completed += 1

    def run(self) -> WorkerStats:
        """The worker main loop; returns stats when the service goes
        away or ``max_jobs`` is reached."""
        self.register()
        errors = 0
        idle = 0
        while True:
            try:
                worked = self.run_one()
            except (ServiceError, OSError):
                errors += 1
                if errors >= MAX_CONSECUTIVE_ERRORS:
                    return self.stats
                time.sleep(self.config.poll_s)
                continue
            errors = 0
            done = self.stats.completed + self.stats.failed
            if self.config.max_jobs and done >= self.config.max_jobs:
                return self.stats
            if worked:
                idle = 0
            else:
                idle += 1
                time.sleep(idle_backoff(self.config.poll_s, idle))


def run_worker(config: WorkerConfig) -> int:
    """Blocking entry point behind ``repro work``.

    Prints a line per lifecycle event (grep-able by the fleet smoke)
    and a JSON stats summary on exit; Ctrl-C exits cleanly.
    """
    worker = FleetWorker(config)
    try:
        grant = worker.register()
    except (ServiceError, OSError) as error:
        print(f"cannot register with {config.server}: {error}", flush=True)
        return 1
    print(
        f"worker {worker.worker_id} registered at {config.server} "
        f"(heartbeat {worker.heartbeat_s:.3g}s)",
        flush=True,
    )
    del grant
    errors = 0
    idle = 0
    try:
        while True:
            try:
                grant = worker.client.lease(
                    worker.worker_id, max_jobs=worker._batch_size()
                )
                worker.stats.polls += 1
            except (ServiceError, OSError):
                errors += 1
                if errors >= MAX_CONSECUTIVE_ERRORS:
                    print("service unreachable; exiting", flush=True)
                    break
                time.sleep(config.poll_s)
                continue
            errors = 0
            if grant is None:
                idle += 1
                time.sleep(idle_backoff(config.poll_s, idle))
                continue
            idle = 0
            lease = grant["lease"]
            key = grant["job"]["key"]
            batch = grant.get("jobs") or [grant["job"]]
            suffix = f", {len(batch)} jobs" if len(batch) > 1 else ""
            print(
                f"worker {worker.worker_id} leased {lease['lease_id']} "
                f"({key}, attempt {lease['attempt']}{suffix})",
                flush=True,
            )
            before = worker.stats.lost_leases
            worker._process(grant)
            if worker.stats.lost_leases > before:
                print(
                    f"worker {worker.worker_id} lost {lease['lease_id']} "
                    "(expired; job requeued)",
                    flush=True,
                )
            else:
                print(
                    f"worker {worker.worker_id} finished {lease['lease_id']}",
                    flush=True,
                )
            done = worker.stats.completed + worker.stats.failed
            if config.max_jobs and done >= config.max_jobs:
                break
    except KeyboardInterrupt:
        pass
    print(f"worker stats: {json.dumps(worker.stats.to_dict())}", flush=True)
    return 0
