"""Counter/gauge registry with a Prometheus text exposition renderer.

The fleet needs to run unattended: a service sharding jobs onto remote
workers is only operable if queue depth, lease ages, per-worker
throughput and cache hit rates are scrapable by standard tooling.
This module is the (stdlib-only) observability substrate behind
``GET /metrics``:

* :class:`Counter` — monotone totals (``repro_jobs_completed_total``,
  the anytime-search trio ``repro_checkpoints_written_total`` /
  ``repro_jobs_preempted_total`` / ``repro_jobs_resumed_total``, and
  the warm-start uptake counter ``repro_warm_starts_total{kind=...}``),
  optionally labelled (``{worker="w1-local"}``).
* :class:`Gauge` — point-in-time values, either set explicitly or
  computed at scrape time from a callback (queue depth, lease ages —
  values that already live in service state and must never drift from
  it).
* :class:`Histogram` — cumulative-bucket distributions (lease batch
  sizes, result payload bytes, store flush latency), rendered as the
  standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` series so
  ``histogram_quantile()`` works out of the box.
* :class:`MetricsRegistry` — a named collection rendering the
  `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  (version 0.0.4): ``# HELP`` / ``# TYPE`` comment pairs followed by
  one ``name{labels} value`` sample line per label set.

Every mutation is lock-protected, so campaign code running in threads
(the tiered LUT cache is hit from HTTP handler executors) can share a
registry with the event loop.  A process-wide :data:`DEFAULT_REGISTRY`
exists for library instrumentation (lutcache, campaign); the service
builds its own registry per instance so tests and co-hosted services
never share samples.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable

from repro.errors import ConfigError

#: Label sets are keyed by a sorted tuple of (name, value) pairs.
LabelKey = tuple

_ESCAPES = str.maketrans({"\\": "\\\\", '"': '\\"', "\n": "\\n"})


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return str(value).translate(_ESCAPES)


def format_value(value: float) -> str:
    """One sample value as Prometheus prints it (ints without ``.0``)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_sample(name: str, key: LabelKey, value: float) -> str:
    """One exposition line: ``name{label="value",...} value``."""
    if not key:
        return f"{name} {format_value(value)}"
    body = ",".join(f'{label}="{escape_label_value(text)}"' for label, text in key)
    return f"{name}{{{body}}} {format_value(value)}"


class Metric:
    """Base metric: a named family of labelled samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ConfigError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: dict[LabelKey, float] = {}

    def samples(self) -> list[tuple[LabelKey, float]]:
        """Snapshot of every (label set, value) sample."""
        with self._lock:
            return sorted(self._values.items())

    def value(self, **labels) -> float:
        """Current value of one label set (0.0 when never touched)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> str:
        """``# HELP`` / ``# TYPE`` header plus one line per sample."""
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        samples = self.samples()
        if not samples:
            # A family with no samples yet still exposes its zero so
            # rate() queries see the series from the first scrape.
            samples = [((), 0.0)]
        lines.extend(render_sample(self.name, key, v) for key, v in samples)
        return "\n".join(lines)


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to one label set's total."""
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(Metric):
    """A value that can go up and down (queue depth, ages, ratios)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], dict | float] | None = None,
    ) -> None:
        super().__init__(name, help_text)
        #: Scrape-time value source.  May return a bare number (one
        #: unlabelled sample) or a ``{labels_dict_or_key: value}`` map
        #: (one sample per label set).  Callback gauges never go stale:
        #: the render *is* the measurement.
        self.callback = callback

    def set(self, value: float, **labels) -> None:
        """Set one label set's current value."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def remove(self, **labels) -> None:
        """Drop one label set (e.g. a lease that ended)."""
        with self._lock:
            self._values.pop(_label_key(labels), None)

    def samples(self) -> list[tuple[LabelKey, float]]:
        """Stored samples, or the callback's snapshot when one is set."""
        if self.callback is None:
            return super().samples()
        result = self.callback()
        if isinstance(result, dict):
            return sorted(
                (
                    _label_key(k) if isinstance(k, dict) else tuple(k),
                    float(v),
                )
                for k, v in result.items()
            )
        return [((), float(result))]


#: Default histogram buckets (the Prometheus client defaults): latency
#: oriented, seconds.
DEFAULT_BUCKETS = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram(Metric):
    """A cumulative-bucket distribution (``observe()`` one value at a
    time).

    Rendered as the conventional three series: ``name_bucket`` with an
    ``le`` label per upper bound (plus the implicit ``+Inf`` bucket),
    ``name_sum`` and ``name_count``.  Buckets are fixed at creation and
    must be strictly increasing; an explicit ``+Inf`` bound is implied
    and must not be passed.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {bounds}"
            )
        if math.isinf(bounds[-1]):
            raise ConfigError(
                f"histogram {name!r}: the +Inf bucket is implicit; do not "
                "pass it explicitly"
            )
        self.bounds = bounds
        #: Per label set: [bucket counts (one per bound), sum, count].
        self._series: dict[LabelKey, list] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into every bucket it falls under."""
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [[0] * len(self.bounds), 0.0, 0]
            counts, _, _ = series
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[index] += 1
            series[1] += value
            series[2] += 1

    def value(self, **labels) -> float:
        """Observation count of one label set (0.0 when never observed)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return float(series[2]) if series is not None else 0.0

    def sum_value(self, **labels) -> float:
        """Sum of observations of one label set."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return float(series[1]) if series is not None else 0.0

    def samples(self) -> list[tuple[LabelKey, float]]:
        """``(labels, count)`` per series — the scalar view of the
        family (the full bucket breakdown lives in :meth:`render`)."""
        with self._lock:
            return sorted(
                (key, float(series[2])) for key, series in self._series.items()
            )

    def render(self) -> str:
        """The three-series exposition block of this histogram."""
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            series = sorted(self._series.items())
            if not series:
                # Like the scalar metrics: an untouched family still
                # exposes its zero series from the first scrape.
                series = [((), [[0] * len(self.bounds), 0.0, 0])]
            for key, (counts, total, count) in series:
                # `counts` is already cumulative: observe() increments
                # every bucket the value falls under.
                for bound, bucket in zip(self.bounds, counts):
                    lines.append(
                        render_sample(
                            f"{self.name}_bucket",
                            key + (("le", format_value(bound)),),
                            float(bucket),
                        )
                    )
                lines.append(
                    render_sample(
                        f"{self.name}_bucket",
                        key + (("le", "+Inf"),),
                        float(count),
                    )
                )
                lines.append(render_sample(f"{self.name}_sum", key, float(total)))
                lines.append(render_sample(f"{self.name}_count", key, float(count)))
        return "\n".join(lines)


class MetricsRegistry:
    """A named collection of metrics, rendered in registration order.

    ``counter()`` / ``gauge()`` / ``histogram()`` are get-or-create:
    instrumentation sites name the metric they want and share the
    family with every other site using that name (mismatched kinds
    raise — one name, one type, per the exposition format).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._register(name, help_text, Counter)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        callback: Callable[[], dict | float] | None = None,
    ) -> Gauge:
        """Get or create the gauge ``name`` (optionally callback-backed)."""
        gauge = self._register(name, help_text, Gauge)
        if callback is not None:
            gauge.callback = callback
        return gauge

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        """Get or create the histogram ``name``.

        ``buckets`` applies on creation only — a histogram's buckets
        are fixed for its lifetime, so later get-or-create calls reuse
        the existing family regardless of the argument.
        """
        if buckets is None:
            return self._register(name, help_text, Histogram)
        return self._register(name, help_text, Histogram, buckets=buckets)

    def _register(self, name: str, help_text: str, cls, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigError(
                        f"metric {name!r} is a {existing.kind}, not a "
                        f"{cls.kind}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def metrics(self) -> Iterable[Metric]:
        """Every registered metric, in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def render(self) -> str:
        """The full exposition payload (trailing newline included)."""
        blocks = [metric.render() for metric in self.metrics()]
        return "\n".join(blocks) + "\n" if blocks else "\n"


def parse_samples(text: str) -> dict[str, dict[LabelKey, float]]:
    """Parse exposition text back into ``{name: {labels: value}}``.

    A deliberately strict mini-parser used by tests and the fleet
    smoke to assert on scraped values; raises :class:`ConfigError` on
    lines that are neither comments nor valid samples, so a formatting
    regression fails loudly.
    """
    out: dict[str, dict[LabelKey, float]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ConfigError(f"malformed sample line {line!r}")
        if "{" in name_part:
            name, _, label_body = name_part.partition("{")
            if not label_body.endswith("}"):
                raise ConfigError(f"malformed labels in {line!r}")
            labels = {}
            body = label_body[:-1]
            while body:
                label, _, rest = body.partition('="')
                value_text = ""
                i = 0
                while i < len(rest):
                    ch = rest[i]
                    if ch == "\\" and i + 1 < len(rest):
                        value_text += {"n": "\n"}.get(rest[i + 1], rest[i + 1])
                        i += 2
                        continue
                    if ch == '"':
                        break
                    value_text += ch
                    i += 1
                else:
                    raise ConfigError(f"unterminated label value in {line!r}")
                labels[label] = value_text
                body = rest[i + 1 :].lstrip(",")
        else:
            name, labels = name_part, {}
        try:
            value = float(value_part)
        except ValueError:
            raise ConfigError(f"malformed value in {line!r}") from None
        out.setdefault(name, {})[_label_key(labels)] = value
    return out


#: Process-wide registry for library instrumentation (the tiered LUT
#: cache, campaign workers).  The service exposes its *own* registry
#: over ``GET /metrics``; this one backs in-process consumers such as
#: ``repro work`` worker stats.
DEFAULT_REGISTRY = MetricsRegistry()
