"""Async campaign service: a job queue + result store behind HTTP.

The paper's workflow is one offline search per run; the ROADMAP's north
star is a long-running service that many clients throw scenarios at.
This module is that service layer:

* **Priority job queue** — ``POST /jobs`` enqueues
  :class:`~repro.runtime.campaign.CampaignJob` submissions (single
  scenarios or whole grids) with an integer priority (lower runs
  first).  The queue is depth-bounded: past ``queue_limit`` the service
  answers **429** instead of buffering unboundedly (back-pressure).
* **Bounded worker pool** — N asyncio workers drain the queue and shard
  jobs onto a :class:`~concurrent.futures.ProcessPoolExecutor` via
  :func:`~repro.runtime.campaign.execute_job`, so searches run off the
  event loop with the kernel backend each job requested and the shared
  on-disk LUT cache.
* **Persistent result store** — every payload lands in a
  :class:`~repro.runtime.store.ResultStore` keyed by the full job
  identity; re-submitting a solved scenario is an instant cache hit
  (state ``done``, ``from_store: true``) and identical submissions
  in flight are coalesced onto one record.
* **Progress streaming** — ``GET /jobs/{id}/progress`` is a
  Server-Sent-Events stream: heartbeats while the job is queued or
  running — interleaved with live ``progress`` events from the
  anytime checkpoints when ``checkpoint_every`` is on — then the
  search's best-so-far checkpoints (derived from
  ``SearchResult.curve_ms``, monotone non-increasing, in episode
  order), then a terminal ``done``/``failed``/``cancelled`` event.
* **Anytime search** — with ``checkpoint_every=N`` every search /
  multi-seed job captures a :mod:`repro.core.checkpoint` snapshot
  each N episodes.  Local pool jobs spool snapshots to a temp
  directory (callables cannot cross the process-pool boundary);
  fleet workers carry them in heartbeat bodies.  The latest snapshot
  per job key is persisted in the result store's checkpoint table,
  which buys three things: ``DELETE /jobs/{id}`` *preempts* a
  running job (202) instead of just refusing; a SIGKILLed pool or
  fleet worker's job is requeued with its checkpoint attached (crash
  recovery); and re-submitting with ``"resume": true`` continues
  from the stored snapshot — finishing bitwise-identical to a run
  that was never interrupted (exactness contract 8,
  ``docs/architecture.md``).
* **LUT shard serving** — ``GET/PUT /luts/{platform}/{network}``
  expose the instance's local LUT cache tier to the fleet: any other
  machine's campaign (``--cache-remote URL``) fetches LUTs profiled
  here instead of re-profiling, and pushes fresh profiles back
  (:mod:`repro.runtime.lutcache`; every entry is validated against
  its key before it is stored).
* **Worker fleet (pull protocol)** — remote hosts run ``repro work
  --server URL`` (:mod:`repro.runtime.worker`): they register over
  ``POST /workers``, lease queued jobs one at a time over
  ``POST /leases``, extend their claim with
  ``POST /leases/{id}/heartbeat`` and stream results back through
  ``POST /leases/{id}/result`` — landing in the same
  :class:`ResultStore`, bitwise-identical to local execution.  A
  missed heartbeat (worker crash, network partition) expires the
  lease and requeues the job with a bounded retry budget; the local
  process pool is just another worker of the same protocol (its
  leases never expire — liveness is structural).
* **Tenancy guards** — per-tenant (``X-Tenant`` header) token-bucket
  rate limits and active-job admission quotas on ``POST /jobs``, both
  answering 429 + ``Retry-After`` so one tenant cannot starve the
  fleet.
* **Metrics** — ``GET /metrics`` renders a Prometheus text exposition
  (:mod:`repro.runtime.metrics`): queue depth, running/leased counts,
  lease ages, per-worker throughput, LUT-cache and result-store hit
  rates.  ``/metrics`` and ``/healthz`` bypass every admission guard —
  a saturated service must stay observable.
* **Graceful shutdown** — ``POST /shutdown`` (or SIGINT/SIGTERM under
  ``repro serve``) stops intake, cancels queued jobs, waits for
  outstanding fleet leases (bounded by ``drain_timeout_s``, requeue →
  cancel past it), waits for in-flight local jobs to finish, persists
  their results, then exits.

The HTTP layer is stdlib-only: a minimal HTTP/1.1 server written
directly on :func:`asyncio.start_server`, so the service runs anywhere
the repo does — no aiohttp, no frameworks.  Connections are
**keep-alive** by default (bounded per connection by
``MAX_REQUESTS_PER_CONNECTION`` and the request read timeout), so a
worker's whole lease/heartbeat/result dialogue rides one TCP stream.
Workers may also lease in *batches* (``POST /leases`` with
``max_jobs``) and deliver every result of a batch in one
``POST /leases/{id}/results`` — the single-job endpoints remain for
compatibility.  Every endpoint is documented with examples in
``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import json
import math
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.core import checkpoint as ckpt_mod
from repro.core.config import ServiceConfig
from repro.core.multi_seed import MultiSeedResult
from repro.engine.pricing import SharedCostTables
from repro.errors import (
    ConfigError,
    LeaseError,
    LeaseExpiredError,
    LutCacheError,
    PreemptedError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
)
from repro.runtime.campaign import (
    CampaignJob,
    CampaignResult,
    execute_job,
    grid,
    spool_paths,
)
from repro.runtime.lutcache import LocalTier, LutKey, validate_entry
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.store import (
    LEASE_COMPLETED,
    LEASE_FAILED,
    LEASE_RELEASED,
    ResultStore,
    StoredResult,
    best_ms_of,
    decode_payload,
    job_key,
)

#: Sentinel: "submit() should consult the store itself" (distinct from
#: an explicit ``stored=None``, which asserts a known store miss).
_UNRESOLVED = object()

#: Job lifecycle states (terminal: done, failed, cancelled).
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
)

#: Default submission priority (lower runs first).
DEFAULT_PRIORITY = 10

#: Seconds a connection may take to deliver its request before being
#: dropped (bounds slow/idle clients; SSE *responses* are unbounded).
#: Also the idle timeout of a kept-alive connection between requests.
REQUEST_READ_TIMEOUT_S = 30.0

#: Requests served on one keep-alive connection before the server
#: answers ``Connection: close`` — bounds per-connection state and
#: gives load balancers a natural rebalancing point.
MAX_REQUESTS_PER_CONNECTION = 1000

#: Maximum accepted request body (JSON job submissions are tiny; an
#: unbounded Content-Length would let any client allocate server
#: memory at will).  Batch result delivery gets a bigger allowance —
#: see :meth:`CampaignService._body_limit`.
MAX_BODY_BYTES = 1 << 20

#: Lease TTL used for the local worker pool.  Local workers' liveness
#: is structural (an awaited in-process future cannot vanish without
#: the whole service dying), so their leases never expire — the value
#: only exists so local and fleet execution share one lease table.
LOCAL_LEASE_TTL_S = 1e9

#: Tenant assumed when ``POST /jobs`` carries no ``X-Tenant`` header.
DEFAULT_TENANT = "default"


def _valid_name(name: str) -> bool:
    """Worker/tenant names: short, metric-label and log safe."""
    return 0 < len(name) <= 64 and all(c.isalnum() or c in "._-" for c in name)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    :meth:`take` consumes one token and returns 0.0, or — when the
    bucket is empty — leaves it untouched and returns the seconds
    until a token becomes available (the ``Retry-After`` hint).
    """

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def take(self, now: float | None = None) -> float:
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class WorkerInfo:
    """One registered worker (local pool member or remote fleet host)."""

    id: str
    name: str
    local: bool = False
    registered_s: float = field(default_factory=time.time)
    last_seen_s: float = field(default_factory=time.time)
    leases: int = 0
    completed: int = 0
    failed: int = 0
    expired: int = 0
    busy_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "local": self.local,
            "registered_s": self.registered_s,
            "last_seen_s": self.last_seen_s,
            "leases": self.leases,
            "completed": self.completed,
            "failed": self.failed,
            "expired": self.expired,
            "busy_s": self.busy_s,
        }


def checkpoints_of(payload) -> list[dict]:
    """Best-so-far progress checkpoints of a finished payload.

    For payloads carrying an episode curve (``SearchResult``; the best
    member of a ``MultiSeedResult``) this is the sequence of strict
    improvements of ``running_min(curve_ms)`` — episode indices are
    strictly increasing, ``best_ms`` values monotone non-increasing,
    and every value satisfies ``best_ms == min(curve_ms[: episode+1])``
    bitwise.  The final episode is always included.  Payloads without a
    curve (Table II rows, method comparisons) yield a single terminal
    checkpoint when they expose a headline latency.
    """
    if isinstance(payload, MultiSeedResult):
        payload = payload.best
    curve = getattr(payload, "curve_ms", None)
    if not curve:
        best = best_ms_of(payload)
        if best is None:
            return []
        return [{"episode": 0, "best_ms": best}]
    points = []
    best = float("inf")
    for episode, total in enumerate(curve):
        if total < best:
            best = total
            points.append({"episode": episode, "best_ms": best})
    last = len(curve) - 1
    if points[-1]["episode"] != last:
        points.append({"episode": last, "best_ms": best})
    return points


@dataclass
class JobRecord:
    """One submitted job as the service tracks (and serves) it."""

    id: str
    job: CampaignJob
    priority: int = DEFAULT_PRIORITY
    state: str = QUEUED
    from_store: bool = False
    error: str | None = None
    result: CampaignResult | None = None
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    tenant: str = DEFAULT_TENANT
    #: Leases granted so far (1 on first grant; requeues increment).
    attempts: int = 0
    #: Worker id / lease id of the *current* grant (None while queued).
    worker: str | None = None
    lease_id: str | None = None
    #: Encoded checkpoint the next grant should resume from (attached
    #: on ``"resume": true`` submissions and crash-recovery requeues).
    resume_text: str | None = field(default=None, repr=False)
    #: Encoded Q-prior spec for warm-started jobs — resolved from the
    #: result corpus at submission, shipped to whichever worker (pool
    #: or fleet) runs the job.  None means the job runs cold even if
    #: it asked for a warm start (the corpus had nothing to offer).
    warm_text: str | None = field(default=None, repr=False)
    #: Latest in-flight progress (``{"episode", "best_ms"}``) reported
    #: through a fleet heartbeat's checkpoint carriage.
    progress: dict | None = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (DONE, FAILED, CANCELLED)

    def to_dict(self, include_payload: bool = False) -> dict:
        """JSON-ready view of the record (the wire format of ``/jobs``).

        ``include_payload`` attaches the full result payload (encoded
        exactly like the store encodes it) — ``GET /jobs/{id}`` sets
        it, the ``GET /jobs`` listing does not.
        """
        body = {
            "id": self.id,
            "state": self.state,
            "job": asdict(self.job),
            "key": job_key(self.job),
            "priority": self.priority,
            "from_store": self.from_store,
            "error": self.error,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "tenant": self.tenant,
            "attempts": self.attempts,
            "worker": self.worker,
            "lease_id": self.lease_id,
            "links": {
                "self": f"/jobs/{self.id}",
                "progress": f"/jobs/{self.id}/progress",
            },
        }
        if self.result is not None:
            body["best_ms"] = best_ms_of(self.result.payload)
            body["wall_clock_s"] = self.result.wall_clock_s
            body["lut_from_cache"] = self.result.lut_from_cache
            if include_payload:
                from repro.runtime.store import encode_payload

                kind, text = encode_payload(self.result.payload)
                body["payload_kind"] = kind
                body["payload"] = json.loads(text)
        return body


def jobs_from_body(body: dict) -> tuple[list[CampaignJob], int]:
    """Parse a ``POST /jobs`` body into jobs plus a priority.

    Two forms are accepted: a single scenario (``network`` plus
    optional job fields) and a grid (``networks`` with optional
    ``platforms``/``modes``/``seeds`` lists, expanded via
    :func:`~repro.runtime.campaign.grid`).  The presence of
    ``networks`` selects the grid form — ``seeds`` alone does not,
    since a single multi-seed job carries a scalar ``seeds`` field.
    Unknown keys are rejected so typos fail loudly instead of
    silently running defaults.
    """
    if not isinstance(body, dict):
        raise ConfigError("request body must be a JSON object")
    body = dict(body)
    priority = body.pop("priority", DEFAULT_PRIORITY)
    if not isinstance(priority, int):
        raise ConfigError(f"priority must be an integer, got {priority!r}")
    if "networks" in body:
        allowed = {
            "networks",
            "platforms",
            "modes",
            "seeds",
            "episodes",
            "kind",
            "seeds_per_job",
            "kernel",
            "warm_start",
        }
        unknown = set(body) - allowed
        if unknown:
            raise ConfigError(f"unknown grid field(s): {sorted(unknown)}")
        networks = body.get("networks")
        if not networks or not isinstance(networks, list):
            raise ConfigError("grid submissions need a non-empty 'networks' list")
        jobs = grid(
            networks,
            platforms=body.get("platforms"),
            modes=body.get("modes"),
            seeds=body.get("seeds"),
            episodes=body.get("episodes"),
            kind=body.get("kind", "search"),
            seeds_per_job=body.get("seeds_per_job", 8),
            kernel=body.get("kernel", "auto"),
            warm_start=body.get("warm_start", "off"),
        )
        return jobs, priority
    allowed = {
        "network",
        "platform",
        "mode",
        "seed",
        "episodes",
        "kind",
        "repeats",
        "seeds",
        "kernel",
        "warm_start",
    }
    unknown = set(body) - allowed
    if unknown:
        raise ConfigError(f"unknown job field(s): {sorted(unknown)}")
    if "network" not in body:
        raise ConfigError("job submissions need a 'network'")
    body.setdefault("kind", "search")
    return [CampaignJob(**body)], priority


class CampaignService:
    """The long-running campaign service (queue + workers + store + HTTP).

    Lifecycle::

        service = CampaignService(ServiceConfig(port=0, workers=2))
        await service.start()        # binds HTTP, spawns workers
        ...                          # service.port is the bound port
        await service.shutdown()     # graceful: drains in-flight jobs

    or, from the CLI, ``repro serve`` which runs
    :meth:`serve_forever` with signal handlers installed.  All state
    lives on one event loop; jobs execute in worker *processes* so the
    loop stays responsive while searches run.
    """

    def __init__(
        self, config: ServiceConfig | None = None, store: ResultStore | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        # `store or ...` would discard an *empty* injected store
        # (ResultStore defines __len__, so empty is falsy).
        self.store = (
            store
            if store is not None
            else ResultStore(
                self.config.store_path or ":memory:",
                wal=self.config.store_wal,
                group_commit=self.config.store_group_commit,
            )
        )
        self.records: dict[str, JobRecord] = {}
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count(1)
        self._order = itertools.count()  # FIFO tie-break within a priority
        self._active: dict[str, JobRecord] = {}  # job key -> queued/running
        self._pending = 0  # queued (not yet running) job count
        self._workers: list[asyncio.Task] = []
        self._lut_tier: LocalTier | None = (
            LocalTier(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self._executor: ProcessPoolExecutor | None = None
        #: Checkpoint spool directory for local pool jobs (created at
        #: start when checkpointing is on; removed at shutdown).
        self._spool_dir: str | None = None
        #: Shared pricing-table segments exported for worker jobs, one
        #: per LUT key, owned by the service and unlinked at shutdown.
        self._shared_tables: dict[LutKey, SharedCostTables] = {}
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._closing = False
        self._closed = asyncio.Event()
        self.port: int | None = None
        #: Registered workers (local pool members and fleet hosts).
        self.workers_info: dict[str, WorkerInfo] = {}
        self._worker_seq = itertools.count(1)
        self._lease_seq = itertools.count(1)
        self._reaper: asyncio.Task | None = None
        #: Strong reference to an in-flight graceful-shutdown task —
        #: the loop only holds tasks weakly (see :meth:`_spawn_shutdown`).
        self._shutdown_task: asyncio.Task | None = None
        #: Per-tenant token buckets (created lazily on first POST).
        self._buckets: dict[str, TokenBucket] = {}
        self.metrics = MetricsRegistry()
        self._init_metrics()

    def _init_metrics(self) -> None:
        m = self.metrics
        self._m_submitted = m.counter(
            "repro_jobs_submitted_total", "Jobs admitted, by tenant."
        )
        self._m_completed = m.counter(
            "repro_jobs_completed_total", "Jobs finished done, by worker."
        )
        self._m_failed = m.counter(
            "repro_jobs_failed_total", "Jobs finished failed, by worker."
        )
        self._m_requeued = m.counter(
            "repro_jobs_requeued_total",
            "Jobs requeued after their lease expired.",
        )
        self._m_rejected = m.counter(
            "repro_jobs_rejected_total",
            "POST /jobs rejections, by reason "
            "(queue_full, quota, rate_limit).",
        )
        self._m_leases_granted = m.counter(
            "repro_leases_granted_total", "Leases granted, by worker."
        )
        self._m_leases_expired = m.counter(
            "repro_leases_expired_total",
            "Leases expired by the reaper, by worker.",
        )
        self._m_store_hits = m.counter(
            "repro_store_hits_total",
            "Submissions answered straight from the result store.",
        )
        self._m_store_misses = m.counter(
            "repro_store_misses_total",
            "Submissions that had to be computed.",
        )
        self._m_lut_hits = m.counter(
            "repro_lut_cache_hits_total",
            "Completed jobs whose LUT came from the tiered cache.",
        )
        self._m_lut_misses = m.counter(
            "repro_lut_cache_misses_total",
            "Completed jobs that profiled their LUT from scratch.",
        )
        self._m_busy = m.counter(
            "repro_worker_busy_seconds_total",
            "Wall-clock seconds spent executing jobs, by worker.",
        )
        self._m_checkpoints = m.counter(
            "repro_checkpoints_written_total",
            "Anytime job checkpoints persisted into the store.",
        )
        self._m_preempted = m.counter(
            "repro_jobs_preempted_total",
            "Running jobs preempted by DELETE /jobs/{id} "
            "(latest checkpoint persisted for resumption).",
        )
        self._m_resumed = m.counter(
            "repro_jobs_resumed_total",
            "Jobs granted with a resume checkpoint attached.",
        )
        self._m_warm = m.counter(
            "repro_warm_starts_total",
            "Jobs admitted with a warm-start Q-prior spec resolved "
            "from the result corpus, by prior kind.",
        )
        self._h_lease_batch = m.histogram(
            "repro_lease_batch_jobs",
            "Jobs granted per lease (the fleet's batch size).",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._h_result_bytes = m.histogram(
            "repro_result_payload_bytes",
            "Request body bytes of result submissions "
            "(single and batch endpoints).",
            buckets=(1024, 8192, 65536, 262144, 1048576),
        )
        self._h_flush = m.histogram(
            "repro_store_flush_seconds",
            "Latency of result-store flush/commit transactions.",
            buckets=(0.0005, 0.001, 0.005, 0.01, 0.05, 0.25, 1.0),
        )
        m.gauge(
            "repro_service_info",
            "Constant 1, labelled with the service version.",
            callback=lambda: {(("version", __version__),): 1.0},
        )
        m.gauge(
            "repro_queue_depth",
            "Jobs queued and not yet running.",
            callback=lambda: float(self._pending),
        )
        m.gauge(
            "repro_queue_limit",
            "Queue depth at which POST /jobs answers 429.",
            callback=lambda: float(self.config.queue_limit),
        )
        m.gauge(
            "repro_jobs_running",
            "Jobs currently leased and executing.",
            callback=lambda: float(
                sum(1 for r in self.records.values() if r.state == RUNNING)
            ),
        )
        m.gauge(
            "repro_workers_registered",
            "Workers registered with this service.",
            callback=lambda: float(len(self.workers_info)),
        )
        m.gauge(
            "repro_leases_active",
            "Leases currently active in the lease table.",
            callback=lambda: float(len(self.store.active_leases())),
        )
        m.gauge(
            "repro_lease_age_seconds",
            "Age of each active lease, by lease id and worker.",
            callback=self._lease_ages,
        )
        m.gauge(
            "repro_stored_results",
            "Rows in the persistent result store.",
            callback=lambda: float(len(self.store)),
        )

    def _lease_ages(self) -> dict:
        now = time.time()
        return {
            (("lease", lease.lease_id), ("worker", lease.worker)): lease.age_s(now)
            for lease in self.store.active_leases()
        }

    # -- submission and queue state -----------------------------------------

    def submit(
        self,
        job: CampaignJob,
        priority: int = DEFAULT_PRIORITY,
        stored: StoredResult | None | object = _UNRESOLVED,
        tenant: str = DEFAULT_TENANT,
        resume: bool = False,
    ) -> JobRecord:
        """Accept one job: store hit, coalesced duplicate, or enqueue.

        Returns the job's :class:`JobRecord` — immediately ``done``
        (``from_store=True``) when the result store already has this
        exact scenario, the *existing* record when an identical job is
        already queued or running, and a fresh ``queued`` record
        otherwise.  ``stored`` lets a caller that already looked the
        job up in the store pass the answer in (``None`` for a known
        miss) so admission does not query twice.  ``resume=True``
        attaches the job key's stored checkpoint (if any) so the grant
        continues the interrupted search instead of restarting; with
        no stored checkpoint the job simply runs from scratch.  Raises
        :class:`QueueFullError` past the queue depth limit and
        :class:`ServiceError` once shutdown has begun.
        """
        if self._closing:
            raise ServiceError("service is shutting down; not accepting jobs")
        key = job_key(job)
        active = self._active.get(key)
        if active is not None:
            self._m_submitted.inc(tenant=tenant)
            return active
        if stored is _UNRESOLVED:
            stored = self.store.get(job)
        self._m_submitted.inc(tenant=tenant)
        if stored is not None:
            self._m_store_hits.inc()
            record = JobRecord(
                id=f"job-{next(self._seq)}",
                job=job,
                priority=priority,
                state=DONE,
                from_store=True,
                result=CampaignResult(
                    job=job,
                    payload=stored.payload,
                    wall_clock_s=stored.wall_clock_s,
                    lut_from_cache=True,
                ),
                finished_s=time.time(),
                tenant=tenant,
            )
            record.done_event.set()
            self.records[record.id] = record
            self._prune_records(keep=record.id)
            return record
        if self._pending >= self.config.queue_limit:
            self._m_rejected.inc(reason="queue_full")
            raise QueueFullError(
                f"job queue is full ({self._pending}/"
                f"{self.config.queue_limit} queued)"
            )
        self._m_store_misses.inc()
        record = JobRecord(
            id=f"job-{next(self._seq)}",
            job=job,
            priority=priority,
            tenant=tenant,
        )
        if resume:
            stored_ckpt = self.store.get_checkpoint(key)
            if stored_ckpt is not None:
                record.resume_text = stored_ckpt.text
        if job.warm_start != "off":
            record.warm_text = self._resolve_warm(job)
            if record.warm_text is not None:
                self._m_warm.inc(kind=job.warm_start)
        self.records[record.id] = record
        self._active[key] = record
        self._pending += 1
        self._queue.put_nowait((priority, next(self._order), record))
        self._prune_records(keep=record.id)
        return record

    def _resolve_warm(self, job: CampaignJob) -> str | None:
        """Resolve a warm job's prior spec from this service's corpus.

        Runs at admission (synchronously — a store scan plus, for
        surrogate priors, cache-only LUT peeks and one least-squares
        fit over small feature matrices).  Every failure degrades to a
        cold start: warm starts accelerate jobs, they never gate them.
        """
        from repro.core.priors import resolve_prior_spec
        from repro.runtime.lutcache import open_cache

        cache = open_cache(self.config.cache_dir, self.config.cache_remote)
        resolver = cache.peek if cache is not None else None
        try:
            return resolve_prior_spec(
                job.warm_start,
                job.network,
                job.platform,
                job.mode,
                self.store,
                resolver,
            )
        except Exception:
            return None

    def _prune_records(self, keep: str) -> None:
        """Evict the oldest terminal records past ``keep_records``.

        A long-running service would otherwise grow memory linearly
        with submissions (every record keeps its full payload).
        Evicted payloads remain queryable through the result store;
        queued/running records are never evicted, nor is ``keep`` (the
        record the caller is about to hand to a client — an
        acknowledged job id must stay queryable at least once).
        """
        excess = len(self.records) - self.config.keep_records
        if excess <= 0:
            return
        for job_id in [
            record.id
            for record in self.records.values()
            if record.finished and record.id != keep
        ][:excess]:
            del self.records[job_id]

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns False when it already left the
        queue (running or terminal jobs are not interrupted)."""
        record = self.records.get(job_id)
        if record is None or record.state != QUEUED:
            return False
        self._mark_cancelled(record)
        return True

    def _mark_cancelled(self, record: JobRecord) -> None:
        record.state = CANCELLED
        record.finished_s = time.time()
        self._active.pop(job_key(record.job), None)
        self._pending -= 1
        record.done_event.set()

    def preempt(self, record: JobRecord) -> bool:
        """Preempt a *running* job, keeping its latest checkpoint.

        Two paths, matching the two execution substrates:

        * **Local pool job** (checkpointing on): drop the spool cancel
          flag — the search stops at its next episode boundary, the
          worker's :class:`~repro.errors.PreemptedError` carries the
          final snapshot, and :meth:`_finish_preempted` persists it.
          The record stays ``running`` until that lands (the 202 says
          ``preempting``, not ``preempted``).
        * **Fleet-leased job**: revoke the lease — the worker's next
          heartbeat answers 409 and it abandons the batch.  The
          targeted job is cancelled *now* (its latest heartbeat-carried
          checkpoint stays in the store for resumption); batch siblings
          were not the target and are explicitly **requeued**, not
          discarded, via :meth:`_release_job`.

        Returns False when preemption is unavailable (no checkpointing
        spool for a local job, or the lease is already gone) — the
        caller answers 409 as before.
        """
        if record.state != RUNNING:
            return False
        info = self.workers_info.get(record.worker or "")
        key = job_key(record.job)
        if info is not None and info.local:
            if self._spool_dir is None:
                return False
            _, _, cancel_path = spool_paths(self._spool_dir, key)
            try:
                cancel_path.touch()
            except OSError:
                return False
            return True
        lease_id = record.lease_id
        if lease_id is None:
            return False
        lease = self.store.get_lease(lease_id)
        if lease is None or not lease.live:
            return False
        self.store.finish_lease(lease_id, LEASE_RELEASED)
        for jid in lease.job_ids:
            sibling = self.records.get(jid)
            if (
                sibling is None
                or sibling.id == record.id
                or sibling.state != RUNNING
                or sibling.lease_id != lease_id
            ):
                continue
            self._release_job(
                sibling, "lease revoked by preemption", worker=lease.worker
            )
        record.lease_id = None
        record.worker = None
        record.state = CANCELLED
        record.error = "preempted; lease revoked"
        record.finished_s = time.time()
        self._m_preempted.inc()
        self._active.pop(key, None)
        record.done_event.set()
        return True

    def stats(self) -> dict:
        """Queue/worker/job counters (the ``/healthz`` body)."""
        states: dict[str, int] = {}
        for record in self.records.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "status": "shutting-down" if self._closing else "ok",
            "version": __version__,
            "workers": self.config.workers,
            "queue_depth": self._pending,
            "queue_limit": self.config.queue_limit,
            "jobs": states,
            "stored_results": len(self.store),
            "workers_registered": len(self.workers_info),
            "leases_active": len(self.store.active_leases()),
        }

    # -- workers -------------------------------------------------------------

    def register_worker(
        self, name: str | None = None, local: bool = False
    ) -> WorkerInfo:
        """Register a worker and return its :class:`WorkerInfo`.

        Local pool members register themselves at startup; fleet hosts
        register over ``POST /workers``.  Ids are unique per service
        lifetime (``w{seq}`` or ``w{seq}-{name}``), so two hosts
        sharing a ``--name`` still get distinct lease ownership.
        """
        if name is not None and not _valid_name(name):
            raise ConfigError(
                f"worker name {name!r} must be 1-64 chars of "
                "[A-Za-z0-9._-]"
            )
        worker_id = f"w{next(self._worker_seq)}"
        if name:
            worker_id = f"{worker_id}-{name}"
        info = WorkerInfo(id=worker_id, name=name or worker_id, local=local)
        self.workers_info[worker_id] = info
        return info

    def lease_next(self, worker_id: str) -> JobRecord | None:
        """Grant the highest-priority queued job to ``worker_id``.

        Returns None when the queue holds nothing runnable (the worker
        should poll again after ``poll_s``).  Raises
        :class:`LeaseError` for unregistered workers — registration is
        what makes a crash attributable in ``GET /workers``.
        """
        records = self.lease_batch(worker_id, 1)
        return records[0] if records else None

    def lease_batch(self, worker_id: str, max_jobs: int = 1) -> list[JobRecord]:
        """Grant up to ``max_jobs`` queued jobs under ONE lease.

        The batch shares a lease id, deadline and heartbeat: one
        round-trip claims it, one heartbeat keeps all of it alive, and
        a crash requeues all of it (each job keeping its own attempt
        budget).  Returns ``[]`` when the queue holds nothing runnable.
        """
        info = self.workers_info.get(worker_id)
        if info is None:
            raise LeaseError(f"unknown worker {worker_id!r}; POST /workers first")
        info.last_seen_s = time.time()
        if self._closing:
            return []
        records: list[JobRecord] = []
        while len(records) < max_jobs:
            try:
                _, order, record = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if record is None:
                # Shutdown sentinel destined for a local worker —
                # put it back untouched.
                self._queue.put_nowait((float("inf"), order, None))
                break
            if record.state != QUEUED:  # cancelled while queued
                continue
            records.append(record)
        if not records:
            return []
        self._grant_batch(records, info)
        return records

    def _grant(self, record: JobRecord, info: WorkerInfo) -> JobRecord:
        """Move a queued record to running under a fresh lease."""
        self._grant_batch([record], info)
        return record

    def _grant_batch(self, records: list[JobRecord], info: WorkerInfo) -> None:
        """Move queued records to running under one fresh lease."""
        for record in records:
            record.state = RUNNING
            record.started_s = time.time()
            record.attempts += 1
            self._pending -= 1
        ttl = LOCAL_LEASE_TTL_S if info.local else self.config.lease_ttl_s
        lease = self.store.create_lease(
            f"lease-{next(self._lease_seq)}",
            [record.id for record in records],
            [job_key(record.job) for record in records],
            info.id,
            ttl,
            attempt=max(record.attempts for record in records),
        )
        for record in records:
            record.lease_id = lease.lease_id
            record.worker = info.id
            if record.resume_text is not None:
                self._m_resumed.inc()
        info.leases += 1
        info.last_seen_s = time.time()
        self._m_leases_granted.inc(worker=info.id)
        self._h_lease_batch.observe(float(len(records)))

    def _finish_record(
        self,
        record: JobRecord,
        info: WorkerInfo | None,
        result: CampaignResult | None,
        error: str | None,
        persist: bool = True,
        finish_lease: bool = True,
    ) -> None:
        """Common terminal path for local and fleet execution.

        Persists the payload, closes the lease row, updates worker
        accounting and metrics, and wakes progress streams.  Store
        failures degrade to a served-from-memory result with a note in
        ``record.error`` — they never kill the caller.

        Batch result delivery passes ``persist=False`` (the whole
        batch lands through one :meth:`ResultStore.put_many`) and
        ``finish_lease=False`` (one lease covers many records; the
        caller closes it once).
        """
        if finish_lease and record.lease_id is not None:
            self.store.finish_lease(
                record.lease_id,
                LEASE_COMPLETED if error is None else LEASE_FAILED,
            )
        # Stamp the finish time *before* flipping the state: observers
        # on other threads (status endpoints, benchmarks) treat a
        # terminal state as "finished_s is set".
        record.finished_s = time.time()
        if error is not None:
            record.error = error
            record.state = FAILED
        else:
            assert result is not None
            record.result = result
            record.state = DONE
            if persist:
                try:
                    self.store.put(record.job, result.payload, result.wall_clock_s)
                except Exception as exc:
                    # The computed result is still served from memory;
                    # a store failure must not kill the worker task or
                    # leave the record stuck in `running`.
                    record.error = (
                        f"result not persisted — {type(exc).__name__}: {exc}"
                    )
            if result.lut_from_cache:
                self._m_lut_hits.inc()
            else:
                self._m_lut_misses.inc()
        worker_id = record.worker or "unknown"
        if info is not None:
            busy = record.finished_s - (record.started_s or record.finished_s)
            info.busy_s += busy
            info.last_seen_s = record.finished_s
            self._m_busy.inc(busy, worker=info.id)
            if error is None:
                info.completed += 1
            else:
                info.failed += 1
        if error is None:
            self._m_completed.inc(worker=worker_id)
        else:
            self._m_failed.inc(worker=worker_id)
        key = job_key(record.job)
        # Checkpoint hygiene: a finished job's snapshot is dead weight
        # (and must not resurrect as a stale resume).  Guarded so the
        # common checkpointing-off path pays no store round-trip.
        if (
            self.config.checkpoint_every > 0
            or record.progress is not None
            or record.resume_text is not None
        ):
            try:
                self.store.delete_checkpoint(key)
            except Exception:
                pass
            self._clear_spool(key)
        self._active.pop(key, None)
        record.done_event.set()

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        info = self.register_worker(f"local-{index}", local=True)
        while True:
            _, _, record = await self._queue.get()
            if record is None:  # shutdown sentinel
                return
            if record.state != QUEUED:  # cancelled while queued
                continue
            self._grant(record, info)
            try:
                # Synchronous on purpose: a quick local-tier read plus
                # a small tensor pack, and keeping it off a helper
                # thread avoids racing the executor's worker fork.
                segment = self._shared_segment_for(record.job)
                call = functools.partial(
                    execute_job,
                    record.job,
                    self.config.cache_dir,
                    self.config.cache_remote,
                    segment,
                    checkpoint_every=self.config.checkpoint_every or None,
                    checkpoint_dir=self._spool_dir,
                    resume_text=record.resume_text,
                    warm_text=record.warm_text,
                )
                result = await loop.run_in_executor(self._executor, call)
            except PreemptedError as error:
                # DELETE /jobs dropped the cancel flag; the search
                # stopped at the next episode boundary with its final
                # snapshot in hand.
                self._finish_preempted(record, info, error.checkpoint)
            except BrokenProcessPool:
                # The pool worker died mid-job (SIGKILL, OOM).  Rebuild
                # the pool, persist whatever the job last spooled, and
                # requeue it to resume from that snapshot.
                self._rebuild_executor()
                self._recover_crashed(record, info)
            except Exception as error:  # job failure — keep serving
                self._finish_record(
                    record, info, None, f"{type(error).__name__}: {error}"
                )
            else:
                self._finish_record(record, info, result, None)

    def _rebuild_executor(self) -> None:
        """Replace a broken process pool (idempotent: several local
        workers can observe the same crash; only the first swaps it)."""
        if self._executor is not None and getattr(self._executor, "_broken", False):
            self._executor.shutdown(wait=False)
            self._executor = ProcessPoolExecutor(max_workers=self.config.workers)

    def _persist_checkpoint(self, key: str, text: str) -> bool:
        """Land one encoded checkpoint in the store's checkpoint table.

        Returns whether the write (and the metric tick) happened; a
        malformed snapshot or a store failure is swallowed — losing a
        checkpoint costs a restart-from-scratch, never the job.
        """
        try:
            meta = json.loads(text)
            self.store.put_checkpoint(
                key,
                text,
                int(meta["format"]),
                int(meta["episode"]),
                float(meta["best_ms"]),
            )
        except Exception:
            return False
        self._m_checkpoints.inc()
        return True

    def _clear_spool(self, key: str) -> None:
        """Remove a job key's spool files (checkpoint, progress, and —
        critically — any cancel flag, which would otherwise preempt the
        key's next run on its first checkpoint)."""
        if self._spool_dir is None:
            return
        for path in spool_paths(self._spool_dir, key):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def _spooled_checkpoint(self, record: JobRecord) -> str | None:
        """The latest checkpoint a local pool job spooled, if any."""
        if self._spool_dir is None:
            return None
        ckpt_path, _, _ = spool_paths(self._spool_dir, job_key(record.job))
        try:
            return ckpt_path.read_text()
        except OSError:
            return None

    def _finish_preempted(
        self, record: JobRecord, info: WorkerInfo | None, ckpt: dict | None
    ) -> None:
        """Terminal path of a locally preempted job: persist the final
        snapshot (resubmitting with ``"resume": true`` continues from
        it, bitwise-identical), release the lease, mark cancelled."""
        key = job_key(record.job)
        episode = None
        if ckpt is not None:
            self._persist_checkpoint(key, ckpt_mod.encode_checkpoint(ckpt))
            episode = ckpt.get("episode")
            record.progress = {
                "episode": ckpt["episode"],
                "best_ms": ckpt["best_ms"],
            }
        if record.lease_id is not None:
            self.store.finish_lease(record.lease_id, LEASE_RELEASED)
        record.finished_s = time.time()
        record.error = (
            f"preempted at episode {episode}"
            if episode is not None
            else "preempted"
        )
        record.state = CANCELLED
        if info is not None:
            busy = record.finished_s - (record.started_s or record.finished_s)
            info.busy_s += busy
            info.last_seen_s = record.finished_s
            self._m_busy.inc(busy, worker=info.id)
        self._m_preempted.inc()
        self._clear_spool(key)
        self._active.pop(key, None)
        record.done_event.set()

    def _recover_crashed(self, record: JobRecord, info: WorkerInfo | None) -> None:
        """Crash recovery for a local pool job whose process died.

        The spool's last checkpoint (written atomically at an episode
        boundary, so never torn) is persisted to the store and attached
        to the record; :meth:`_release_job` then requeues it within the
        usual retry budget, and the retry resumes from the snapshot
        instead of restarting.
        """
        key = job_key(record.job)
        spooled = self._spooled_checkpoint(record)
        if spooled is not None and self._persist_checkpoint(key, spooled):
            record.resume_text = spooled
        if record.lease_id is not None:
            self.store.finish_lease(record.lease_id, LEASE_RELEASED)
        if info is not None:
            info.last_seen_s = time.time()
        self._release_job(record, "worker process died", worker=record.worker)

    # -- fleet lease lifecycle -----------------------------------------------

    def heartbeat(self, lease_id: str, body: dict | None = None) -> dict:
        """Extend a fleet lease's deadline by one TTL.

        Raises :class:`LeaseExpiredError` (HTTP 409) when the lease is
        no longer active — including the deadline having passed before
        the reaper noticed: :meth:`ResultStore.heartbeat_lease` flips
        such a lease to ``expired`` itself, so the 409 is deterministic
        regardless of reaper timing.  The 409 is also how a *revoked*
        lease (``DELETE`` on a fleet-leased job) tells its worker to
        stop.

        An optional body ``{"checkpoints": {job_id: text}}`` carries
        each job's latest encoded anytime checkpoint; every one owned
        by this lease is persisted (the store keeps only the newest
        per job key) and feeds the job's live ``progress`` events.
        """
        lease = self.store.heartbeat_lease(lease_id, self.config.lease_ttl_s)
        if lease is None:
            raise LeaseExpiredError(
                f"lease {lease_id!r} is not active; the job has been "
                "requeued or finished — discard the work and lease afresh"
            )
        info = self.workers_info.get(lease.worker)
        if info is not None:
            info.last_seen_s = time.time()
        checkpoints = body.get("checkpoints") if isinstance(body, dict) else None
        if checkpoints is not None:
            self._absorb_checkpoints(lease, checkpoints)
        return lease.to_dict()

    def _absorb_checkpoints(self, lease, checkpoints) -> None:
        """Persist heartbeat-carried checkpoints for the lease's jobs.

        Only entries attributable to a job this lease currently owns
        land; malformed texts are dropped (losing one snapshot costs
        nothing — the next beat carries a newer one).
        """
        if not isinstance(checkpoints, dict):
            raise ConfigError(
                "'checkpoints' must map job ids to encoded checkpoint text"
            )
        for jid, text in checkpoints.items():
            record = self.records.get(str(jid))
            if (
                record is None
                or record.state != RUNNING
                or record.lease_id != lease.lease_id
                or not isinstance(text, str)
            ):
                continue
            if self._persist_checkpoint(job_key(record.job), text):
                meta = json.loads(text)
                record.progress = {
                    "episode": int(meta["episode"]),
                    "best_ms": float(meta["best_ms"]),
                }

    def finish_remote(self, lease_id: str, body) -> tuple[int, dict]:
        """Apply a fleet worker's ``POST /leases/{id}/result``.

        Returns ``(status, response_body)``.  First submission on an
        active lease lands the payload in the result store exactly as
        local execution would (the wire JSON round-trips floats
        bitwise); a duplicate on a completed lease is idempotent
        (``accepted: false``); submission on an expired/released lease
        raises :class:`LeaseExpiredError` — the job was requeued, and
        the retry will produce identical bits anyway.
        """
        if not isinstance(body, dict):
            raise ConfigError("result submission body must be a JSON object")
        lease = self.store.get_lease(lease_id)
        if lease is None:
            raise LeaseError(f"unknown lease {lease_id!r}")
        if len(lease.job_ids) > 1:
            raise ConfigError(
                f"lease {lease_id!r} covers {len(lease.job_ids)} jobs; "
                "deliver a batch through POST /leases/{id}/results"
            )
        record = self.records.get(lease.job_id)
        if not lease.live:
            if lease.state in (LEASE_COMPLETED, LEASE_FAILED):
                return 200, {
                    "accepted": False,
                    "duplicate": True,
                    "lease": lease.to_dict(),
                    "job_state": record.state if record else None,
                }
            raise LeaseExpiredError(
                f"lease {lease_id!r} is {lease.state}; the job has been "
                "requeued — discard this result"
            )
        if record is None or record.state != RUNNING or record.lease_id != lease_id:
            raise LeaseExpiredError(f"lease {lease_id!r} no longer owns its job")
        info = self.workers_info.get(lease.worker)
        error = body.get("error")
        if error is not None:
            # A worker-*reported* error is a job failure (the job ran
            # and raised), not a worker crash — terminal, no retry.
            self._finish_record(record, info, None, str(error))
            return 200, {"accepted": True, "job": record.to_dict()}
        try:
            kind = body["payload_kind"]
            payload = decode_payload(kind, json.dumps(body["payload"]))
            wall_clock_s = float(body["wall_clock_s"])
            lut_from_cache = bool(body.get("lut_from_cache", False))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed result submission: {exc}") from None
        result = CampaignResult(
            job=record.job,
            payload=payload,
            wall_clock_s=wall_clock_s,
            lut_from_cache=lut_from_cache,
        )
        self._finish_record(record, info, result, None)
        return 200, {"accepted": True, "job": record.to_dict()}

    def finish_remote_batch(self, lease_id: str, body) -> tuple[int, dict]:
        """Apply a fleet worker's ``POST /leases/{id}/results``.

        ``body["results"]`` is a list of :meth:`finish_remote` bodies,
        each carrying the ``job_id`` it answers.  Failure semantics
        are *per job* — one bad entry never poisons its siblings:

        * a worker-reported ``error`` marks that job failed
          (terminal, status ``failed``);
        * a malformed payload rejects that entry (status ``rejected``)
          and the job is requeued as undelivered;
        * a job missing from the body entirely is requeued
          (``requeued`` in the response lists the ids);
        * ``unknown_job``/``duplicate_entry``/``stale`` entries are
          reported and skipped.

        All successful payloads land through ONE
        :meth:`ResultStore.put_many` transaction (bitwise-identical
        rows to per-job :meth:`ResultStore.put`).  The lease goes
        ``released`` when anything was requeued, ``failed`` when
        everything delivered failed, ``completed`` otherwise; a
        duplicate delivery on a closed lease is idempotent and an
        expired/released lease raises :class:`LeaseExpiredError`.
        """
        if not isinstance(body, dict) or not isinstance(body.get("results"), list):
            raise ConfigError(
                "batch result submission needs a JSON body with a "
                "'results' array"
            )
        lease = self.store.get_lease(lease_id)
        if lease is None:
            raise LeaseError(f"unknown lease {lease_id!r}")
        if not lease.live:
            if lease.state in (LEASE_COMPLETED, LEASE_FAILED):
                return 200, {
                    "accepted": False,
                    "duplicate": True,
                    "lease": lease.to_dict(),
                }
            raise LeaseExpiredError(
                f"lease {lease_id!r} is {lease.state}; its jobs have been "
                "requeued — discard these results"
            )
        info = self.workers_info.get(lease.worker)
        job_ids = lease.job_ids
        statuses: list[dict] = []
        entries: dict[str, dict] = {}
        for entry in body["results"]:
            if not isinstance(entry, dict) or "job_id" not in entry:
                # Without a job_id the entry is unattributable — the
                # whole request is malformed, not one job of it.
                raise ConfigError(
                    "each entry of a batch result submission needs the "
                    "'job_id' it answers"
                )
            jid = str(entry["job_id"])
            if jid not in job_ids:
                statuses.append({"job_id": jid, "status": "unknown_job"})
            elif jid in entries:
                statuses.append({"job_id": jid, "status": "duplicate_entry"})
            else:
                entries[jid] = entry
        successes: list[tuple[JobRecord, CampaignResult]] = []
        undelivered: list[JobRecord] = []
        delivered = failures = 0
        for jid in job_ids:
            record = self.records.get(jid)
            owned = (
                record is not None
                and record.state == RUNNING
                and record.lease_id == lease_id
            )
            entry = entries.get(jid)
            if not owned:
                if entry is not None:
                    statuses.append({"job_id": jid, "status": "stale"})
                continue
            if entry is None:
                undelivered.append(record)
                continue
            error = entry.get("error")
            if error is not None:
                # Worker-*reported* job failure: terminal, like the
                # single-result endpoint.
                self._finish_record(
                    record, info, None, str(error),
                    persist=False, finish_lease=False,
                )
                statuses.append({"job_id": jid, "status": "failed"})
                delivered += 1
                failures += 1
                continue
            try:
                kind = entry["payload_kind"]
                payload = decode_payload(kind, json.dumps(entry["payload"]))
                wall_clock_s = float(entry["wall_clock_s"])
                lut_from_cache = bool(entry.get("lut_from_cache", False))
            except (KeyError, TypeError, ValueError) as exc:
                statuses.append(
                    {
                        "job_id": jid,
                        "status": "rejected",
                        "error": f"malformed result: {exc}",
                    }
                )
                undelivered.append(record)
                continue
            successes.append(
                (
                    record,
                    CampaignResult(
                        job=record.job,
                        payload=payload,
                        wall_clock_s=wall_clock_s,
                        lut_from_cache=lut_from_cache,
                    ),
                )
            )
            delivered += 1
        persist_note = None
        if successes:
            try:
                _, flush_s = self.store.put_many(
                    [
                        (record.job, result.payload, result.wall_clock_s)
                        for record, result in successes
                    ]
                )
            except Exception as exc:
                # Served from memory, like the single-result path.
                persist_note = (
                    f"result not persisted — {type(exc).__name__}: {exc}"
                )
            else:
                self._h_flush.observe(flush_s)
        for record, result in successes:
            self._finish_record(
                record, info, result, None, persist=False, finish_lease=False
            )
            if persist_note is not None:
                record.error = persist_note
            statuses.append({"job_id": record.id, "status": "done"})
        requeued = []
        for record in undelivered:
            self._release_job(
                record, "result missing from batch delivery", worker=lease.worker
            )
            requeued.append(record.id)
        if requeued:
            terminal = LEASE_RELEASED
        elif delivered and failures == delivered:
            terminal = LEASE_FAILED
        else:
            terminal = LEASE_COMPLETED
        lease = self.store.finish_lease(lease_id, terminal) or lease
        return 200, {
            "accepted": True,
            "lease": lease.to_dict(),
            "results": statuses,
            "requeued": requeued,
        }

    def _release_job(
        self, record: JobRecord, reason: str, worker: str | None = None
    ) -> None:
        """Detach a running record from its lease and requeue it.

        Past ``max_lease_retries`` grants the job goes terminal
        ``failed`` instead (a job that reliably kills its workers must
        not crash-loop the fleet); during shutdown it is cancelled —
        there is nobody left to run it.
        """
        record.lease_id = None
        record.worker = None
        if self._closing:
            record.state = CANCELLED
            record.error = f"{reason} during shutdown"
            record.finished_s = time.time()
            self._active.pop(job_key(record.job), None)
            record.done_event.set()
        elif record.attempts >= self.config.max_lease_retries:
            record.state = FAILED
            record.error = (
                f"{reason} after {record.attempts} attempt(s); "
                "retry budget exhausted"
            )
            record.finished_s = time.time()
            self._active.pop(job_key(record.job), None)
            self._m_failed.inc(worker=worker or "unknown")
            record.done_event.set()
        else:
            # Crash recovery: a requeued job resumes from its latest
            # persisted checkpoint (spooled locally or carried by a
            # fleet heartbeat) instead of restarting from episode 0.
            stored_ckpt = self.store.get_checkpoint(job_key(record.job))
            if stored_ckpt is not None:
                record.resume_text = stored_ckpt.text
            record.state = QUEUED
            record.started_s = None
            self._pending += 1
            self._queue.put_nowait((record.priority, next(self._order), record))
            self._m_requeued.inc()

    def _requeue_expired(self, lease) -> None:
        """React to one lease the reaper just expired.

        Every job of the lease (one, or a whole batch) is requeued at
        its original priority with the attempt budget spent — see
        :meth:`_release_job` for the budget/shutdown terminal paths.
        """
        info = self.workers_info.get(lease.worker)
        if info is not None:
            info.expired += 1
        self._m_leases_expired.inc(worker=lease.worker)
        for jid in lease.job_ids:
            record = self.records.get(jid)
            if (
                record is None
                or record.state != RUNNING
                or record.lease_id != lease.lease_id
            ):
                continue  # already finished under this or another lease
            self._release_job(record, "lease expired", worker=lease.worker)

    def _flush_store(self) -> None:
        """Flush the store's group-commit buffer, feeding the
        flush-latency histogram (no-op when the buffer is empty)."""
        if self.store.pending:
            rows, elapsed = self.store.flush_timed()
            if rows:
                self._h_flush.observe(elapsed)

    async def _reap_leases(self) -> None:
        """Periodically expire overdue leases and requeue their jobs.

        Also the group-commit heartbeat: each sweep flushes buffered
        result rows, bounding how long an acknowledged result can sit
        unpersisted at ``lease_check_s``.
        """
        while True:
            await asyncio.sleep(self.config.lease_check_s)
            for lease in self.store.expire_due_leases():
                self._requeue_expired(lease)
            self._flush_store()
            # Checkpoint retention: drop snapshots nothing refreshed
            # for checkpoint_ttl_s (their jobs went terminal on some
            # path that could not delete them, or were never resumed).
            self.store.gc_checkpoints(self.config.checkpoint_ttl_s)

    def _shared_segment_for(self, job: CampaignJob) -> str | None:
        """Name of the shared pricing-table segment for a job's LUT key,
        exporting it from the local cache tier on first use.

        Only locally cached LUTs are exported (a miss means the worker
        is about to profile — its write-through makes the *next* job
        with this key shareable), and export failures degrade to
        ``None``: the worker then builds a private engine, bitwise the
        same prices.
        """
        if self._lut_tier is None or self._executor is None:
            return None
        key = LutKey.from_job(job)
        shared = self._shared_tables.get(key)
        if shared is not None:
            return shared.name
        try:
            text = self._lut_tier.get(key)
            if text is None:
                return None
            lut = validate_entry(text, key)
            shared = SharedCostTables.create(lut.engine())
        except (LutCacheError, OSError, ValueError):
            return None
        self._shared_tables[key] = shared
        return shared.name

    # -- progress streaming --------------------------------------------------

    def _job_progress(self, record: JobRecord) -> dict | None:
        """Latest in-flight ``{"episode", "best_ms"}`` of a running job:
        the newest fleet-heartbeat-carried value, or the local pool's
        spool progress sidecar (a tiny atomic JSON file)."""
        if record.progress is not None:
            return record.progress
        if self._spool_dir is None or record.state != RUNNING:
            return None
        _, progress_path, _ = spool_paths(self._spool_dir, job_key(record.job))
        try:
            data = json.loads(progress_path.read_text())
            return {
                "episode": int(data["episode"]),
                "best_ms": float(data["best_ms"]),
            }
        except (OSError, ValueError, TypeError, KeyError):
            return None

    async def progress_events(self, record: JobRecord):
        """Async iterator of progress events for one job.

        Yields ``status`` heartbeats (every ``heartbeat_s`` while the
        job is queued/running) interleaved with live ``progress``
        events whenever an in-loop anytime checkpoint advances the
        job's episode counter, then — once finished — the best-so-far
        ``checkpoint`` sequence of :func:`checkpoints_of` and one
        terminal ``done``/``failed``/``cancelled`` event.
        """
        yield "status", {"id": record.id, "state": record.state}
        last_episode = -1
        while not record.finished:
            progress = self._job_progress(record)
            if progress is not None and progress["episode"] > last_episode:
                last_episode = progress["episode"]
                yield "progress", {"id": record.id, **progress}
            try:
                await asyncio.wait_for(
                    record.done_event.wait(), timeout=self.config.heartbeat_s
                )
            except asyncio.TimeoutError:
                yield "status", {"id": record.id, "state": record.state}
        if record.state == DONE:
            assert record.result is not None
            for point in checkpoints_of(record.result.payload):
                yield "checkpoint", point
            yield (
                "done",
                {
                    "id": record.id,
                    "best_ms": best_ms_of(record.result.payload),
                    "wall_clock_s": record.result.wall_clock_s,
                    "from_store": record.from_store,
                },
            )
        else:
            yield record.state, {"id": record.id, "error": record.error}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the HTTP server and spawn the worker pool."""
        # A crashed predecessor sharing this store may have left
        # active lease rows behind; nobody will ever heartbeat them.
        self.store.release_active_leases()
        if self.config.workers > 0:
            self._executor = ProcessPoolExecutor(max_workers=self.config.workers)
            if self.config.checkpoint_every > 0:
                self._spool_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
            self._workers = [
                asyncio.create_task(self._worker(index))
                for index in range(self.config.workers)
            ]
        self._reaper = asyncio.create_task(self._reap_leases())
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def _spawn_shutdown(self) -> asyncio.Task:
        """Start :meth:`shutdown` as a task the service itself keeps
        alive.

        The event loop holds tasks weakly — a ``create_task`` result
        nobody references can be garbage-collected mid-drain, silently
        abandoning the shutdown.  Idempotent: a second trigger (signal
        plus ``POST /shutdown``, say) reuses the in-flight task.
        """
        if self._shutdown_task is None or self._shutdown_task.done():
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )
        return self._shutdown_task

    async def shutdown(self) -> None:
        """Graceful shutdown: refuse intake, cancel queued jobs, drain
        outstanding fleet leases, wait for in-flight local jobs to
        finish, then release every resource.

        The HTTP server stays open through the lease drain — fleet
        workers deliver results over *new* connections, so closing the
        listener first would discard work that is seconds from done.
        """
        if self._closing:
            await self._closed.wait()
            return
        self._closing = True
        for record in list(self.records.values()):
            if record.state == QUEUED:
                self._mark_cancelled(record)
        # Drain fleet leases: give outstanding remote jobs up to
        # drain_timeout_s to POST their results (expiries during the
        # drain cancel their jobs via _requeue_expired's closing path).
        deadline = time.monotonic() + self.config.drain_timeout_s

        def _remote_leases():
            return [
                lease
                for lease in self.store.active_leases()
                if not self.workers_info.get(
                    lease.worker, WorkerInfo(id="?", name="?")
                ).local
            ]

        while _remote_leases() and time.monotonic() < deadline:
            for lease in self.store.expire_due_leases():
                self._requeue_expired(lease)
            await asyncio.sleep(0.05)
        # Past the drain window: release what is left and cancel the
        # jobs (requeueing would be a lie — workers lease nothing once
        # _closing is set).
        for lease in _remote_leases():
            self.store.finish_lease(lease.lease_id, LEASE_RELEASED)
            for jid in lease.job_ids:
                record = self.records.get(jid)
                if (
                    record is not None
                    and record.state == RUNNING
                    and record.lease_id == lease.lease_id
                ):
                    record.state = CANCELLED
                    record.error = "lease released at shutdown"
                    record.finished_s = time.time()
                    self._active.pop(job_key(record.job), None)
                    record.done_event.set()
        for _ in self._workers:
            # Sentinels sort behind every real priority, so a worker
            # only exits once the queue holds nothing runnable.
            self._queue.put_nowait((float("inf"), next(self._order), None))
        if self._workers:
            await asyncio.gather(*self._workers)
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None
        # The worker pool is drained and gone: release every shared
        # pricing-table segment (close + unlink) so a service lifetime
        # leaves /dev/shm exactly as it found it.
        for shared in self._shared_tables.values():
            shared.close()
            shared.unlink()
        self._shared_tables.clear()
        # Sever lingering client connections (idle keep-alives, open
        # progress streams — every job is terminal by now).  Without
        # this, wait_closed() on Python >= 3.12.1 blocks until every
        # connection handler returns, so one idle client would hang
        # shutdown forever.
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        # Lease-table hygiene: nothing is running any more, so any row
        # still `active` (e.g. local leases when a worker task was
        # killed mid-await) must not look live to the next process
        # sharing this store file.
        self.store.release_active_leases()
        self._flush_store()
        self.store.close()
        self._closed.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` completes (the ``repro serve`` body)."""
        if self._server is None:
            await self.start()
        await self._closed.wait()

    async def wait_closed(self) -> None:
        """Block until a (possibly remote) shutdown has fully completed."""
        await self._closed.wait()

    # -- HTTP layer ----------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        served = 0
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader, self._body_limit),
                        timeout=REQUEST_READ_TIMEOUT_S,
                    )
                except asyncio.TimeoutError:
                    return  # slow/idle client — drop without a response
                if request is None:
                    return
                method, path, query, headers, body = request
                served += 1
                # HTTP/1.1 default is keep-alive; honour an explicit
                # close, bound requests per connection, and stop
                # reusing once shutdown starts draining.
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and served < MAX_REQUESTS_PER_CONNECTION
                    and not self._closing
                )
                writer.keep_alive = keep_alive  # read by _respond*
                reusable = await self._route(
                    writer, method, path, query, headers, body
                )
                if not (keep_alive and reusable):
                    return
        except ConfigError as error:
            # Malformed wire requests (bad request line, oversized
            # headers/body, non-JSON payload) get a 400, not a drop —
            # and never a reused connection (framing is unknown).
            # The client may already be gone — that is not an error.
            try:
                writer.keep_alive = False
                await _respond(writer, 400, {"error": str(error)})
            except (ConnectionError, OSError):
                pass
        except ConnectionError:
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, writer, method: str, path: str, query, headers, body
    ) -> bool:
        """Dispatch one request; returns whether the connection may be
        reused for another (False after SSE streams and shutdown)."""
        parts = [p for p in path.split("/") if p]
        # Observability first: /healthz and /metrics must answer even
        # when the queue is full, a tenant is rate-limited, or the
        # service is draining — a saturated service that cannot be
        # scraped cannot be operated.  Neither endpoint touches any
        # admission guard below.
        if method == "GET" and parts == ["healthz"]:
            await _respond(writer, 200, self.stats())
            return True
        if method == "GET" and parts == ["metrics"]:
            await _respond_text(
                writer,
                200,
                self.metrics.render(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return True
        try:
            if method == "GET" and not parts:
                await _respond(writer, 200, self._index())
            elif method == "POST" and parts == ["jobs"]:
                await self._post_jobs(writer, headers, body)
            elif method == "GET" and parts == ["jobs"]:
                records = [r.to_dict() for r in self.records.values()]
                await _respond(writer, 200, {"jobs": records})
            elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
                record = self.records.get(parts[1])
                if record is None:
                    await _respond(writer, 404, {"error": f"no job {parts[1]!r}"})
                else:
                    await _respond(writer, 200, record.to_dict(include_payload=True))
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "progress"
            ):
                record = self.records.get(parts[1])
                if record is None:
                    await _respond(writer, 404, {"error": f"no job {parts[1]!r}"})
                else:
                    await self._stream_progress(writer, record)
                    return False  # the SSE stream consumed the connection
            elif method == "DELETE" and len(parts) == 2 and parts[0] == "jobs":
                record = self.records.get(parts[1])
                if record is None:
                    await _respond(writer, 404, {"error": f"no job {parts[1]!r}"})
                elif self.cancel(parts[1]):
                    await _respond(writer, 200, record.to_dict())
                elif record.state == RUNNING and self.preempt(record):
                    body = record.to_dict()
                    body["preempting"] = True
                    await _respond(writer, 202, body)
                else:
                    await _respond(
                        writer,
                        409,
                        {
                            "error": f"job {parts[1]} is {record.state}; "
                            "only queued jobs can be cancelled"
                        },
                    )
            elif method == "GET" and parts == ["results"]:
                await self._get_results(writer, query)
            elif method == "GET" and parts == ["luts"]:
                await self._list_luts(writer)
            elif method in ("GET", "PUT") and len(parts) == 3 and parts[0] == "luts":
                if method == "GET":
                    await self._get_lut(writer, parts[1], parts[2], query)
                else:
                    await self._put_lut(writer, parts[1], parts[2], query, body)
            elif method == "POST" and parts == ["workers"]:
                name = (body or {}).get("name") if isinstance(body, dict) else None
                info = self.register_worker(name)
                await _respond(
                    writer,
                    201,
                    {
                        "worker": info.to_dict(),
                        "lease_ttl_s": self.config.lease_ttl_s,
                        "heartbeat_s": self.config.lease_ttl_s / 3.0,
                    },
                )
            elif method == "GET" and parts == ["workers"]:
                await _respond(
                    writer,
                    200,
                    {
                        "workers": [
                            info.to_dict()
                            for info in self.workers_info.values()
                        ],
                        "leases": [
                            lease.to_dict()
                            for lease in self.store.active_leases()
                        ],
                    },
                )
            elif method == "POST" and parts == ["leases"]:
                if not isinstance(body, dict) or "worker" not in body:
                    raise ConfigError(
                        "POST /leases needs a JSON body with a 'worker' id"
                    )
                raw_max = body.get("max_jobs", 1)
                if isinstance(raw_max, bool) or not isinstance(raw_max, int):
                    raise ConfigError("max_jobs must be an integer >= 1")
                if raw_max < 1:
                    raise ConfigError(f"max_jobs must be >= 1, got {raw_max}")
                max_jobs = min(raw_max, self.config.lease_batch_limit)
                records = self.lease_batch(str(body["worker"]), max_jobs)
                if not records:
                    await _respond_empty(writer, 204)
                else:
                    lease = self.store.get_lease(records[0].lease_id)
                    grant = {
                        "lease": lease.to_dict(),
                        # `job`: the first of the batch, kept for
                        # single-lease (max_jobs=1) compatibility.
                        "job": records[0].to_dict(),
                        "jobs": [r.to_dict() for r in records],
                        "lease_ttl_s": self.config.lease_ttl_s,
                    }
                    if self.config.checkpoint_every > 0:
                        grant["checkpoint_every"] = self.config.checkpoint_every
                    resume = {
                        r.id: r.resume_text
                        for r in records
                        if r.resume_text is not None
                    }
                    if resume:
                        grant["resume"] = resume
                    warm = {
                        r.id: r.warm_text
                        for r in records
                        if r.warm_text is not None
                    }
                    if warm:
                        grant["warm"] = warm
                    await _respond(writer, 200, grant)
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "leases"
                and parts[2] == "heartbeat"
            ):
                await _respond(
                    writer, 200, {"lease": self.heartbeat(parts[1], body)}
                )
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "leases"
                and parts[2] == "result"
            ):
                self._observe_result_bytes(headers)
                status, payload = self.finish_remote(parts[1], body)
                await _respond(writer, status, payload)
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "leases"
                and parts[2] == "results"
            ):
                self._observe_result_bytes(headers)
                status, payload = self.finish_remote_batch(parts[1], body)
                await _respond(writer, status, payload)
            elif method == "POST" and parts == ["shutdown"]:
                await _respond(writer, 202, {"shutting_down": True})
                self._spawn_shutdown()
                return False  # the service is draining — no more requests
            else:
                await _respond(writer, 404, {"error": f"no route {method} {path}"})
        except QueueFullError as error:
            # QuotaExceededError rides the same arm: it subclasses
            # QueueFullError and carries its own Retry-After hint.
            retry_after = max(1, math.ceil(getattr(error, "retry_after_s", 1.0)))
            await _respond(
                writer,
                429,
                {"error": str(error)},
                headers={"Retry-After": str(retry_after)},
            )
        except LeaseError as error:
            await _respond(writer, 409, {"error": str(error)})
        except (ConfigError, LutCacheError) as error:
            # LutCacheError here is a *client* problem (bad shard
            # segment, entry mismatching its key) — the local tier
            # itself is strict and healthy.
            await _respond(writer, 400, {"error": str(error)})
        except ServiceError as error:
            await _respond(writer, 503, {"error": str(error)})
        except (ValueError, TypeError) as error:
            # Bad field values that slip past explicit validation
            # (e.g. an unknown Mode, a non-integer episodes/seed) must
            # still answer 400, not drop the connection.
            await _respond(writer, 400, {"error": str(error)})
        return True

    def _body_limit(self, method: str, path: str) -> int:
        """Maximum request body accepted on this route.

        Batch result delivery (``POST /leases/{id}/results``) carries
        up to ``lease_batch_limit`` encoded payloads in one body, each
        of which must individually fit the single-result cap — so its
        allowance scales with the batch limit instead of rejecting (and
        thereby discarding) a full batch of executed results at 1 MiB.
        Heartbeats get the same scaled allowance: their checkpoint
        carriage ships up to a batch's worth of Q-table snapshots.
        """
        parts = [p for p in path.split("/") if p]
        if (
            method == "POST"
            and len(parts) == 3
            and parts[0] == "leases"
            and parts[2] in ("results", "heartbeat")
        ):
            return MAX_BODY_BYTES * max(1, self.config.lease_batch_limit)
        return MAX_BODY_BYTES

    def _observe_result_bytes(self, headers: dict) -> None:
        """Feed a result submission's body size to its histogram."""
        try:
            size = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return
        self._h_result_bytes.observe(float(size))

    def _index(self) -> dict:
        return {
            "service": "qs-dnn campaign service",
            "version": __version__,
            "endpoints": [
                "GET /healthz",
                "GET /metrics",
                "POST /jobs",
                "GET /jobs",
                "GET /jobs/{id}",
                "GET /jobs/{id}/progress",
                "DELETE /jobs/{id}",
                "GET /results",
                "GET /luts",
                "GET /luts/{platform}/{network}",
                "PUT /luts/{platform}/{network}",
                "POST /workers",
                "GET /workers",
                "POST /leases",
                "POST /leases/{id}/heartbeat",
                "POST /leases/{id}/result",
                "POST /leases/{id}/results",
                "POST /shutdown",
            ],
        }

    # -- LUT shard serving ---------------------------------------------------

    def _lut_key(self, platform: str, network: str, query: dict) -> LutKey:
        """Build (and validate) the shard key a ``/luts`` request names.

        ``mode`` is required; ``seed``/``repeats`` default to the job
        defaults and ``version`` to this server's package version, so
        a hand-typed curl still addresses the common entry.
        """
        mode = query.get("mode")
        if mode is None:
            raise ConfigError("the 'mode' query parameter is required")
        try:
            seed = int(query.get("seed", "0"))
            repeats = int(query.get("repeats", "50"))
        except ValueError as error:
            raise ConfigError(f"bad LUT key parameter: {error}") from None
        return LutKey(
            platform=platform,
            network=network,
            mode=mode,
            seed=seed,
            repeats=repeats,
            version=query.get("version", __version__),
        )

    async def _list_luts(self, writer) -> None:
        # Tier calls walk the shard tree on disk — run them on the
        # default thread pool so slow disks cannot stall the event
        # loop (and with it every SSE heartbeat in flight).
        loop = asyncio.get_running_loop()
        keys = (
            await loop.run_in_executor(None, self._lut_tier.keys)
            if self._lut_tier is not None
            else []
        )
        await _respond(
            writer,
            200,
            {
                "enabled": self._lut_tier is not None,
                "count": len(keys),
                "luts": [key.to_dict() for key in keys],
            },
        )

    async def _get_lut(self, writer, platform: str, network: str, query) -> None:
        key = self._lut_key(platform, network, query)
        text = (
            await asyncio.get_running_loop().run_in_executor(
                None, self._lut_tier.get, key
            )
            if self._lut_tier is not None
            else None
        )
        if text is None:
            await _respond(
                writer,
                404,
                {"error": f"no cached LUT for {key.shard}/{key.filename}"},
            )
            return
        # Entries are validated on write; served verbatim from disk
        # (the loads/dumps hop is float-exact either way).
        await _respond(writer, 200, json.loads(text))

    async def _put_lut(self, writer, platform: str, network: str, query, body) -> None:
        if self._lut_tier is None:
            raise ServiceError(
                "this instance has no --cache-dir and does not accept "
                "LUT shards"
            )
        if not isinstance(body, dict):
            raise ConfigError("PUT /luts body must be a LUT JSON object")
        key = self._lut_key(platform, network, query)

        def _validate_and_store() -> bool:
            # Validate before publishing: a mislabeled or corrupt entry
            # must never enter the fleet's cache.  Storing the
            # canonical to_json() text keeps shard bytes identical no
            # matter which client pushed them (floats are exact
            # through the re-parse).  Runs off-loop: the re-parse plus
            # the shard index rebuild are the costliest handler work.
            lut = validate_entry(json.dumps(body), key)
            existed = self._lut_tier.path_for(key).exists()
            self._lut_tier.put(key, lut.to_json())
            return existed

        existed = await asyncio.get_running_loop().run_in_executor(
            None, _validate_and_store
        )
        await _respond(
            writer,
            200 if existed else 201,
            {"stored": True, "existed": existed, "key": key.to_dict()},
        )

    async def _post_jobs(self, writer, headers, body) -> None:
        tenant = (headers or {}).get("x-tenant", DEFAULT_TENANT)
        if not _valid_name(tenant):
            raise ConfigError(f"tenant {tenant!r} must be 1-64 chars of [A-Za-z0-9._-]")
        # Rate limit before parsing: a tenant hammering the endpoint
        # with garbage must not get free validation cycles.
        if self.config.rate_limit_per_s > 0:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.config.rate_limit_per_s, self.config.rate_burst
                )
            wait = bucket.take()
            if wait > 0:
                self._m_rejected.inc(reason="rate_limit")
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded "
                    f"{self.config.rate_limit_per_s}/s on POST /jobs",
                    retry_after_s=wait,
                )
        # `"resume": true` rides any submission form: each accepted job
        # is attached its stored checkpoint (if one exists) and the
        # grant continues the interrupted search.  Popped before
        # jobs_from_body — it is submission policy, not a job field.
        resume = False
        if isinstance(body, dict) and "resume" in body:
            body = dict(body)
            resume = body.pop("resume")
            if not isinstance(resume, bool):
                raise ConfigError(f"resume must be a boolean, got {resume!r}")
        jobs, priority = jobs_from_body(body)
        # All-or-nothing admission: a partially accepted grid would
        # leave the client guessing which cells ran.  One store lookup
        # per job serves both the slot count and the submit below
        # (there is no await between here and the submits, so the
        # counts cannot go stale).
        lookups = [(job, self.store.get(job)) for job in jobs]
        free = self.config.queue_limit - self._pending
        fresh = sum(
            1
            for job, hit in lookups
            if job_key(job) not in self._active and hit is None
        )
        if self.config.quota_jobs > 0:
            active = sum(
                1
                for record in self._active.values()
                if record.tenant == tenant
            )
            if active + fresh > self.config.quota_jobs:
                self._m_rejected.inc(reason="quota")
                raise QuotaExceededError(
                    f"tenant {tenant!r} quota is {self.config.quota_jobs} "
                    f"active job(s); {active} active, submission adds "
                    f"{fresh}",
                    retry_after_s=1.0,
                )
        if fresh > free:
            self._m_rejected.inc(reason="queue_full")
            raise QueueFullError(
                f"job queue is full: submission needs {fresh} slot(s), "
                f"{free} free (limit {self.config.queue_limit})"
            )
        records = [
            self.submit(
                job, priority=priority, stored=hit, tenant=tenant, resume=resume
            )
            for job, hit in lookups
        ]
        await _respond(writer, 202, {"jobs": [record.to_dict() for record in records]})

    async def _get_results(self, writer, query) -> None:
        unknown = set(query) - {"network", "platform", "mode", "kind", "seed"}
        if unknown:
            # A typo'd filter must not silently return the whole
            # corpus as if it matched (same contract as POST /jobs).
            raise ConfigError(f"unknown result filter(s): {sorted(unknown)}")
        seed = query.get("seed")
        rows = self.store.query(
            network=query.get("network"),
            platform=query.get("platform"),
            mode=query.get("mode"),
            kind=query.get("kind"),
            seed=int(seed) if seed is not None else None,
        )
        results = [
            {
                "key": job_key(row.job),
                "job": asdict(row.job),
                "best_ms": row.best_ms,
                "wall_clock_s": row.wall_clock_s,
                "created_s": row.created_s,
            }
            for row in rows
        ]
        await _respond(writer, 200, {"count": len(results), "results": results})

    async def _stream_progress(self, writer, record: JobRecord) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        async for event, data in self.progress_events(record):
            writer.write(f"event: {event}\ndata: {json.dumps(data)}\n\n".encode())
            await writer.drain()


# -- wire helpers ------------------------------------------------------------

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


async def _read_request(reader: asyncio.StreamReader, body_limit=None):
    """Parse one HTTP/1.1 request:
    ``(method, path, query, headers, json_body)``.

    ``body_limit`` maps ``(method, path)`` to the maximum accepted
    Content-Length for that route (default: ``MAX_BODY_BYTES`` for
    everything).  Returns None on an empty connection (client
    connected and left).  Raises :class:`ConfigError` for malformed
    requests so the router answers 400 instead of dropping the
    connection.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConfigError("truncated HTTP request") from None
    except asyncio.LimitOverrunError:
        raise ConfigError("request headers too large") from None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _ = lines[0].split(" ", 2)
    except ValueError:
        raise ConfigError(f"malformed request line {lines[0]!r}") from None
    method = method.upper()
    split = urlsplit(target)
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ConfigError("malformed Content-Length header") from None
    limit = body_limit(method, split.path) if body_limit else MAX_BODY_BYTES
    if length > limit:
        raise ConfigError(
            f"request body of {length} bytes exceeds the "
            f"{limit}-byte limit for {method} {split.path}"
        )
    raw = await reader.readexactly(length) if length else b""
    body = None
    if raw:
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ConfigError(f"request body is not JSON: {error}") from None
    query = {key: values[-1] for key, values in parse_qs(split.query).items()}
    return method, split.path, query, headers, body


def _connection_header(writer) -> str:
    """The Connection header this response must carry.

    ``_handle_client`` stamps its keep-alive decision on the writer
    before routing (responses are Content-Length framed, so a reused
    connection stays in sync); anything without the stamp — early
    400s, tests driving ``_respond`` directly — closes.
    """
    return (
        "Connection: keep-alive"
        if getattr(writer, "keep_alive", False)
        else "Connection: close"
    )


async def _respond(
    writer, status: int, payload: dict, headers: dict | None = None
) -> None:
    """Write one JSON response and flush."""
    body = json.dumps(payload, indent=2).encode() + b"\n"
    text = _STATUS_TEXT.get(status, "OK")
    head = [
        f"HTTP/1.1 {status} {text}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        _connection_header(writer),
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    await writer.drain()


async def _respond_text(
    writer, status: int, text: str, content_type: str = "text/plain"
) -> None:
    """Write one plain-text response (the ``/metrics`` exposition)."""
    body = text.encode()
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        _connection_header(writer),
    ]
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    await writer.drain()


async def _respond_empty(writer, status: int) -> None:
    """Write one body-less response (204 lease polls)."""
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
        "Content-Length: 0",
        _connection_header(writer),
    ]
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
    await writer.drain()


def run_service(config: ServiceConfig | None = None) -> int:
    """Run a service until SIGINT/SIGTERM or ``POST /shutdown``.

    The blocking entry point behind ``repro serve``: installs signal
    handlers for graceful shutdown and prints the bound address (parse
    the ``serving on`` line to discover a ``--port 0`` choice).
    """
    import signal

    service = CampaignService(config)

    async def _main() -> int:
        await service.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, service._spawn_shutdown)
        print(
            f"serving on http://{service.config.host}:{service.port} "
            f"({service.config.workers} worker(s), "
            f"queue limit {service.config.queue_limit}, "
            f"store {service.store.path})",
            flush=True,
        )
        await service.serve_forever()
        print("service stopped", flush=True)
        return 0

    return asyncio.run(_main())
