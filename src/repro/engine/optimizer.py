"""The inference engine optimizer facade (paper §III-A, Fig. 2).

Ties the two phases together for a user: profile a network once, hand
the LUT to any search, then *deploy* the resulting schedule — i.e.
re-measure it end-to-end on the (simulated) board and emit a report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.registry import DesignSpace, Mode, design_space
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.lut import LatencyTable
from repro.engine.profiler import Profiler, ProfilingReport
from repro.engine.schedule import NetworkSchedule
from repro.hw.platform import Platform
from repro.nn.graph import NetworkGraph
from repro.utils.rng import RngStream
from repro.utils.tables import AsciiTable
from repro.utils.units import format_ms


@dataclass
class DeploymentReport:
    """What deploying a schedule on the board measured."""

    schedule: NetworkSchedule
    result: ExecutionResult
    libraries: list[str]

    @property
    def total_ms(self) -> float:
        """Measured end-to-end latency."""
        return self.result.total_ms

    def render(self) -> str:
        """Human-readable deployment summary."""
        table = AsciiTable(
            ["metric", "value"],
            title=f"Deployment of {self.schedule.graph_name}",
        )
        table.add_row(["total latency", format_ms(self.result.total_ms)])
        table.add_row(["layer compute", format_ms(self.result.compute_ms)])
        table.add_row(["compatibility penalties", format_ms(self.result.overhead_ms)])
        table.add_row(["libraries used", ", ".join(self.libraries)])
        hot = ", ".join(
            f"{name} ({format_ms(ms)})" for name, ms in self.result.slowest_layers(3)
        )
        table.add_row(["hottest layers", hot])
        return table.render()


class InferenceEngineOptimizer:
    """Profile networks and deploy schedules on one platform mode."""

    def __init__(
        self,
        graph: NetworkGraph,
        platform: Platform,
        mode: Mode = Mode.CPU,
        seed: int = 0,
        repeats: int = 50,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.space = design_space(mode, platform)
        self.seed = seed
        self.repeats = repeats
        self._executor = Executor(graph, self.space, platform)
        self._rng = RngStream(seed, "optimizer", graph.name, str(mode))
        self._lut: LatencyTable | None = None
        self._report: ProfilingReport | None = None

    # -- phase 1 -----------------------------------------------------------------

    def profile(self) -> LatencyTable:
        """Run (or reuse) the inference phase; returns the LUT."""
        if self._lut is None:
            profiler = Profiler(
                self.graph, self.space, self.platform,
                seed=self.seed, repeats=self.repeats,
            )
            self._lut, self._report = profiler.profile()
        return self._lut

    @property
    def profiling_report(self) -> ProfilingReport:
        """Cost accounting of the last profiling run."""
        if self._report is None:
            self.profile()
        return self._report

    # -- deployment ----------------------------------------------------------------

    def deploy(self, schedule: NetworkSchedule, repeats: int | None = None) -> DeploymentReport:
        """Measure a schedule end-to-end on the board.

        This is the ground-truth evaluation: it does *not* use the LUT,
        so it validates that LUT-driven search results hold on device.
        """
        rng = self._rng.child("deploy", tuple(sorted(schedule.assignments.items())))
        result = self._executor.run(
            schedule, rng=rng, repeats=self.repeats if repeats is None else repeats
        )
        return DeploymentReport(
            schedule=schedule,
            result=result,
            libraries=schedule.libraries_used(self.space),
        )
