"""The look-up table built by the inference phase (paper §V-A).

"After all inference measurements have been retrieved, a look-up table
is built."  The LUT is the *entire* interface between the board and the
search: per-layer per-primitive execution times, per-edge conversion and
transfer costs, and just enough primitive metadata (library, processor,
layout) to price a penalty between any primitive pair.

The LUT is a plain serializable value object — it can be saved as JSON
next to a deployment, and the search phase (paper: "carried out in a
standard Intel CPU") needs nothing else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.errors import LookupError_, ProfilingError, ScheduleError
from repro.hw.processor import ProcessorKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.pricing import CostEngine


@dataclass(frozen=True)
class PrimitiveMeta:
    """The slice of Table I the LUT keeps per primitive uid."""

    uid: str
    library: str
    algorithm: str
    impl: str
    blas: str | None
    processor: ProcessorKind
    layout: Layout

    @classmethod
    def from_primitive(cls, prim: Primitive) -> "PrimitiveMeta":
        """Extract the metadata of one design-space primitive."""
        return cls(
            uid=prim.uid,
            library=prim.library,
            algorithm=prim.algorithm,
            impl=prim.impl,
            blas=prim.blas,
            processor=prim.processor,
            layout=prim.layout,
        )


@dataclass
class LatencyTable:
    """Measurements of one network on one platform mode.

    Attributes
    ----------
    layers:
        Schedulable layer names in topological order.
    candidates:
        Per layer, the uids that can execute it (stable order).
    times_ms:
        ``times_ms[layer][uid]`` = measured mean execution time.
    edges:
        ``(producer, consumer)`` pairs (compatibility sites, Fig. 3).
    conversion_ms:
        Per edge, per executing processor: cost of one layout conversion
        of the producer's output (0.0 when layouts are equivalent).
    transfer_ms:
        Per edge: cost of one CPU<->GPU copy of the producer's output
        (absent on CPU-only platforms).
    meta:
        Per uid: the Table I parameters needed to price penalties.
    """

    graph_name: str
    mode: str
    platform_name: str
    layers: list[str]
    candidates: dict[str, list[str]]
    times_ms: dict[str, dict[str, float]]
    edges: list[tuple[str, str]]
    conversion_ms: dict[tuple[str, str], dict[ProcessorKind, float]]
    transfer_ms: dict[tuple[str, str], float]
    meta: dict[str, PrimitiveMeta]
    profiling_inferences: int = 0
    layer_depth: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.layer_depth:
            self.layer_depth = {name: i for i, name in enumerate(self.layers)}
        self._indexed: IndexedLUT | None = None

    # -- lookups ------------------------------------------------------------

    def layer_time(self, layer: str, uid: str) -> float:
        """Measured time of one (layer, primitive) pair."""
        try:
            return self.times_ms[layer][uid]
        except KeyError:
            raise LookupError_(
                f"LUT for {self.graph_name} has no measurement for "
                f"layer {layer!r} with primitive {uid!r}"
            ) from None

    def best_uid(self, layer: str, within: set[str] | None = None) -> str:
        """Fastest uid for a layer, optionally restricted to some uids."""
        entries = self.times_ms.get(layer)
        if not entries:
            raise LookupError_(f"no measurements for layer {layer!r}")
        pool = {u: t for u, t in entries.items() if within is None or u in within}
        if not pool:
            raise LookupError_(
                f"no measurements for layer {layer!r} within {sorted(within or ())}"
            )
        return min(pool, key=pool.get)

    def penalty(self, edge: tuple[str, str], producer_uid: str,
                consumer_uid: str) -> float:
        """Compatibility penalty on ``edge`` for a primitive pair."""
        prod = self.meta[producer_uid]
        cons = self.meta[consumer_uid]
        penalty = 0.0
        if prod.processor is not cons.processor:
            try:
                penalty += self.transfer_ms[edge]
            except KeyError:
                raise LookupError_(
                    f"no transfer measurement for edge {edge!r}"
                ) from None
        if prod.layout is not cons.layout:
            try:
                penalty += self.conversion_ms[edge][cons.processor]
            except KeyError:
                raise LookupError_(
                    f"no conversion measurement for edge {edge!r} on "
                    f"{cons.processor}"
                ) from None
        return penalty

    # -- whole-schedule evaluation ------------------------------------------------

    def schedule_time(self, assignments: dict[str, str]) -> float:
        """Total network time of an assignment, penalties included.

        This is the search's objective function: LUT-only, no board.
        """
        total = 0.0
        for layer in self.layers:
            uid = assignments.get(layer)
            if uid is None:
                raise ScheduleError(f"assignment missing layer {layer!r}")
            total += self.layer_time(layer, uid)
        for edge in self.edges:
            producer, consumer = edge
            total += self.penalty(
                edge, assignments[producer], assignments[consumer]
            )
        return total

    def indexed(self) -> "IndexedLUT":
        """The numpy view for the search inner loop (built once, cached).

        The cache assumes the table is not mutated after its first
        indexing — true for every profiled or deserialized LUT.
        """
        if self._indexed is None:
            self._indexed = IndexedLUT(self)
        return self._indexed

    def engine(self) -> "CostEngine":
        """The compiled vectorized pricing engine for this table."""
        return self.indexed().engine()

    # -- serialization ----------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string (format 2).

        Edge-keyed tables (``conversion_ms``/``transfer_ms``) are
        stored as ``[[producer, consumer], value]`` pairs — JSON has no
        tuple keys, and the format-1 ``"producer->consumer"`` string
        keys could not be split back unambiguously for layer names
        containing ``->``.  Such names are rejected outright: a
        format-1 reader of this payload would silently mis-parse them.
        """
        ambiguous = sorted(name for name in self.layers if "->" in name)
        if ambiguous:
            raise ProfilingError(
                f"layer name(s) {ambiguous} contain '->', which is "
                "ambiguous in serialized edge keys; rename the layers"
            )
        payload = {
            "format": 2,
            "graph_name": self.graph_name,
            "mode": self.mode,
            "platform_name": self.platform_name,
            "layers": self.layers,
            "candidates": self.candidates,
            "times_ms": self.times_ms,
            "edges": [list(e) for e in self.edges],
            "conversion_ms": [
                [[u, v], {str(k): ms for k, ms in per_proc.items()}]
                for (u, v), per_proc in self.conversion_ms.items()
            ],
            "transfer_ms": [
                [[u, v], ms] for (u, v), ms in self.transfer_ms.items()
            ],
            # Depths drive Q-state ordering on branchy graphs; dropping
            # them here once silently reverted non-positional tables to
            # index order after a cache round-trip.
            "layer_depth": self.layer_depth,
            "meta": {
                uid: {
                    "library": m.library,
                    "algorithm": m.algorithm,
                    "impl": m.impl,
                    "blas": m.blas,
                    "processor": str(m.processor),
                    "layout": str(m.layout),
                }
                for uid, m in self.meta.items()
            },
            "profiling_inferences": self.profiling_inferences,
        }
        return json.dumps(payload, indent=2)

    @staticmethod
    def _edge_items(table) -> list[tuple[tuple[str, str], object]]:
        """Normalize an edge-keyed JSON table to ``((u, v), value)`` pairs.

        Format 2 stores ``[[u, v], value]`` pairs; format 1 stored
        ``"u->v"`` string keys, which are still read but rejected when
        the split is ambiguous (a layer name containing ``->`` would
        otherwise be reassembled into the wrong edge and silently
        corrupt the penalty tables).
        """
        if isinstance(table, list):  # format 2
            items = []
            for pair, value in table:
                u, v = pair
                items.append(((str(u), str(v)), value))
            return items
        items = []
        for key, value in table.items():  # format 1 (legacy)
            parts = key.split("->")
            if len(parts) != 2:
                raise ProfilingError(
                    f"ambiguous legacy edge key {key!r}: layer names "
                    "containing '->' cannot be split back; re-profile "
                    "and re-save the LUT in the current format"
                )
            items.append(((parts[0], parts[1]), value))
        return items

    @classmethod
    def from_json(cls, text: str) -> "LatencyTable":
        """Deserialize a LUT saved by :meth:`to_json` (format 1 or 2)."""
        payload = json.loads(text)
        meta = {
            uid: PrimitiveMeta(
                uid=uid,
                library=m["library"],
                algorithm=m["algorithm"],
                impl=m["impl"],
                blas=m["blas"],
                processor=ProcessorKind(m["processor"]),
                layout=Layout(m["layout"]),
            )
            for uid, m in payload["meta"].items()
        }
        return cls(
            graph_name=payload["graph_name"],
            mode=payload["mode"],
            platform_name=payload["platform_name"],
            layers=list(payload["layers"]),
            candidates={k: list(v) for k, v in payload["candidates"].items()},
            times_ms={
                k: {u: float(t) for u, t in v.items()}
                for k, v in payload["times_ms"].items()
            },
            edges=[tuple(e) for e in payload["edges"]],
            conversion_ms={
                edge: {ProcessorKind(k): float(ms) for k, ms in per_proc.items()}
                for edge, per_proc in cls._edge_items(payload["conversion_ms"])
            },
            transfer_ms={
                edge: float(ms)
                for edge, ms in cls._edge_items(payload["transfer_ms"])
            },
            meta=meta,
            profiling_inferences=int(payload.get("profiling_inferences", 0)),
            # Format-1 payloads carried no depths; the empty default
            # lets __post_init__ rebuild the positional fallback.
            layer_depth={
                str(k): int(v)
                for k, v in payload.get("layer_depth", {}).items()
            },
        )


class IndexedLUT:
    """Numpy-indexed view of a :class:`LatencyTable` for the inner loops.

    * ``times[i]``: vector of candidate times for layer ``i`` (ordered
      like ``candidates[layer]``);
    * ``edge_matrices[e]``: penalty matrix (producer choice x consumer
      choice) for edge ``e``;
    * ``incoming[i]``: list of ``(producer_layer_index, edge_index)``
      feeding layer ``i`` — the penalties charged to layer ``i``.
    """

    def __init__(self, lut: LatencyTable) -> None:
        self.lut = lut
        self._engine = None
        self.layer_names = list(lut.layers)
        self.layer_index = {name: i for i, name in enumerate(self.layer_names)}
        self.candidate_uids = [list(lut.candidates[n]) for n in self.layer_names]
        self.times = [
            np.array([lut.layer_time(n, u) for u in uids], dtype=np.float64)
            for n, uids in zip(self.layer_names, self.candidate_uids)
        ]
        self.num_actions = np.array([len(t) for t in self.times], dtype=np.int64)

        self.edges = list(lut.edges)
        self.edge_matrices: list[np.ndarray] = []
        self.incoming: list[list[tuple[int, int]]] = [[] for _ in self.layer_names]
        for edge_idx, (producer, consumer) in enumerate(self.edges):
            pi = self.layer_index[producer]
            ci = self.layer_index[consumer]
            prod_uids = self.candidate_uids[pi]
            cons_uids = self.candidate_uids[ci]
            matrix = np.zeros((len(prod_uids), len(cons_uids)), dtype=np.float64)
            for a, pu in enumerate(prod_uids):
                for b, cu in enumerate(cons_uids):
                    matrix[a, b] = lut.penalty((producer, consumer), pu, cu)
            self.edge_matrices.append(matrix)
            self.incoming[ci].append((pi, edge_idx))

        #: Layer whose choice defines the Q state when deciding layer i:
        #: the primary (first) graph predecessor, or -1 when the layer is
        #: fed by the network input (virtual start state).  On chains
        #: this is simply i - 1; on branchy graphs it keys the state to
        #: the producer whose layout/processor actually interacts with
        #: layer i's choice.
        self.q_parent: list[int] = [
            inc[0][0] if inc else -1 for inc in self.incoming
        ]

    def __len__(self) -> int:
        return len(self.layer_names)

    @property
    def has_engine(self) -> bool:
        """Whether an engine is already cached (built or adopted) —
        lets the shared-table attach path skip views that are warm."""
        return self._engine is not None

    def engine(self) -> "CostEngine":
        """The compiled (cached) vectorized pricing engine."""
        if self._engine is None:
            from repro.engine.pricing import CostEngine

            self._engine = CostEngine.from_indexed(self)
        return self._engine

    def adopt_engine(self, engine: "CostEngine") -> "CostEngine":
        """Install a pre-built engine as this view's cached engine.

        The shared-table path attaches a zero-copy
        :class:`~repro.engine.pricing.CostEngine` over a
        ``multiprocessing.shared_memory`` segment and injects it here,
        so every search over this LUT prices against the host's single
        tensor copy.  Identity is checked structurally — the engine
        must describe exactly this LUT's layers, candidates and edges
        — because a mismatched engine would silently price a different
        scenario.
        """
        if (
            engine.layer_names != self.layer_names
            or engine.candidate_uids != self.candidate_uids
            or engine.edges != [tuple(e) for e in self.edges]
        ):
            raise ScheduleError(
                "adopted engine does not describe this LUT "
                f"({self.lut.graph_name}/{self.lut.platform_name}/"
                f"{self.lut.mode}): layer/candidate/edge mismatch"
            )
        self._engine = engine
        return engine

    def total_ms(self, choices: np.ndarray) -> float:
        """Objective for a full choice vector (one index per layer)."""
        return self.engine().price(choices)

    def assignments(self, choices: np.ndarray) -> dict[str, str]:
        """Convert a choice vector back to layer -> uid assignments."""
        return {
            name: self.candidate_uids[i][c]
            for i, (name, c) in enumerate(zip(self.layer_names, choices))
        }
