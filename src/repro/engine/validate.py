"""Latency-table integrity checks.

A LUT may come from a file (CLI round-trips, archived profilings), so
the engine offers a structural validator: every problem found is
reported, none silently tolerated.  Run by the CLI after loading and
available to users via :func:`validate_lut`.
"""

from __future__ import annotations

from repro.engine.lut import LatencyTable
from repro.errors import ProfilingError
from repro.hw.processor import ProcessorKind


def lut_problems(lut: LatencyTable) -> list[str]:
    """All structural problems of a latency table (empty = healthy)."""
    problems: list[str] = []
    layer_set = set(lut.layers)

    if len(layer_set) != len(lut.layers):
        problems.append("duplicate layer names")

    for layer in lut.layers:
        uids = lut.candidates.get(layer)
        if not uids:
            problems.append(f"layer {layer!r} has no candidates")
            continue
        times = lut.times_ms.get(layer, {})
        for uid in uids:
            if uid not in lut.meta:
                problems.append(f"candidate {uid!r} of {layer!r} lacks metadata")
            if uid not in times:
                problems.append(f"no measurement for ({layer!r}, {uid!r})")
            elif times[uid] <= 0:
                problems.append(
                    f"non-positive measurement for ({layer!r}, {uid!r})"
                )

    gpu_used = any(
        m.processor is ProcessorKind.GPU for m in lut.meta.values()
    )
    for edge in lut.edges:
        producer, consumer = edge
        if producer not in layer_set or consumer not in layer_set:
            problems.append(f"edge {edge!r} references unknown layers")
            continue
        if lut.layer_depth[producer] >= lut.layer_depth[consumer]:
            problems.append(f"edge {edge!r} is not topologically ordered")
        conv = lut.conversion_ms.get(edge)
        if conv is None:
            problems.append(f"edge {edge!r} lacks conversion measurements")
        else:
            for proc, ms in conv.items():
                if ms < 0:
                    problems.append(
                        f"negative conversion cost on {edge!r} ({proc})"
                    )
        if gpu_used and edge not in lut.transfer_ms:
            problems.append(f"edge {edge!r} lacks a transfer measurement")
        elif lut.transfer_ms.get(edge, 0.0) < 0:
            problems.append(f"negative transfer cost on {edge!r}")

    return problems


def validate_lut(lut: LatencyTable) -> None:
    """Raise :class:`~repro.errors.ProfilingError` listing all problems."""
    problems = lut_problems(lut)
    if problems:
        preview = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise ProfilingError(
            f"latency table for {lut.graph_name!r} is inconsistent: "
            f"{preview}{more}"
        )
