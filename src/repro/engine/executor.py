"""Simulated execution of a scheduled network on a platform.

The executor is the "board": it prices every layer with its assigned
primitive's cost model, prices every compatibility layer (layout
conversion, processor transfer) on the graph's edges, applies measurement
noise, and reports per-layer / per-edge breakdowns — the measurements the
profiling phase records.

Penalty conventions (paper §IV-A, §V-B):

* penalties are charged to the *consuming* layer of an edge;
* a processor switch pays one CPU<->GPU copy of the producer's output;
* a layout mismatch pays one conversion pass on the consumer's
  processor, unless the tensor shape makes layouts equivalent;
* both can stack on the same edge (transfer then convert).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends.layout import conversion_ms, layouts_equivalent
from repro.backends.registry import DesignSpace
from repro.engine.pricing import CostEngine
from repro.engine.schedule import NetworkSchedule
from repro.hw.platform import Platform
from repro.nn.graph import NetworkGraph


@dataclass
class ExecutionResult:
    """Measured breakdown of one (possibly averaged) network inference."""

    schedule: NetworkSchedule
    layer_ms: dict[str, float] = field(default_factory=dict)
    #: (producer, consumer) -> penalty milliseconds (transfer + conversion).
    penalty_ms: dict[tuple[str, str], float] = field(default_factory=dict)

    @property
    def compute_ms(self) -> float:
        """Sum of per-layer execution times."""
        return sum(self.layer_ms.values())

    @property
    def overhead_ms(self) -> float:
        """Sum of all compatibility penalties."""
        return sum(self.penalty_ms.values())

    @property
    def total_ms(self) -> float:
        """End-to-end network latency."""
        return self.compute_ms + self.overhead_ms

    def slowest_layers(self, count: int = 5) -> list[tuple[str, float]]:
        """The ``count`` most expensive layers, slowest first."""
        ranked = sorted(self.layer_ms.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]


class Executor:
    """Runs schedules for one (graph, space, platform) triple."""

    def __init__(
        self, graph: NetworkGraph, space: DesignSpace, platform: Platform
    ) -> None:
        self.graph = graph
        self.space = space
        self.platform = platform
        self._engine: CostEngine | None = None

    def engine(self) -> CostEngine:
        """The compiled cost-model pricing engine (built once, cached).

        Every (layer, candidate) time and every per-edge candidate-pair
        penalty of the analytic model, in the same dense representation
        the search-phase engine uses — so simulated measurements are
        array gathers instead of repeated model evaluations.
        """
        if self._engine is None:
            self._engine = CostEngine.from_model(self)
        return self._engine

    # -- noiseless pieces -------------------------------------------------------

    def true_layer_ms(self, layer_name: str, uid: str) -> float:
        """Model (noise-free) time of one layer under one primitive."""
        layer = self.graph.layer(layer_name)
        prim = self.space.primitive(uid)
        return prim.estimate_ms(layer, self.graph, self.platform)

    def true_penalty_ms(self, producer: str, consumer: str,
                        producer_uid: str, consumer_uid: str) -> float:
        """Model compatibility penalty on one edge for a primitive pair."""
        prod = self.space.primitive(producer_uid)
        cons = self.space.primitive(consumer_uid)
        tensor = self.graph.output_shape(producer)
        penalty = 0.0
        if prod.processor is not cons.processor:
            penalty += self.platform.transfer_ms(tensor.nbytes)
        if prod.layout is not cons.layout and not layouts_equivalent(tensor):
            penalty += conversion_ms(tensor, self.platform.processor(cons.processor))
        return penalty

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        schedule: NetworkSchedule,
        rng: np.random.Generator | None = None,
        repeats: int = 1,
    ) -> ExecutionResult:
        """Execute ``schedule``; with ``rng`` set, measurements are noisy.

        ``repeats`` averages that many noisy inferences per measurement
        (the paper's 50-image mean).  Without ``rng`` the result is the
        exact model time.

        True (model) times come from the compiled :meth:`engine` — two
        array gathers per run instead of one model evaluation per layer
        and edge.
        """
        schedule.validate(self.graph, self.space)
        engine = self.engine()
        choices = engine.choices_of(schedule.assignments)
        layer_true = engine.gather_layer_times(choices).tolist()
        edge_true = engine.gather_edge_penalties(choices).tolist()
        noise = self.platform.noise
        result = ExecutionResult(schedule=schedule)
        for name, true_ms in zip(engine.layer_names, layer_true):
            if rng is None:
                measured = true_ms
            else:
                measured = noise.sample_mean(true_ms, rng, repeats)
            result.layer_ms[name] = measured
        for edge, true_ms in zip(engine.edges, edge_true):
            if true_ms == 0.0:
                continue
            if rng is None:
                measured = true_ms
            else:
                measured = noise.sample_mean(true_ms, rng, repeats)
            result.penalty_ms[edge] = measured
        return result
