"""Execution traces: where did the milliseconds go?

Turns an :class:`~repro.engine.executor.ExecutionResult` into

* a text timeline (per-layer bars grouped by processor), and
* a Chrome-trace JSON (open in ``chrome://tracing`` / Perfetto),

so a deployment report can show *why* a schedule is fast — which layers
run where, and what the compatibility penalties cost in between.
Layers execute sequentially (single-image inference, as measured in the
paper), so the timeline is one lane per processor plus a penalty lane.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.backends.registry import DesignSpace
from repro.engine.executor import ExecutionResult
from repro.hw.processor import ProcessorKind
from repro.nn.graph import NetworkGraph
from repro.utils.units import format_ms


@dataclass(frozen=True)
class TraceEvent:
    """One executed interval."""

    name: str
    lane: str  # "cpu", "gpu" or "penalty"
    start_ms: float
    duration_ms: float


def build_trace(
    graph: NetworkGraph, space: DesignSpace, result: ExecutionResult
) -> list[TraceEvent]:
    """Sequential per-layer timeline, penalties charged before consumers."""
    events: list[TraceEvent] = []
    clock = 0.0
    for layer in graph.layers():
        # Penalties on incoming edges execute before the layer itself.
        for producer in layer.inputs:
            penalty = result.penalty_ms.get((producer, layer.name), 0.0)
            if penalty > 0.0:
                events.append(
                    TraceEvent(
                        name=f"{producer}->{layer.name}",
                        lane="penalty",
                        start_ms=clock,
                        duration_ms=penalty,
                    )
                )
                clock += penalty
        uid = result.schedule.primitive_uid(layer.name)
        prim = space.primitive(uid)
        duration = result.layer_ms[layer.name]
        events.append(
            TraceEvent(
                name=f"{layer.name} [{uid}]",
                lane=str(prim.processor),
                start_ms=clock,
                duration_ms=duration,
            )
        )
        clock += duration
    return events


def render_timeline(events: list[TraceEvent], width: int = 60) -> str:
    """ASCII timeline: one row per event, bar length ~ duration."""
    if not events:
        return "(empty trace)"
    total = events[-1].start_ms + events[-1].duration_ms
    longest = max(e.duration_ms for e in events)
    lines = [f"total {format_ms(total)}  (bar scale: {format_ms(longest)} max)"]
    lane_marks = {"cpu": "#", "gpu": "=", "penalty": "!"}
    for event in events:
        bar_len = max(1, int(round(event.duration_ms / longest * width)))
        mark = lane_marks.get(event.lane, "?")
        lines.append(
            f"{event.lane:7s} |{mark * bar_len:<{width}s}| "
            f"{format_ms(event.duration_ms):>8s}  {event.name}"
        )
    return "\n".join(lines)


def chrome_trace_json(events: list[TraceEvent]) -> str:
    """Chrome-trace ('trace event format') JSON string."""
    lanes = {"cpu": 1, "gpu": 2, "penalty": 3}
    payload = [
        {
            "name": event.name,
            "ph": "X",  # complete event
            "ts": event.start_ms * 1000.0,  # microseconds
            "dur": event.duration_ms * 1000.0,
            "pid": 0,
            "tid": lanes.get(event.lane, 0),
            "cat": event.lane,
        }
        for event in events
    ]
    return json.dumps({"traceEvents": payload}, indent=2)


def lane_totals(events: list[TraceEvent]) -> dict[str, float]:
    """Total milliseconds per lane (cpu / gpu / penalty)."""
    totals: dict[str, float] = {}
    for event in events:
        totals[event.lane] = totals.get(event.lane, 0.0) + event.duration_ms
    return totals
