"""The inference engine optimizer (paper §III-A, §V-A).

Phase 1 of QS-DNN: run the network on the (simulated) board once per
primitive type plus once for compatibility layers, and distil everything
into a :class:`~repro.engine.lut.LatencyTable` that the search consumes.
"""

from repro.engine.schedule import NetworkSchedule, vanilla_schedule, primitive_type_schedule
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.lut import LatencyTable, PrimitiveMeta, IndexedLUT
from repro.engine.pricing import CostEngine
from repro.engine.compat import profile_compatibility
from repro.engine.profiler import Profiler, ProfilingReport
from repro.engine.optimizer import InferenceEngineOptimizer, DeploymentReport
from repro.engine.validate import lut_problems, validate_lut

__all__ = [
    "NetworkSchedule",
    "vanilla_schedule",
    "primitive_type_schedule",
    "ExecutionResult",
    "Executor",
    "LatencyTable",
    "PrimitiveMeta",
    "IndexedLUT",
    "CostEngine",
    "profile_compatibility",
    "Profiler",
    "ProfilingReport",
    "InferenceEngineOptimizer",
    "DeploymentReport",
    "lut_problems",
    "validate_lut",
]
