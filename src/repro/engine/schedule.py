"""Network schedules: a primitive assignment for every layer."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.backends.primitive import Primitive
from repro.backends.registry import DesignSpace
from repro.errors import ScheduleError
from repro.nn.graph import NetworkGraph


@dataclass
class NetworkSchedule:
    """Maps every schedulable layer of a graph to a primitive uid.

    This is the deployable artifact QS-DNN produces: feed it back to the
    inference engine optimizer to generate the tuned implementation.
    """

    graph_name: str
    assignments: dict[str, str] = field(default_factory=dict)

    def assign(self, layer_name: str, uid: str) -> None:
        """Set the primitive for one layer."""
        self.assignments[layer_name] = uid

    def primitive_uid(self, layer_name: str) -> str:
        """The uid assigned to ``layer_name``."""
        try:
            return self.assignments[layer_name]
        except KeyError:
            raise ScheduleError(
                f"schedule for {self.graph_name} has no assignment for "
                f"layer {layer_name!r}"
            ) from None

    def validate(self, graph: NetworkGraph, space: DesignSpace) -> None:
        """Check completeness and coverage against a graph and space."""
        if graph.name != self.graph_name:
            raise ScheduleError(
                f"schedule is for {self.graph_name!r}, graph is {graph.name!r}"
            )
        for layer in graph.layers():
            uid = self.primitive_uid(layer.name)
            prim = space.primitive(uid)
            if not prim.supports(layer, graph):
                raise ScheduleError(
                    f"{uid} cannot execute layer {layer.name!r} ({layer.kind})"
                )
        extra = set(self.assignments) - {l.name for l in graph.layers()}
        if extra:
            raise ScheduleError(f"schedule assigns unknown layers: {sorted(extra)}")

    def libraries_used(self, space: DesignSpace) -> list[str]:
        """Sorted set of library names appearing in the schedule."""
        return sorted({space.primitive(u).library for u in self.assignments.values()})

    def __len__(self) -> int:
        return len(self.assignments)

    # -- serialization ----------------------------------------------------------

    def to_json(self) -> str:
        """Serialize as the deployable JSON artifact."""
        return json.dumps(
            {"graph": self.graph_name, "assignments": self.assignments},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "NetworkSchedule":
        """Load a schedule saved by :meth:`to_json`."""
        try:
            payload = json.loads(text)
            return cls(
                graph_name=payload["graph"],
                assignments=dict(payload["assignments"]),
            )
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise ScheduleError(f"malformed schedule JSON: {exc}") from exc


def vanilla_schedule(graph: NetworkGraph, space: DesignSpace) -> NetworkSchedule:
    """The all-Vanilla baseline schedule (paper §V-A).

    Vanilla "is the most simple, direct, dependency-free and contains all
    layers that a DNN may use" — it is the denominator of every Table II
    speedup.
    """
    schedule = NetworkSchedule(graph.name)
    for layer in graph.layers():
        vans = [
            p for p in space.candidates(layer, graph) if p.library == "vanilla"
        ]
        if not vans:
            raise ScheduleError(
                f"no vanilla primitive for layer {layer.name!r} ({layer.kind})"
            )
        schedule.assign(layer.name, vans[0].uid)
    return schedule


def primitive_type_schedule(
    graph: NetworkGraph, space: DesignSpace, primitive: Primitive
) -> NetworkSchedule:
    """The profiling substitution of §V-A.

    "The inference controller benchmarks each primitive type, one at a
    time, by substituting Vanilla for the chosen primitive type in all
    those layers where the acceleration library is able to implement such
    primitive."
    """
    schedule = vanilla_schedule(graph, space)
    for layer in graph.layers():
        if primitive.supports(layer, graph):
            schedule.assign(layer.name, primitive.uid)
    return schedule
