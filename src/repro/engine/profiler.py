"""Phase 1: profile every primitive type on the board (paper §V-A).

The protocol is exactly the paper's:

1. Run the all-Vanilla network once — the baseline, and the measurement
   source for every Vanilla primitive.
2. For each non-Vanilla primitive type, run the network with that
   primitive substituted wherever it applies; record the substituted
   layers' times.  ("We only need to infer the whole network on the
   embedded platform as many times as different global implementations
   there exists.")
3. One final pass profiles all compatibility layers (Fig. 3).

Each measurement is the mean of ``repeats`` noisy inferences (the paper
uses 50 images).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.registry import DesignSpace
from repro.engine.compat import profile_compatibility
from repro.engine.executor import Executor
from repro.engine.lut import LatencyTable, PrimitiveMeta
from repro.engine.schedule import primitive_type_schedule, vanilla_schedule
from repro.errors import ProfilingError
from repro.hw.platform import Platform
from repro.nn.graph import NetworkGraph
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class ProfilingReport:
    """Cost accounting of the inference phase (experiment E6)."""

    graph_name: str
    mode: str
    primitive_types: int
    network_inferences: int  # full-network benchmark passes
    compatibility_passes: int
    simulated_board_ms: float  # total simulated time spent on the board

    @property
    def total_passes(self) -> int:
        """All on-board passes: primitive benchmarks + compatibility."""
        return self.network_inferences + self.compatibility_passes


class Profiler:
    """Builds the :class:`~repro.engine.lut.LatencyTable` for a network."""

    def __init__(
        self,
        graph: NetworkGraph,
        space: DesignSpace,
        platform: Platform,
        seed: int = 0,
        repeats: int = 50,
    ) -> None:
        if repeats < 1:
            raise ProfilingError("repeats must be >= 1")
        self.graph = graph
        self.space = space
        self.platform = platform
        self.repeats = repeats
        self._rng_stream = RngStream(seed, "profiler", graph.name, str(space.mode))
        self._executor = Executor(graph, space, platform)

    def profile(self) -> tuple[LatencyTable, ProfilingReport]:
        """Run the full inference phase; returns the LUT and its cost."""
        graph, space = self.graph, self.space
        times: dict[str, dict[str, float]] = {l.name: {} for l in graph.layers()}
        candidates = {
            l.name: [p.uid for p in space.candidates(l, graph)] for l in graph.layers()
        }

        board_ms = 0.0
        inferences = 0

        # 1. The all-Vanilla pass measures every vanilla primitive at once.
        base = vanilla_schedule(graph, space)
        rng = self._rng_stream.child("vanilla")
        result = self._executor.run(base, rng=rng, repeats=self.repeats)
        board_ms += result.total_ms * self.repeats
        inferences += 1
        for layer in graph.layers():
            times[layer.name][base.primitive_uid(layer.name)] = result.layer_ms[
                layer.name
            ]

        # 2. One pass per non-Vanilla primitive type.
        for prim in space.primitives:
            if prim.library == "vanilla":
                continue
            if not any(prim.supports(l, graph) for l in graph.layers()):
                continue  # primitive type absent from this network
            schedule = primitive_type_schedule(graph, space, prim)
            rng = self._rng_stream.child("primitive", prim.uid)
            result = self._executor.run(schedule, rng=rng, repeats=self.repeats)
            board_ms += result.total_ms * self.repeats
            inferences += 1
            for layer in graph.layers():
                if schedule.primitive_uid(layer.name) == prim.uid:
                    times[layer.name][prim.uid] = result.layer_ms[layer.name]

        # 3. The compatibility pass (Fig. 3).
        rng = self._rng_stream.child("compat")
        conversions, transfers = profile_compatibility(
            graph, self.platform, rng=rng, repeats=self.repeats
        )
        board_ms += (
            sum(ms for per_proc in conversions.values() for ms in per_proc.values())
            + sum(transfers.values())
        ) * self.repeats

        self._check_complete(times, candidates)
        lut = LatencyTable(
            graph_name=graph.name,
            mode=str(space.mode),
            platform_name=self.platform.name,
            layers=[l.name for l in graph.layers()],
            candidates=candidates,
            times_ms=times,
            edges=graph.edges(),
            conversion_ms=conversions,
            transfer_ms=transfers,
            meta={p.uid: PrimitiveMeta.from_primitive(p) for p in space.primitives},
            profiling_inferences=inferences,
        )
        report = ProfilingReport(
            graph_name=graph.name,
            mode=str(space.mode),
            primitive_types=len(space.primitives),
            network_inferences=inferences,
            compatibility_passes=1,
            simulated_board_ms=board_ms,
        )
        return lut, report

    def _check_complete(
        self, times: dict[str, dict[str, float]], candidates: dict[str, list[str]]
    ) -> None:
        """Every candidate of every layer must have a measurement."""
        for layer_name, uids in candidates.items():
            missing = [u for u in uids if u not in times[layer_name]]
            if missing:
                raise ProfilingError(
                    f"profiling left layer {layer_name!r} without measurements "
                    f"for: {missing}"
                )
