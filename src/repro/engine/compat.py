"""Compatibility-layer profiling (paper Fig. 3, §V-A).

"Once all primitive types have been benchmarked, we profile the
compatibility layers for layout transformation and data transfers
between different processors.  A single inference is performed to
benchmark all possible compatibility layers between each consecutive
layer of the neural network.  Exceptions and branches are handled."

For every edge of the graph (branches simply contribute several edges),
we measure the cost of (a) converting the producer's output between
layouts on each available processor and (b) copying it across the
CPU<->GPU boundary.  That is all the search needs to price any primitive
pairing on any edge.
"""

from __future__ import annotations

import numpy as np

from repro.backends.layout import conversion_ms
from repro.hw.platform import Platform
from repro.hw.processor import ProcessorKind
from repro.nn.graph import NetworkGraph


def profile_compatibility(
    graph: NetworkGraph,
    platform: Platform,
    rng: np.random.Generator | None = None,
    repeats: int = 50,
) -> tuple[
    dict[tuple[str, str], dict[ProcessorKind, float]],
    dict[tuple[str, str], float],
]:
    """Measure conversion and transfer costs for every graph edge.

    Returns ``(conversion_ms, transfer_ms)`` keyed by edge.  Conversion
    entries exist for every available processor; transfer entries exist
    only when the platform has a GPU.  With ``rng`` set, measurements are
    noisy means of ``repeats`` samples, like any other profiled quantity.
    """
    noise = platform.noise
    conversions: dict[tuple[str, str], dict[ProcessorKind, float]] = {}
    transfers: dict[tuple[str, str], float] = {}

    def measure(true_ms: float) -> float:
        """One noisy mean-of-repeats measurement of a true latency."""
        if rng is None or true_ms == 0.0:
            return true_ms
        return noise.sample_mean(true_ms, rng, repeats)

    has_gpu = platform.has(ProcessorKind.GPU)
    for edge in graph.edges():
        producer, _consumer = edge
        tensor = graph.output_shape(producer)
        conversions[edge] = {
            proc.kind: measure(conversion_ms(tensor, proc))
            for proc in platform.processors
        }
        if has_gpu:
            transfers[edge] = measure(platform.transfer_ms(tensor.nbytes))
    return conversions, transfers
