"""The unified vectorized pricing engine.

Every consumer of the search objective — the RL rollout, the polish,
the baselines, the executor's simulated measurements — prices the same
quantity: per-layer primitive times plus per-edge compatibility
penalties (the PBQP view of Anderson & Gregg [14]: one cost vector per
layer, one cost matrix per edge).  The :class:`CostEngine` owns that
representation once, compiled into dense NumPy structures:

* ``times_dense``  — an ``(L, A)`` matrix of per-layer candidate times,
  padded with ``+inf`` beyond each layer's candidate count (an invalid
  choice therefore prices to ``inf`` instead of silently succeeding);
* ``edge_penalties`` — an ``(E, A, A)`` tensor of per-edge penalty
  matrices, zero-padded;
* ``edge_src`` / ``edge_dst`` — the layer indices each edge connects.

On top of that it exposes the three pricing primitives the search
needs:

* :meth:`price` — one schedule, one float;
* :meth:`price_batch` — ``B`` schedules at once, no Python-level
  per-layer loop;
* :meth:`layer_costs` — the shaped per-layer reward vector (own time
  plus penalties on incoming edges, charged to the consumer — paper
  §V-B), which is exactly minus the RL reward vector.

Engines compile from a profiled LUT (:meth:`from_lut` /
:meth:`from_indexed`) or straight from the executor's analytic cost
model (:meth:`from_model`) — both yield the same dense interface, which
is what lets the property tests pin LUT pricing against board pricing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ScheduleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.lut import IndexedLUT, LatencyTable


class CostEngine:
    """Dense, vectorized pricing of primitive-selection schedules.

    Parameters
    ----------
    layer_names:
        Schedulable layers in topological order.
    candidate_uids:
        Per layer, the candidate primitive uids (stable order — choice
        ``c`` at layer ``i`` means ``candidate_uids[i][c]``).
    times:
        Per layer, the 1-D vector of candidate times (same order).
    edges:
        ``(producer_name, consumer_name)`` pairs.
    edge_matrices:
        Per edge, the (producer choice x consumer choice) penalty
        matrix.
    """

    def __init__(
        self,
        layer_names: Sequence[str],
        candidate_uids: Sequence[Sequence[str]],
        times: Sequence[np.ndarray] | None,
        edges: Sequence[tuple[str, str]],
        edge_matrices: Sequence[np.ndarray] | None,
        *,
        dense_tables: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.layer_names = list(layer_names)
        self.layer_index = {n: i for i, n in enumerate(self.layer_names)}
        self.candidate_uids = [list(u) for u in candidate_uids]
        self._uid_index = [
            {u: c for c, u in enumerate(uids)} for uids in self.candidate_uids
        ]
        self.edges = [tuple(e) for e in edges]
        num_layers = len(self.layer_names)
        num_edges = len(self.edges)

        if dense_tables is not None:
            # Zero-copy construction over pre-built dense tensors (the
            # shared-memory attach path): ``times`` / ``edge_matrices``
            # become truncated views into the padded tables, nothing is
            # re-filled, and the big arrays are adopted as-is — which
            # is exactly what makes an 8-worker host hold one tensor
            # copy per (platform, network) instead of eight.
            times_dense, edge_penalties = dense_tables
            counts = [len(u) for u in self.candidate_uids]
            if len(layer_names) != len(candidate_uids):
                raise ScheduleError("layer_names and candidate_uids must align")
            if (
                times_dense.dtype != np.float64
                or times_dense.ndim != 2
                or times_dense.shape[0] != num_layers
                or (num_layers and times_dense.shape[1] != max(counts))
            ):
                raise ScheduleError(
                    f"dense time table has shape {times_dense.shape}, "
                    f"expected ({num_layers}, {max(counts) if counts else 0})"
                )
            max_actions = times_dense.shape[1] if num_layers else 0
            if (
                edge_penalties.dtype != np.float64
                or edge_penalties.shape
                != (num_edges, max_actions, max_actions)
            ):
                raise ScheduleError(
                    f"dense edge table has shape {edge_penalties.shape}, "
                    f"expected ({num_edges}, {max_actions}, {max_actions})"
                )
            self.times_dense = times_dense
            self.times = [times_dense[i, :n] for i, n in enumerate(counts)]
            self.num_actions = np.array(counts, dtype=np.int64)
            self.edge_penalties = edge_penalties
            self.edge_matrices = []
        else:
            if (
                times is None
                or edge_matrices is None
                or len(layer_names) != len(candidate_uids)
                or len(layer_names) != len(times)
            ):
                raise ScheduleError(
                    "layer_names, candidate_uids and times must align"
                )
            if len(edges) != len(edge_matrices):
                raise ScheduleError("edges and edge_matrices must align")
            self.times = [np.asarray(t, dtype=np.float64) for t in times]
            self.num_actions = np.array(
                [len(t) for t in self.times], dtype=np.int64
            )
            max_actions = int(self.num_actions.max()) if num_layers else 0
            # Dense per-layer time matrix; +inf padding makes an
            # out-of-range (but < max_actions) choice price to infinity.
            self.times_dense = np.full(
                (num_layers, max_actions), np.inf, dtype=np.float64
            )
            for i, t in enumerate(self.times):
                self.times_dense[i, : len(t)] = t
            self.edge_matrices = [
                np.asarray(m, dtype=np.float64) for m in edge_matrices
            ]
            self.edge_penalties = np.zeros(
                (num_edges, max_actions, max_actions), dtype=np.float64
            )

        self.edge_src = np.empty(num_edges, dtype=np.int64)
        self.edge_dst = np.empty(num_edges, dtype=np.int64)
        #: Per layer: (edge_idx, other_layer, layer_is_consumer) for
        #: every incident edge — the single-layer move neighborhood.
        self.incident: list[list[tuple[int, int, bool]]] = [
            [] for _ in range(num_layers)
        ]
        for e, (producer, consumer) in enumerate(self.edges):
            pi = self.layer_index[producer]
            ci = self.layer_index[consumer]
            self.edge_src[e] = pi
            self.edge_dst[e] = ci
            if dense_tables is not None:
                # Truncated views into the adopted padded tensor; the
                # padding region is zero by construction, so the views
                # carry exactly the original per-edge matrices.
                self.edge_matrices.append(
                    self.edge_penalties[
                        e,
                        : len(self.candidate_uids[pi]),
                        : len(self.candidate_uids[ci]),
                    ]
                )
            else:
                matrix = self.edge_matrices[e]
                self.edge_penalties[
                    e, : matrix.shape[0], : matrix.shape[1]
                ] = matrix
            self.incident[ci].append((e, pi, True))
            self.incident[pi].append((e, ci, False))

        self._layer_arange = np.arange(num_layers)
        self._edge_arange = np.arange(num_edges)
        # Flat views + per-row offsets: batched pricing gathers via
        # ``take`` on these, which is markedly faster than broadcast
        # advanced indexing for the small (B, L) batches the lockstep
        # searches issue every episode.
        self._times_flat = self.times_dense.reshape(-1)
        self._times_offsets = self._layer_arange * max_actions
        self._edge_flat = self.edge_penalties.reshape(-1)
        self._edge_offsets = self._edge_arange * max_actions * max_actions
        self._max_actions = max_actions
        # Edges grouped into "rounds": round r holds every consumer's
        # (r+1)-th incoming edge, in edge order.  Applying the rounds
        # in sequence adds each consumer's penalties in exactly the
        # edge order ``np.add.at`` would use — bit-identical batched
        # accumulation without the (slow) buffered ufunc.at path.
        # Round count == the graph's max in-degree (tiny).
        per_dst_seen: dict[int, int] = {}
        round_members: list[list[int]] = []
        for e in range(num_edges):
            r = per_dst_seen.get(int(self.edge_dst[e]), 0)
            per_dst_seen[int(self.edge_dst[e])] = r + 1
            if r == len(round_members):
                round_members.append([])
            round_members[r].append(e)
        self._edge_rounds = [
            (self.edge_dst[members], np.asarray(members, dtype=np.int64))
            for members in round_members
        ]

    # -- construction -------------------------------------------------------

    @classmethod
    def from_indexed(cls, idx: "IndexedLUT") -> "CostEngine":
        """Compile an :class:`~repro.engine.lut.IndexedLUT`."""
        return cls(
            layer_names=idx.layer_names,
            candidate_uids=idx.candidate_uids,
            times=idx.times,
            edges=idx.edges,
            edge_matrices=idx.edge_matrices,
        )

    @classmethod
    def from_lut(cls, lut: "LatencyTable") -> "CostEngine":
        """Compile a profiled latency table (the search-phase engine)."""
        return lut.indexed().engine()

    @classmethod
    def from_model(cls, executor) -> "CostEngine":
        """Compile an executor's analytic cost model (the board-side
        engine): every (layer, candidate) time and every per-edge
        candidate-pair penalty, evaluated once.

        ``executor`` is any object with the :class:`Executor` pricing
        surface (``graph``, ``space``, ``true_layer_ms``,
        ``true_penalty_ms``).
        """
        graph, space = executor.graph, executor.space
        layers = list(graph.layers())
        layer_names = [l.name for l in layers]
        candidates = [space.candidates(l, graph) for l in layers]
        candidate_uids = [[p.uid for p in cands] for cands in candidates]
        times = [
            np.array(
                [executor.true_layer_ms(name, p.uid) for p in cands],
                dtype=np.float64,
            )
            for name, cands in zip(layer_names, candidates)
        ]
        index = {n: i for i, n in enumerate(layer_names)}
        edges = [tuple(e) for e in graph.edges()]
        edge_matrices = []
        for producer, consumer in edges:
            prod_uids = candidate_uids[index[producer]]
            cons_uids = candidate_uids[index[consumer]]
            matrix = np.empty((len(prod_uids), len(cons_uids)), dtype=np.float64)
            for a, pu in enumerate(prod_uids):
                for b, cu in enumerate(cons_uids):
                    matrix[a, b] = executor.true_penalty_ms(
                        producer, consumer, pu, cu
                    )
            edge_matrices.append(matrix)
        return cls(layer_names, candidate_uids, times, edges, edge_matrices)

    # -- basics -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.layer_names)

    @property
    def num_layers(self) -> int:
        """Number of schedulable layers (the L of every choice vector)."""
        return len(self.layer_names)

    @property
    def num_edges(self) -> int:
        """Number of penalized producer→consumer edges."""
        return len(self.edges)

    def choices_of(self, assignments: Mapping[str, str]) -> np.ndarray:
        """Convert layer -> uid assignments into a choice vector."""
        choices = np.empty(self.num_layers, dtype=np.int64)
        for i, name in enumerate(self.layer_names):
            uid = assignments.get(name)
            if uid is None:
                raise ScheduleError(f"assignment missing layer {name!r}")
            try:
                choices[i] = self._uid_index[i][uid]
            except KeyError:
                raise ScheduleError(
                    f"{uid!r} is not a candidate of layer {name!r}"
                ) from None
        return choices

    def assignments(self, choices: np.ndarray | Sequence[int]) -> dict[str, str]:
        """Convert a choice vector back to layer -> uid assignments."""
        return {
            name: self.candidate_uids[i][int(c)]
            for i, (name, c) in enumerate(zip(self.layer_names, choices))
        }

    # -- pricing ------------------------------------------------------------

    def price_batch(self, choices_matrix: np.ndarray) -> np.ndarray:
        """Objectives for ``B`` schedules at once.

        ``choices_matrix`` is ``(B, L)`` (one candidate index per
        layer); returns the ``(B,)`` vector of total milliseconds.  No
        Python-level per-layer loop.
        """
        batch = np.asarray(choices_matrix, dtype=np.int64)
        if batch.ndim != 2 or batch.shape[1] != self.num_layers:
            raise ScheduleError(
                f"choices matrix must be (B, {self.num_layers}), "
                f"got {batch.shape}"
            )
        if batch.size and (batch.min() < 0 or batch.max() >= self._max_actions):
            raise ScheduleError("choice indices out of range")
        totals = self._times_flat.take(self._times_offsets + batch).sum(axis=1)
        if self.num_edges:
            totals = totals + self._gather_edge_penalties(batch).sum(axis=1)
        return totals

    def _gather_edge_penalties(self, batch: np.ndarray) -> np.ndarray:
        """``(B, E)`` per-edge penalties of a validated ``(B, L)`` batch."""
        return self._edge_flat.take(
            self._edge_offsets
            + batch[:, self.edge_src] * self._max_actions
            + batch[:, self.edge_dst]
        )

    def price(self, choices: np.ndarray | Sequence[int]) -> float:
        """Objective of one full choice vector (one index per layer)."""
        batch = np.asarray(choices, dtype=np.int64)[None, :]
        return float(self.price_batch(batch)[0])

    def layer_costs(self, choices: np.ndarray | Sequence[int]) -> np.ndarray:
        """Per-layer shaped cost vector of one schedule.

        ``layer_costs(c)[i]`` is layer ``i``'s own time plus every
        penalty on its incoming edges (charged to the consumer, paper
        §V-B) — minus the RL reward of deciding layer ``i``.  Sums to
        :meth:`price` of the same choices.
        """
        vec = np.asarray(choices, dtype=np.int64)
        if vec.size and vec.min() < 0:
            raise ScheduleError("choice indices must be non-negative")
        costs = self.times_dense[self._layer_arange, vec]
        if self.num_edges:
            np.add.at(
                costs,
                self.edge_dst,
                self.edge_penalties[
                    self._edge_arange, vec[self.edge_src], vec[self.edge_dst]
                ],
            )
        return costs

    def layer_costs_batch(
        self, choices_matrix: np.ndarray, checked: bool = True
    ) -> np.ndarray:
        """Per-layer shaped cost vectors of ``B`` schedules at once.

        ``choices_matrix`` is ``(B, L)``; returns ``(B, L)`` where row
        ``b`` equals ``layer_costs(choices_matrix[b])`` bit-for-bit:
        the penalty accumulation applies each consumer's incoming edges
        in edge order, exactly like the single-schedule scatter-add, so
        lockstep multi-seed searches that price all their rollouts in
        one call reproduce per-seed pricing to the last ulp.

        ``checked=False`` skips conversion and validation for callers
        (the per-episode lockstep loop) that already hold a validated
        int64 ``(B, L)`` matrix.
        """
        if checked:
            batch = np.asarray(choices_matrix, dtype=np.int64)
            if batch.ndim != 2 or batch.shape[1] != self.num_layers:
                raise ScheduleError(
                    f"choices matrix must be (B, {self.num_layers}), "
                    f"got {batch.shape}"
                )
            if batch.size and (batch.min() < 0 or batch.max() >= self._max_actions):
                raise ScheduleError("choice indices out of range")
        else:
            batch = choices_matrix
        costs = self._times_flat.take(self._times_offsets + batch)
        if self.num_edges:
            penalties = self._gather_edge_penalties(batch)
            for dsts, members in self._edge_rounds:
                costs[:, dsts] += penalties[:, members]
        return costs

    def kernel_views(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Flat pricing arrays for the compiled episode kernels.

        Returns ``(times_flat, times_offsets, edge_flat, edge_offsets,
        edge_src, edge_dst, max_actions)``: layer ``i``'s candidate
        ``c`` prices at ``times_flat[times_offsets[i] + c]`` and edge
        ``e``'s penalty for (producer choice ``a``, consumer choice
        ``b``) at ``edge_flat[edge_offsets[e] + a * max_actions + b]``.
        A scalar walk over these — per-layer gather, then incoming-edge
        penalties accumulated in edge order — reproduces
        :meth:`layer_costs` bit-for-bit.
        """
        return (
            self._times_flat,
            self._times_offsets,
            self._edge_flat,
            self._edge_offsets,
            self.edge_src,
            self.edge_dst,
            self._max_actions,
        )

    def gather_layer_times(self, choices: np.ndarray | Sequence[int]) -> np.ndarray:
        """Per-layer times only (no penalties) of one schedule."""
        vec = np.asarray(choices, dtype=np.int64)
        return self.times_dense[self._layer_arange, vec]

    def gather_edge_penalties(
        self, choices: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        """Per-edge penalties of one schedule, in edge order."""
        vec = np.asarray(choices, dtype=np.int64)
        if not self.num_edges:
            return np.zeros(0, dtype=np.float64)
        return self.edge_penalties[
            self._edge_arange, vec[self.edge_src], vec[self.edge_dst]
        ]

    # -- single-layer moves (polish / annealing neighborhoods) --------------

    def move_costs(
        self, choices: np.ndarray | Sequence[int], layer: int
    ) -> np.ndarray:
        """Total-cost contribution of every candidate at one layer.

        With all other layers fixed to ``choices``, entry ``a`` is the
        candidate's own time plus the penalties on every incident edge
        — so ``argmin`` is the locally optimal move and differences are
        exact objective deltas.
        """
        costs = self.times[layer].copy()
        for edge_idx, other, is_consumer in self.incident[layer]:
            matrix = self.edge_matrices[edge_idx]
            if is_consumer:
                costs += matrix[int(choices[other]), :]
            else:
                costs += matrix[:, int(choices[other])]
        return costs

    def delta_ms(
        self,
        choices: np.ndarray | Sequence[int],
        layer: int,
        new_choice: int,
    ) -> float:
        """Objective change of flipping one layer to ``new_choice``."""
        old_choice = int(choices[layer])
        delta = self.times[layer][new_choice] - self.times[layer][old_choice]
        for edge_idx, other, is_consumer in self.incident[layer]:
            matrix = self.edge_matrices[edge_idx]
            if is_consumer:
                row = int(choices[other])
                delta += matrix[row, new_choice] - matrix[row, old_choice]
            else:
                col = int(choices[other])
                delta += matrix[new_choice, col] - matrix[old_choice, col]
        return float(delta)

    # -- sampling helpers ----------------------------------------------------

    def sample_batch(
        self, rng: np.random.Generator, episodes: int
    ) -> np.ndarray:
        """``(episodes, L)`` uniformly random choice matrix.

        Row-major generation: the first ``k`` rows are identical for any
        two calls with budgets ``>= k`` and the same generator state, so
        longer campaigns strictly extend shorter ones.
        """
        return rng.integers(
            0, self.num_actions[None, :], size=(episodes, self.num_layers)
        )

    def greedy_choices(self) -> np.ndarray:
        """Per-layer fastest candidate, penalties ignored (Fig. 1 trap)."""
        return np.argmin(self.times_dense, axis=1)


#: Byte alignment of the tensor regions inside a shared segment (one
#: cache line — keeps the float64 blocks aligned for every attacher).
_SHARED_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _SHARED_ALIGN - 1) // _SHARED_ALIGN * _SHARED_ALIGN


_SEGMENT_CLS = None


def _segment_cls():
    """A ``SharedMemory`` subclass whose ``close`` tolerates live
    buffer views.

    An attached engine's numpy views keep the mapping "exported", so
    plain ``mmap.close`` raises ``BufferError`` — including from
    ``SharedMemory.__del__`` at garbage collection, which prints an
    unraisable-exception warning.  The mapping is released at process
    exit regardless, so swallowing the refusal here is the correct
    lifecycle, not a cover-up.
    """
    global _SEGMENT_CLS
    if _SEGMENT_CLS is None:
        from multiprocessing import shared_memory

        class _ForgivingSegment(shared_memory.SharedMemory):
            def close(self):
                try:
                    super().close()
                except BufferError:
                    pass

        _SEGMENT_CLS = _ForgivingSegment
    return _SEGMENT_CLS


class SharedCostTables:
    """A :class:`CostEngine`'s dense tensors in one
    ``multiprocessing.shared_memory`` segment.

    Segment layout: an 8-byte little-endian header length, a UTF-8 JSON
    header (layer names, candidate uids, edges, shapes, offsets), then
    the 64-byte-aligned raw bytes of ``times_dense`` and
    ``edge_penalties`` in C order.  :meth:`create` packs an engine once
    (the owner); :meth:`attach` maps it read-only and :meth:`engine`
    rebuilds a zero-copy engine over the mapped tensors, so every
    attaching process prices bitwise-identically to the original while
    the host holds a single physical copy.

    Lifecycle contract: the **owner** (the process that called
    :meth:`create`) must :meth:`unlink` the segment when the campaign
    or service shuts down — attachment alone must never unlink, or the
    segment would vanish under sibling workers.  :meth:`close` is safe
    to call from anyone and tolerates live views (a worker's engine
    may still reference the buffer at interpreter exit).
    """

    def __init__(self, shm, header: dict, owner: bool) -> None:
        self._shm = shm
        self._header = header
        self._owner = owner
        self._engine: CostEngine | None = None
        self._unlinked = False

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, engine: CostEngine, name: str | None = None) -> "SharedCostTables":
        """Export one engine's dense tensors into a fresh segment."""
        import json
        import struct

        times = np.ascontiguousarray(engine.times_dense, dtype=np.float64)
        penalties = np.ascontiguousarray(
            engine.edge_penalties, dtype=np.float64
        )
        header = {
            "layer_names": engine.layer_names,
            "candidate_uids": engine.candidate_uids,
            "edges": [list(e) for e in engine.edges],
            "times_shape": list(times.shape),
            "edges_shape": list(penalties.shape),
        }
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        times_offset = _aligned(8 + len(header_bytes))
        edges_offset = _aligned(times_offset + times.nbytes)
        header["times_offset"] = times_offset
        header["edges_offset"] = edges_offset
        # Re-encode with the offsets included; offsets only grow the
        # header by a bounded amount, so recompute them to fixpoint.
        while True:
            header_bytes = json.dumps(
                header, separators=(",", ":")
            ).encode("utf-8")
            times_offset = _aligned(8 + len(header_bytes))
            edges_offset = _aligned(times_offset + times.nbytes)
            if (
                header["times_offset"] == times_offset
                and header["edges_offset"] == edges_offset
            ):
                break
            header["times_offset"] = times_offset
            header["edges_offset"] = edges_offset
        total = max(edges_offset + penalties.nbytes, 1)
        shm = _segment_cls()(create=True, size=total, name=name)
        struct.pack_into("<Q", shm.buf, 0, len(header_bytes))
        shm.buf[8 : 8 + len(header_bytes)] = header_bytes
        if times.nbytes:
            np.frombuffer(
                shm.buf, dtype=np.float64, count=times.size, offset=times_offset
            )[:] = times.reshape(-1)
        if penalties.nbytes:
            np.frombuffer(
                shm.buf,
                dtype=np.float64,
                count=penalties.size,
                offset=edges_offset,
            )[:] = penalties.reshape(-1)
        return cls(shm, header, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedCostTables":
        """Map an existing segment by name (non-owning)."""
        import json
        import struct

        shm = _segment_cls()(name=name)
        (header_len,) = struct.unpack_from("<Q", shm.buf, 0)
        header = json.loads(bytes(shm.buf[8 : 8 + header_len]).decode("utf-8"))
        return cls(shm, header, owner=False)

    # -- the engine view -----------------------------------------------------

    @property
    def name(self) -> str:
        """The segment name (the handle workers attach by)."""
        return self._shm.name

    def engine(self) -> CostEngine:
        """A zero-copy :class:`CostEngine` over the mapped tensors
        (built once, cached).  The views are marked read-only: the
        tables are shared across processes, and a worker scribbling on
        them would corrupt every sibling's pricing."""
        if self._engine is None:
            header = self._header
            t_shape = tuple(header["times_shape"])
            e_shape = tuple(header["edges_shape"])
            times = np.frombuffer(
                self._shm.buf,
                dtype=np.float64,
                count=int(np.prod(t_shape)) if t_shape else 0,
                offset=header["times_offset"],
            ).reshape(t_shape)
            penalties = np.frombuffer(
                self._shm.buf,
                dtype=np.float64,
                count=int(np.prod(e_shape)) if e_shape else 0,
                offset=header["edges_offset"],
            ).reshape(e_shape)
            times.flags.writeable = False
            penalties.flags.writeable = False
            self._engine = CostEngine(
                layer_names=header["layer_names"],
                candidate_uids=header["candidate_uids"],
                times=None,
                edges=[tuple(e) for e in header["edges"]],
                edge_matrices=None,
                dense_tables=(times, penalties),
            )
        return self._engine

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (best-effort: live numpy views
        over the buffer make ``mmap.close`` refuse, which is fine — the
        mapping is released at process exit regardless)."""
        self._engine = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner's duty, idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
