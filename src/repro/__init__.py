"""QS-DNN reproduction: RL-based search for DNN primitive selection on
heterogeneous embedded systems (de Prado, Pazos, Benini — DATE 2019).

Quick start
-----------
>>> from repro import (jetson_tx2, build_network, Mode,
...                    InferenceEngineOptimizer, QSDNNSearch, SearchConfig)
>>> platform = jetson_tx2()
>>> network = build_network("lenet5")
>>> optimizer = InferenceEngineOptimizer(network, platform, mode=Mode.GPGPU)
>>> lut = optimizer.profile()                       # phase 1: on "device"
>>> result = QSDNNSearch(lut, SearchConfig(episodes=200)).run()  # phase 2
>>> report = optimizer.deploy(result.schedule())    # measure end-to-end
"""

from repro.backends import DesignSpace, Layout, Mode, cpu_space, design_space, gpgpu_space
from repro.baselines import (
    best_single_library,
    brute_force,
    chain_dp,
    cross_entropy_method,
    genetic_search,
    greedy_per_layer,
    pbqp_solve,
    random_search,
    single_library_results,
)
from repro.core import (
    EpsilonSchedule,
    MultiSeedResult,
    MultiSeedSearch,
    QSDNNSearch,
    SearchConfig,
    SearchResult,
    seed_range,
)
from repro.engine import (
    CostEngine,
    InferenceEngineOptimizer,
    LatencyTable,
    NetworkSchedule,
    Profiler,
)
from repro.hw import Platform, ProcessorKind, jetson_tx2, jetson_tx2_maxn, raspberry_pi3
from repro.nn import NetworkBuilder, NetworkGraph, TensorShape
from repro.zoo import TABLE2_NETWORKS, available_networks, build_network

__version__ = "1.0.0"

__all__ = [
    "Mode",
    "Layout",
    "DesignSpace",
    "cpu_space",
    "gpgpu_space",
    "design_space",
    "random_search",
    "best_single_library",
    "single_library_results",
    "greedy_per_layer",
    "brute_force",
    "chain_dp",
    "cross_entropy_method",
    "genetic_search",
    "pbqp_solve",
    "EpsilonSchedule",
    "MultiSeedResult",
    "MultiSeedSearch",
    "seed_range",
    "QSDNNSearch",
    "SearchConfig",
    "SearchResult",
    "CostEngine",
    "InferenceEngineOptimizer",
    "LatencyTable",
    "NetworkSchedule",
    "Profiler",
    "Platform",
    "ProcessorKind",
    "jetson_tx2",
    "jetson_tx2_maxn",
    "raspberry_pi3",
    "NetworkBuilder",
    "NetworkGraph",
    "TensorShape",
    "build_network",
    "available_networks",
    "TABLE2_NETWORKS",
    "__version__",
]
