"""Command-line interface: the QS-DNN flow without writing Python.

    python -m repro networks
    python -m repro summary  --network mobilenet_v1
    python -m repro profile  --network lenet5 --mode gpgpu --out lut.json
    python -m repro search   --lut lut.json --episodes 1000 --out sched.json
    python -m repro search   --lut lut.json --seeds 8      # lockstep sweep
    python -m repro cem      --network lenet5 --mode gpgpu
    python -m repro ga       --network lenet5 --mode gpgpu
    python -m repro compare  --network lenet5 --mode gpgpu
    python -m repro table2   --mode cpu --networks lenet5 alexnet
    python -m repro campaign --networks lenet5 alexnet --modes cpu gpgpu \
        --seeds 0 1 2 --jobs 4 --cache-dir .repro-cache
    python -m repro serve    --port 8421 --workers 2 --store results.sqlite
    python -m repro submit   --network lenet5 --mode gpgpu --wait --watch
    python -m repro campaign --networks lenet5 --cache-dir .repro-cache \
        --cache-remote http://fleet-cache:8421     # fetch LUTs from the fleet
    python -m repro lut-cache stats --cache-dir .repro-cache
    python -m repro lut-cache push  --cache-dir .repro-cache \
        --url http://fleet-cache:8421
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.compare import compare_methods
from repro.analysis.speedup import auto_episodes, render_table2, run_table2
from repro.backends.registry import Mode
from repro.core.config import SearchConfig
from repro.core.priors import WARM_START_CHOICES
from repro.core.search import QSDNNSearch
from repro.engine.lut import LatencyTable
from repro.engine.optimizer import InferenceEngineOptimizer
from repro.nn.summary import summarize
from repro.runtime.campaign import JOB_KINDS
from repro.runtime.campaign import PLATFORM_FACTORIES as PLATFORMS
from repro.utils.fsio import atomic_write_text
from repro.utils.units import format_ms
from repro.zoo import TABLE2_NETWORKS, available_networks, build_network


def _mode(text: str) -> Mode:
    return Mode(text.lower())


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1.

    ``--episodes 0`` used to slip through ``args.episodes or auto``
    as falsy and silently run the auto budget; rejecting it at parse
    time makes the mistake loud.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--platform", choices=sorted(PLATFORMS), default="jetson_tx2",
        help="target platform model",
    )
    parser.add_argument(
        "--mode", type=_mode, choices=list(Mode), default=Mode.CPU,
        help="design-space mode (cpu or gpgpu)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def cmd_networks(_args: argparse.Namespace) -> int:
    from repro.utils.tables import AsciiTable
    from repro.utils.units import gflops, mbytes

    table = AsciiTable(["network", "layers", "GFLOPs", "params (MiB)"])
    for name in available_networks():
        net = build_network(name)
        table.add_row(
            [
                name,
                len(net.layers()),
                f"{gflops(net.total_flops()):.3f}",
                f"{mbytes(net.total_weight_bytes()):.2f}",
            ]
        )
    print(table.render())
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    print(summarize(build_network(args.network)))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    platform = PLATFORMS[args.platform]()
    graph = build_network(args.network)
    optimizer = InferenceEngineOptimizer(
        graph, platform, mode=args.mode, seed=args.seed, repeats=args.repeats
    )
    lut = optimizer.profile()
    report = optimizer.profiling_report
    atomic_write_text(args.out, lut.to_json())
    print(
        f"profiled {args.network} on {platform.name} ({args.mode}): "
        f"{report.network_inferences} network passes + "
        f"{report.compatibility_passes} compatibility pass -> {args.out}"
    )
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    from repro.engine.validate import validate_lut

    lut = LatencyTable.from_json(Path(args.lut).read_text())
    validate_lut(lut)
    # Same per-network auto budget as campaign/table2 jobs.
    episodes = (
        auto_episodes(len(lut.layers)) if args.episodes is None else args.episodes
    )
    config = SearchConfig(
        episodes=episodes,
        seed=args.seed,
        polish_sweeps=0 if args.no_polish else 2,
        kernel=args.kernel,
        warm_start=args.warm_start,
    )
    prior = None
    if args.warm_start != "off" and args.warm_store:
        from repro.core.priors import make_prior
        from repro.runtime.lutcache import open_cache
        from repro.runtime.store import ResultStore

        cache = open_cache(args.warm_cache_dir)
        prior = make_prior(
            args.warm_start,
            ResultStore(args.warm_store),
            cache.peek if cache is not None else None,
        )
    anytime: dict = {}
    if args.checkpoint_every:
        if not args.checkpoint_file:
            print("--checkpoint-every requires --checkpoint-file",
                  file=sys.stderr)
            return 2
        from repro.core.checkpoint import encode_checkpoint

        def on_checkpoint(ckpt: dict, _path=args.checkpoint_file) -> bool:
            atomic_write_text(_path, encode_checkpoint(ckpt))
            return True

        anytime["checkpoint_every"] = args.checkpoint_every
        anytime["on_checkpoint"] = on_checkpoint
    if args.resume_from:
        from repro.core.checkpoint import decode_checkpoint

        anytime["resume"] = decode_checkpoint(
            Path(args.resume_from).read_text()
        )
    if args.seeds > 1:
        from repro.core import MultiSeedSearch, seed_range

        from repro.utils.proc import peak_rss_mb

        sweep = MultiSeedSearch(
            lut, config, seeds=seed_range(args.seed, args.seeds), prior=prior
        ).run(**anytime)
        for member in sweep.results:
            print(member.summary())
        print(f"{sweep.summary()}, peak RSS {peak_rss_mb():.0f} MB")
        result = sweep.best
    else:
        result = QSDNNSearch(lut, config, prior=prior).run(**anytime)
        print(result.summary())
    if args.out:
        payload = {
            "graph": result.graph_name,
            "method": result.method,
            "total_ms": result.best_ms,
            "assignments": result.best_assignments,
        }
        atomic_write_text(args.out, json.dumps(payload, indent=2))
        print(f"schedule -> {args.out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    platform = PLATFORMS[args.platform]()
    graph = build_network(args.network)
    optimizer = InferenceEngineOptimizer(
        graph, platform, mode=args.mode, seed=args.seed
    )
    lut = optimizer.profile()
    episodes = (
        auto_episodes(len(lut.layers)) if args.episodes is None else args.episodes
    )
    print(
        compare_methods(
            lut, episodes=episodes, seed=args.seed, approx=args.approx
        ).render()
    )
    return 0


def _run_population_baseline(args: argparse.Namespace, runner) -> int:
    """Profile a network and run one population-based baseline on it."""
    platform = PLATFORMS[args.platform]()
    graph = build_network(args.network)
    lut = InferenceEngineOptimizer(
        graph, platform, mode=args.mode, seed=args.seed
    ).profile()
    # Same auto budget as campaign cem/ga jobs (apples-to-apples).
    episodes = (
        auto_episodes(len(lut.layers)) if args.episodes is None else args.episodes
    )
    result = runner(
        lut, episodes=episodes, seed=args.seed, population=args.population
    )
    print(result.summary())
    if args.out:
        payload = {
            "graph": result.graph_name,
            "method": result.method,
            "total_ms": result.best_ms,
            "assignments": result.best_assignments,
        }
        atomic_write_text(args.out, json.dumps(payload, indent=2))
        print(f"schedule -> {args.out}")
    return 0


def _run_approx_q(args: argparse.Namespace, search_cls, config_cls) -> int:
    """Profile a network and run one value-function-approximation agent."""
    platform = PLATFORMS[args.platform]()
    graph = build_network(args.network)
    lut = InferenceEngineOptimizer(
        graph, platform, mode=args.mode, seed=args.seed
    ).profile()
    episodes = (
        auto_episodes(len(lut.layers)) if args.episodes is None else args.episodes
    )
    result = search_cls(
        lut, config_cls(episodes=episodes, seed=args.seed)
    ).run()
    print(result.summary())
    if args.out:
        payload = {
            "graph": result.graph_name,
            "method": result.method,
            "total_ms": result.best_ms,
            "assignments": result.best_assignments,
        }
        atomic_write_text(args.out, json.dumps(payload, indent=2))
        print(f"schedule -> {args.out}")
    return 0


def cmd_linear_q(args: argparse.Namespace) -> int:
    from repro.ext.linear_q import LinearQConfig, LinearQSearch

    return _run_approx_q(args, LinearQSearch, LinearQConfig)


def cmd_mlp_q(args: argparse.Namespace) -> int:
    from repro.ext.mlp_q import MLPQConfig, MLPQSearch

    return _run_approx_q(args, MLPQSearch, MLPQConfig)


def cmd_cem(args: argparse.Namespace) -> int:
    from repro.baselines import cross_entropy_method

    return _run_population_baseline(args, cross_entropy_method)


def cmd_ga(args: argparse.Namespace) -> int:
    from repro.baselines import genetic_search

    return _run_population_baseline(args, genetic_search)


def cmd_table2(args: argparse.Namespace) -> int:
    platform = PLATFORMS[args.platform]()
    networks = args.networks or list(TABLE2_NETWORKS)
    rows = run_table2(
        networks,
        args.mode,
        platform,
        episodes=args.episodes,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache_remote=args.cache_remote,
    )
    print(
        render_table2(
            rows, title=f"Table II ({args.mode} mode) on {platform.name}"
        )
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    import time
    from dataclasses import asdict

    from repro.runtime.campaign import Campaign, grid

    networks = args.networks or list(TABLE2_NETWORKS)
    jobs = grid(
        networks,
        platforms=args.platforms,
        modes=[str(m) for m in args.modes],
        seeds=args.seeds,
        episodes=args.episodes,
        kind=args.kind,
        seeds_per_job=args.seeds_per_job,
        kernel=args.kernel,
        warm_start=args.warm_start,
    )
    campaign = Campaign(
        jobs,
        workers=args.jobs,
        cache_dir=args.cache_dir,
        cache_remote=args.cache_remote,
        warm_store=args.warm_store,
    )
    started = time.perf_counter()
    results = campaign.run()
    wall = time.perf_counter() - started

    if args.kind == "table2":
        # One rendered Table II block per (platform, mode) shard.
        blocks: dict[tuple[str, str, int], list] = {}
        for result in results:
            key = (result.job.platform, result.job.mode, result.job.seed)
            blocks.setdefault(key, []).append(result.payload)
        for (platform, mode, seed), rows in blocks.items():
            print(
                render_table2(
                    rows,
                    title=f"Table II ({mode} mode) on {platform} [seed {seed}]",
                )
            )
    else:
        for result in results:
            payload = result.payload
            render = getattr(payload, "render", None)
            print(render() if render is not None else payload.summary())

    from repro.core.multi_seed import MultiSeedResult
    from repro.utils.proc import peak_rss_mb

    cached = sum(1 for r in results if r.lut_from_cache)
    busy = sum(r.wall_clock_s for r in results)
    line = (
        f"campaign: {len(results)} jobs on {args.jobs} worker(s) in {wall:.1f}s "
        f"({busy:.1f}s aggregate, {cached} LUT cache hit(s)"
    )
    swept = sum(
        len(r.payload.results)
        for r in results
        if isinstance(r.payload, MultiSeedResult)
    )
    if swept and wall > 0:
        line += f", {swept / wall:.0f} seeds/s"
    print(line + f", peak RSS {peak_rss_mb():.0f} MB)")
    if args.out:
        payload = [
            {
                "job": asdict(result.job),
                "wall_clock_s": result.wall_clock_s,
                "lut_from_cache": result.lut_from_cache,
                "result": asdict(result.payload),
            }
            for result in results
        ]
        # default=str covers the few non-JSON leaves (epsilon schedules
        # inside multi-seed member configs).
        atomic_write_text(args.out, json.dumps(payload, indent=2, default=str))
        print(f"results -> {args.out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.config import ServiceConfig
    from repro.runtime.service import run_service

    return run_service(
        ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_limit=args.queue_limit,
            store_path=args.store,
            cache_dir=args.cache_dir,
            cache_remote=args.cache_remote,
            lease_ttl_s=args.lease_ttl,
            lease_check_s=args.lease_check,
            max_lease_retries=args.max_lease_retries,
            quota_jobs=args.quota_jobs,
            rate_limit_per_s=args.rate_limit,
            rate_burst=args.rate_burst,
            drain_timeout_s=args.drain_timeout,
            lease_batch_limit=args.lease_batch_limit,
            store_group_commit=args.store_group_commit,
            store_wal=not args.store_no_wal,
            checkpoint_every=args.checkpoint_every,
            checkpoint_ttl_s=args.checkpoint_ttl,
        )
    )


def cmd_work(args: argparse.Namespace) -> int:
    from repro.runtime.worker import WorkerConfig, run_worker

    return run_worker(
        WorkerConfig(
            server=args.server,
            name=args.name,
            cache_dir=args.cache_dir,
            cache_remote=args.cache_remote,
            poll_s=args.poll,
            max_jobs=args.max_jobs,
            lease_batch=args.lease_batch,
        )
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.runtime.client import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)
    body = {
        "network": args.network,
        "platform": args.platform,
        "mode": str(args.mode),
        "seed": args.seed,
        "kind": args.kind,
        "kernel": args.kernel,
        "priority": args.priority,
    }
    if args.episodes is not None:
        body["episodes"] = args.episodes
    if args.kind == "multi-seed":
        body["seeds"] = args.seeds_per_job
    if args.resume:
        body["resume"] = True
    if args.warm_start != "off":
        body["warm_start"] = args.warm_start
    records = client.submit(body)
    for record in records:
        print(f"{record['id']} {record['state']} {record['key']}")
    if not (args.wait or args.watch):
        return 0
    exit_code = 0
    for record in records:
        job_id = record["id"]
        if args.watch:
            for event, data in client.stream_progress(job_id):
                if event in ("checkpoint", "progress"):
                    print(
                        f"{job_id} episode {data['episode']}: "
                        f"best {format_ms(data['best_ms'])}"
                    )
                elif event in ("done", "failed", "cancelled"):
                    print(f"{job_id} {event}: {json.dumps(data)}")
        final = client.wait(job_id, timeout=args.timeout)
        if final["state"] != "done":
            print(f"{job_id} {final['state']}: {final.get('error')}")
            exit_code = 1
            continue
        best = final.get("best_ms")
        print(
            f"{job_id} done: best_ms={best!r} "
            f"({final['wall_clock_s']:.2f}s, "
            f"from_store={final['from_store']})"
        )
        if args.out:
            atomic_write_text(args.out, json.dumps(final, indent=2))
            print(f"result -> {args.out}")
    return exit_code


def _key_selected(key, args: argparse.Namespace) -> bool:
    """Whether a shard key passes the optional CLI filters."""
    if getattr(args, "platform", None) and key.platform != args.platform:
        return False
    if getattr(args, "network", None) and key.network != args.network:
        return False
    if getattr(args, "mode", None) and key.mode != str(args.mode):
        return False
    return True


def cmd_lut_cache_stats(args: argparse.Namespace) -> int:
    from repro import __version__
    from repro.runtime.lutcache import LocalTier
    from repro.utils.tables import AsciiTable

    tier = LocalTier(args.cache_dir)
    stats = tier.stats()
    table = AsciiTable(["shard", "entries", "KiB", "versions"])
    for stat in stats:
        table.add_row(
            [
                stat.shard,
                stat.entries,
                f"{stat.bytes / 1024:.1f}",
                ",".join(sorted(stat.versions)),
            ]
        )
    print(table.render())
    entries = sum(s.entries for s in stats)
    total = sum(s.bytes for s in stats)
    stale = sum(
        1 for s in stats for v in s.versions if v != __version__
    )
    print(
        f"lut-cache: {entries} entr{'y' if entries == 1 else 'ies'} in "
        f"{len(stats)} shard(s), {total / 1024:.1f} KiB "
        f"(current version v{__version__}"
        + (f"; {stale} shard version(s) stale — run gc)" if stale else ")")
    )
    return 0


def cmd_lut_cache_gc(args: argparse.Namespace) -> int:
    from repro import __version__
    from repro.runtime.lutcache import LocalTier

    removed, reclaimed = LocalTier(args.cache_dir).gc(keep_version=__version__)
    print(
        f"lut-cache gc: removed {removed} file(s), reclaimed "
        f"{reclaimed / 1024:.1f} KiB (kept v{__version__} entries)"
    )
    return 0


def cmd_lut_cache_push(args: argparse.Namespace) -> int:
    from repro.errors import LutCacheError, ServiceError
    from repro.runtime.lutcache import LocalTier, RemoteTier

    local = LocalTier(args.cache_dir)
    remote = RemoteTier(args.url)
    pushed = 0
    try:
        for key in local.keys():
            if not _key_selected(key, args):
                continue
            remote.put(key, local.get(key))
            print(f"pushed {key.shard}/{key.filename}")
            pushed += 1
    except (LutCacheError, ServiceError) as error:
        print(f"lut-cache push failed after {pushed} entr(ies): {error}")
        return 1
    print(f"lut-cache push: {pushed} entr(ies) -> {args.url}")
    return 0


def cmd_lut_cache_prefetch(args: argparse.Namespace) -> int:
    from repro.errors import LutCacheError, ServiceError
    from repro.runtime.lutcache import LocalTier, RemoteTier, validate_entry

    local = LocalTier(args.cache_dir)
    remote = RemoteTier(args.url)
    fetched = present = 0
    try:
        for key in remote.keys():
            if not _key_selected(key, args):
                continue
            if local.path_for(key).exists():
                present += 1
                continue
            text = remote.get(key)
            if text is None:  # raced a remote gc; not an error
                continue
            validate_entry(text, key)
            local.put(key, text)
            print(f"fetched {key.shard}/{key.filename}")
            fetched += 1
    except (LutCacheError, ServiceError) as error:
        print(f"lut-cache prefetch failed after {fetched} entr(ies): {error}")
        return 1
    print(
        f"lut-cache prefetch: {fetched} fetched, {present} already local "
        f"<- {args.url}"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import full_report

    platform = PLATFORMS[args.platform]()
    networks = args.networks or list(TABLE2_NETWORKS)
    cpu_rows = run_table2(
        networks, Mode.CPU, platform, episodes=args.episodes, seed=args.seed
    )
    gpgpu_rows = run_table2(
        networks, Mode.GPGPU, platform, episodes=args.episodes, seed=args.seed
    )
    report = full_report(cpu_rows, gpgpu_rows, platform.name, args.seed)
    atomic_write_text(args.out, report)
    print(f"report -> {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QS-DNN: RL-based DNN primitive selection (DATE'19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("networks", help="list zoo networks").set_defaults(
        func=cmd_networks
    )

    p = sub.add_parser("summary", help="per-layer summary of one network")
    p.add_argument("--network", required=True, choices=available_networks())
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("profile", help="run the inference phase, save the LUT")
    p.add_argument("--network", required=True, choices=available_networks())
    _add_platform_args(p)
    p.add_argument("--repeats", type=_positive_int, default=50,
                   help="measurements per primitive (paper: 50)")
    p.add_argument("--out", default="lut.json", help="output LUT path")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("search", help="run QS-DNN over a saved LUT")
    p.add_argument("--lut", required=True, help="LUT JSON from 'profile'")
    p.add_argument("--episodes", type=_positive_int, default=None,
                   help="episode budget (default: max(1000, 25 x layers))")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-polish", action="store_true",
                   help="raw Algorithm 1 output, no local refinement")
    p.add_argument("--seeds", type=_positive_int, default=1,
                   help="run K consecutive seeds in one lockstep sweep "
                        "(batched pricing; results identical to K runs)")
    p.add_argument("--kernel",
                   choices=["auto", "numba", "reference", "mega"],
                   default="auto",
                   help="episode-kernel backend (auto: numba when "
                        "installed, and the mega batch path once --seeds "
                        "is large; results are bit-identical either way)")
    p.add_argument("--checkpoint-every", type=_positive_int, default=None,
                   help="write an anytime checkpoint every N episodes "
                        "(requires --checkpoint-file)")
    p.add_argument("--checkpoint-file", default=None,
                   help="checkpoint path, atomically rewritten at every "
                        "boundary; feed it back via --resume-from")
    p.add_argument("--resume-from", default=None,
                   help="resume from a saved checkpoint file — the "
                        "completed run is bitwise-identical to an "
                        "uninterrupted one")
    p.add_argument("--warm-start", choices=list(WARM_START_CHOICES),
                   default="off",
                   help="seed the Q table from the result corpus: 'stored' "
                        "replays this scenario's best stored schedule, "
                        "'surrogate' fits a cross-network cost surrogate "
                        "(off: bitwise-identical to a cold run)")
    p.add_argument("--warm-store", default=None,
                   help="result-store sqlite path the prior is mined from "
                        "(warm starts are skipped without it)")
    p.add_argument("--warm-cache-dir", default=None,
                   help="LUT cache tier harvested for surrogate training "
                        "pairs (--warm-start surrogate only)")
    p.add_argument("--out", default=None, help="save the schedule as JSON")
    p.set_defaults(func=cmd_search)

    for name, func, blurb in (
        ("linear-q", cmd_linear_q,
         "linear Q approximation baseline over one network's LUT"),
        ("mlp-q", cmd_mlp_q,
         "MLP Q approximation baseline over one network's LUT"),
    ):
        p = sub.add_parser(name, help=blurb)
        p.add_argument("--network", required=True, choices=available_networks())
        _add_platform_args(p)
        p.add_argument("--episodes", type=_positive_int, default=None,
                       help="episode budget (default: max(1000, 25 x layers))")
        p.add_argument("--out", default=None, help="save the schedule as JSON")
        p.set_defaults(func=func)

    for name, func, blurb in (
        ("cem", cmd_cem, "cross-entropy method over one network's LUT"),
        ("ga", cmd_ga, "genetic algorithm over one network's LUT"),
    ):
        p = sub.add_parser(name, help=blurb)
        p.add_argument("--network", required=True, choices=available_networks())
        _add_platform_args(p)
        p.add_argument("--episodes", type=_positive_int, default=None,
                       help="evaluation budget (default: max(1000, 25 x layers))")
        p.add_argument("--population", type=_positive_int, default=64,
                       help="schedules priced per generation")
        p.add_argument("--out", default=None, help="save the schedule as JSON")
        p.set_defaults(func=func)

    p = sub.add_parser("compare", help="all search methods on one network")
    p.add_argument("--network", required=True, choices=available_networks())
    _add_platform_args(p)
    p.add_argument("--episodes", type=_positive_int, default=None)
    p.add_argument("--approx", action="store_true",
                   help="also price the approximate-Q baselines "
                        "(linear-q, mlp-q) on the same LUT")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("table2", help="regenerate Table II rows")
    p.add_argument("--networks", nargs="*", default=None,
                   choices=available_networks())
    _add_platform_args(p)
    p.add_argument("--episodes", type=_positive_int, default=None)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (one network cell per job)")
    p.add_argument("--cache-dir", default=None,
                   help="local LUT cache tier directory")
    p.add_argument("--cache-remote", default=None,
                   help="remote LUT shard server URL (a `repro serve` "
                        "instance with --cache-dir)")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser(
        "campaign",
        help="run a (network x platform x mode x seed) search campaign",
    )
    p.add_argument("--networks", nargs="*", default=None,
                   choices=available_networks(),
                   help="networks (default: the Table II set)")
    p.add_argument("--platforms", nargs="*", default=["jetson_tx2"],
                   choices=sorted(PLATFORMS))
    p.add_argument("--modes", nargs="*", type=_mode, default=[Mode.CPU],
                   help="design-space modes (cpu and/or gpgpu)")
    p.add_argument("--seeds", nargs="*", type=int, default=[0])
    p.add_argument("--episodes", type=_positive_int, default=None,
                   help="episode budget (default: per-network auto)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes to shard jobs across")
    p.add_argument("--cache-dir", default=None,
                   help="local LUT cache tier directory")
    p.add_argument("--cache-remote", default=None,
                   help="remote LUT shard server URL (a `repro serve` "
                        "instance with --cache-dir)")
    p.add_argument("--kind", choices=list(JOB_KINDS), default="table2",
                   help="payload per job: Table II row, full comparison, "
                        "a population baseline, or a multi-seed sweep")
    p.add_argument("--seeds-per-job", type=_positive_int, default=8,
                   help="K of each multi-seed job (kind=multi-seed only; "
                        "large K auto-routes through the mega batch "
                        "kernel when numba is installed)")
    p.add_argument("--kernel",
                   choices=["auto", "numba", "reference", "mega"],
                   default="auto",
                   help="episode-kernel backend of every job's searches")
    p.add_argument("--warm-start", choices=list(WARM_START_CHOICES),
                   default="off",
                   help="Q-prior warm starts for search/multi-seed jobs, "
                        "mined from --warm-store (off: cold, bitwise "
                        "pre-PR behaviour)")
    p.add_argument("--warm-store", default=None,
                   help="result-store sqlite path priors are mined from")
    p.add_argument("--out", default=None, help="save all results as JSON")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the async campaign service (job queue + result store)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8421,
                   help="TCP port (0: let the OS pick; printed at startup)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes draining the job queue")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="queued-job cap before POST /jobs answers 429")
    p.add_argument("--store", default=None,
                   help="sqlite result-store path (default: in-memory)")
    p.add_argument("--cache-dir", default=None,
                   help="local LUT cache tier shared by workers — also "
                        "the shard tree served over GET/PUT /luts")
    p.add_argument("--cache-remote", default=None,
                   help="upstream LUT shard server chained behind the "
                        "local tier")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   help="seconds a fleet worker's lease survives without "
                        "a heartbeat before its job is requeued")
    p.add_argument("--lease-check", type=float, default=1.0,
                   help="seconds between lease-reaper sweeps")
    p.add_argument("--max-lease-retries", type=_positive_int, default=3,
                   help="lease grants per job before a further expiry "
                        "marks it failed")
    p.add_argument("--quota-jobs", type=int, default=0,
                   help="per-tenant cap on active jobs (0: unlimited)")
    p.add_argument("--rate-limit", type=float, default=0.0,
                   help="per-tenant POST /jobs requests per second "
                        "(0: unlimited)")
    p.add_argument("--rate-burst", type=_positive_int, default=10,
                   help="token-bucket burst size of the rate limit")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds shutdown waits for outstanding fleet "
                        "leases before releasing them")
    p.add_argument("--lease-batch-limit", type=_positive_int, default=64,
                   help="max jobs one POST /leases may claim (clamps "
                        "the worker's max_jobs request)")
    p.add_argument("--store-group-commit", type=int, default=0,
                   help="buffer up to N result rows per sqlite commit "
                        "(0: commit every result immediately)")
    p.add_argument("--store-no-wal", action="store_true",
                   help="disable WAL mode on the file-backed result "
                        "store (full per-write fsync durability)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="snapshot running search jobs every N episodes "
                        "(anytime search: live progress, DELETE "
                        "preemption, crash recovery, submit --resume; "
                        "0 disables)")
    p.add_argument("--checkpoint-ttl", type=float, default=3600.0,
                   help="seconds a stale persisted checkpoint survives "
                        "before the reaper garbage-collects it")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "work",
        help="run a fleet worker against a campaign service",
    )
    p.add_argument("--server", required=True,
                   help="campaign-service URL (repro serve prints it)")
    p.add_argument("--name", default=None,
                   help="worker name shown in GET /workers and metrics")
    p.add_argument("--cache-dir", default=None,
                   help="local LUT cache tier for executed jobs")
    p.add_argument("--cache-remote", default=None,
                   help="remote LUT shard server chained behind the "
                        "local tier")
    p.add_argument("--poll", type=float, default=0.5,
                   help="seconds between lease polls on an empty queue")
    p.add_argument("--max-jobs", type=int, default=0,
                   help="exit after this many executed jobs (0: run "
                        "until the service goes away)")
    p.add_argument("--lease-batch", type=_positive_int, default=1,
                   help="jobs to claim per lease (batched leasing; "
                        "results are delivered in one request)")
    p.set_defaults(func=cmd_work)

    p = sub.add_parser(
        "submit", help="submit a search scenario to a running service"
    )
    p.add_argument("--url", default="http://127.0.0.1:8421",
                   help="service address (repro serve prints it)")
    p.add_argument("--network", required=True, choices=available_networks())
    _add_platform_args(p)
    p.add_argument("--episodes", type=_positive_int, default=None,
                   help="episode budget (default: per-network auto)")
    p.add_argument("--kind", choices=list(JOB_KINDS), default="search",
                   help="job payload (default: a plain QS-DNN search)")
    p.add_argument("--kernel",
                   choices=["auto", "numba", "reference", "mega"],
                   default="auto", help="episode-kernel backend")
    p.add_argument("--seeds-per-job", type=_positive_int, default=8,
                   help="K of a multi-seed job (kind=multi-seed only)")
    p.add_argument("--priority", type=int, default=10,
                   help="queue priority (lower runs first)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the job's persisted checkpoint if "
                        "one exists (from a preempted or crashed prior "
                        "run); completes bitwise-identical to an "
                        "uninterrupted run")
    p.add_argument("--warm-start", choices=list(WARM_START_CHOICES),
                   default="off",
                   help="ask the service to seed the job's Q table from "
                        "its result corpus (off: cold start)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes, print the result")
    p.add_argument("--watch", action="store_true",
                   help="stream progress checkpoints while waiting")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for completion")
    p.add_argument("--out", default=None,
                   help="save the final job record as JSON")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "lut-cache",
        help="inspect and sync the tiered LUT shard cache",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    s = cache_sub.add_parser(
        "stats", help="per-shard entry counts, bytes and versions"
    )
    s.add_argument("--cache-dir", required=True,
                   help="local LUT cache tier directory")
    s.set_defaults(func=cmd_lut_cache_stats)

    s = cache_sub.add_parser(
        "gc", help="drop other-version entries and orphaned temp files"
    )
    s.add_argument("--cache-dir", required=True,
                   help="local LUT cache tier directory")
    s.set_defaults(func=cmd_lut_cache_gc)

    for name, func, blurb in (
        ("push", cmd_lut_cache_push,
         "upload local shard entries to a remote shard server"),
        ("prefetch", cmd_lut_cache_prefetch,
         "download a remote server's shard entries into the local tier"),
    ):
        s = cache_sub.add_parser(name, help=blurb)
        s.add_argument("--cache-dir", required=True,
                       help="local LUT cache tier directory")
        s.add_argument("--url", required=True,
                       help="shard server address (repro serve prints it)")
        s.add_argument("--platform", default=None,
                       help="only this platform's shards")
        s.add_argument("--network", default=None,
                       help="only this network's shards")
        s.add_argument("--mode", default=None,
                       help="only entries of this design-space mode")
        s.set_defaults(func=func)

    p = sub.add_parser(
        "report", help="full markdown reproduction report (both modes)"
    )
    p.add_argument("--networks", nargs="*", default=None,
                   choices=available_networks())
    _add_platform_args(p)
    p.add_argument("--episodes", type=_positive_int, default=None)
    p.add_argument("--out", default="report.md")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
