"""Exception hierarchy for the QS-DNN reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A network graph is structurally invalid.

    Raised for cycles, dangling edges, duplicate layer names, or shape
    mismatches discovered during graph validation.
    """


class ShapeError(GraphError):
    """Tensor shapes are inconsistent with a layer's hyper-parameters."""


class UnknownLayerError(GraphError):
    """A layer name was looked up that does not exist in the graph."""


class BackendError(ReproError):
    """A primitive or library was used outside its declared coverage."""


class UnsupportedLayerError(BackendError):
    """A primitive was asked to execute a layer kind it does not support."""


class NoPrimitiveError(BackendError):
    """No primitive in the active design space can execute a layer.

    Every design space must provide at least one implementation per layer;
    the Vanilla library exists precisely to guarantee this.  Hitting this
    error means the registry was constructed without Vanilla coverage.
    """


class PlatformError(ReproError):
    """A hardware model was configured inconsistently."""


class ProfilingError(ReproError):
    """The inference phase failed to produce a complete look-up table."""


class LookupError_(ProfilingError):
    """A (layer, primitive) pair is missing from the latency table."""


class ScheduleError(ReproError):
    """A network schedule is incomplete or references unknown primitives."""


class SearchError(ReproError):
    """The RL search was configured inconsistently.

    Examples: an epsilon schedule whose episode counts do not add up, a
    non-positive learning rate, or an empty action set for some layer.
    """


class ConfigError(ReproError):
    """A user-supplied configuration value is out of its legal range."""


class CheckpointError(ConfigError):
    """A search checkpoint is malformed or mismatches the run.

    Raised when a checkpoint's format version is unknown (loud
    rejection beats silently resuming under different semantics), or
    when its identity fields (kind/graph/episodes/seeds) disagree with
    the search it was handed to — resuming it would answer a different
    question.
    """


class PreemptedError(ReproError):
    """A search stopped at a checkpoint boundary on request.

    Carries the checkpoint captured at the boundary in
    :attr:`checkpoint` (the JSON-safe dict of
    :mod:`repro.core.checkpoint`); resuming from it finishes
    bitwise-identical to the uninterrupted run.  Raised when a
    checkpoint callback returns ``False`` — a cancel flag, a revoked
    lease — never spontaneously.
    """

    def __init__(self, checkpoint: dict) -> None:
        episode = checkpoint.get("episode", "?")
        super().__init__(f"search preempted at episode {episode}")
        self.checkpoint = checkpoint

    def __reduce__(self):
        # Keep the exception picklable across ProcessPoolExecutor with
        # the checkpoint intact (the default reduce replays ``args``,
        # which holds the message, not the checkpoint).
        return (type(self), (self.checkpoint,))


class LutCacheError(ReproError):
    """A tiered LUT-cache entry is corrupt or mismatches its key.

    Raised when a fetched shard entry does not parse as a LUT, or when
    its identity fields (network/platform/mode) disagree with the key
    it was resolved under — serving it would price a different
    scenario.  Missing entries are not errors (they fall through to the
    next tier, ultimately profiling on miss).
    """


class ServiceError(ReproError):
    """The campaign service rejected a request or is unavailable."""


class QueueFullError(ServiceError):
    """The service's job queue hit its depth limit (HTTP 429).

    Back-pressure, not failure: re-submit after running jobs drain, or
    run the service with a larger ``--queue-limit``.
    """


class QuotaExceededError(QueueFullError):
    """A tenant exceeded its admission quota or rate limit (HTTP 429).

    Carries ``retry_after_s`` — the earliest moment a retry can
    succeed (token-bucket refill time, or "when running jobs drain"
    for admission quotas).  Like its parent, this is back-pressure:
    the request was well-formed, the fleet is just protecting itself.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class LeaseError(ServiceError):
    """A worker-protocol request violated the lease state machine."""


class LeaseExpiredError(LeaseError):
    """The lease a worker acted on is no longer active (HTTP 409).

    Heartbeats and result submissions after expiry answer 409: the
    job has been requeued (or finished elsewhere), so the worker must
    discard its work and lease afresh.
    """
