"""MobileNet-v1 with depth-wise separable convolutions.

MobileNet is the paper's showcase for heterogeneous mixing (§VI-A): the
learned schedule combines ArmCL's NEON depth-wise kernels (CPU), cuDNN
point-wise convolutions (GPU) and Vanilla ReLU / BatchNorm in between to
avoid extra round-trips to the GPU — over 1.4x faster than cuDNN alone.
Fig. 5's RL-vs-RS study also runs on this network.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape

#: (stride, output channels) of the 13 separable blocks at width 1.0.
_BLOCKS = (
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
)


def mobilenet_v1(width_multiplier: float = 1.0) -> NetworkGraph:
    """MobileNet-v1 (224x224 RGB input).

    ``width_multiplier`` scales every channel count (the paper's alpha),
    enabling the reduced variants (0.75 / 0.5 / 0.25) as an extension.
    """
    if not 0.0 < width_multiplier <= 1.0:
        raise ConfigError(f"width_multiplier must be in (0, 1], got {width_multiplier}")

    def scaled(channels: int) -> int:
        """Channel count under the width multiplier (floor 8)."""
        return max(8, int(round(channels * width_multiplier)))

    suffix = "" if width_multiplier == 1.0 else f"_{width_multiplier:g}"
    b = NetworkBuilder(f"mobilenet_v1{suffix}", TensorShape(3, 224, 224))
    b.conv_bn_relu("conv1", out_channels=scaled(32), kernel=3, stride=2, padding=1)
    for i, (stride, channels) in enumerate(_BLOCKS, start=1):
        b.dw_bn_relu(f"conv{i}_dw", kernel=3, stride=stride, padding=1)
        b.conv_bn_relu(f"conv{i}_pw", out_channels=scaled(channels), kernel=1)
    b.global_pool_avg("pool6")
    b.fc("fc7", out_channels=1000)
    b.softmax("prob")
    return b.build()
