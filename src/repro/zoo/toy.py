"""The 3-layer toy network of the paper's Fig. 1.

Fig. 1 illustrates why greedy per-layer selection fails: the path through
the *fastest intermediate implementation* (red) loses to the globally
fastest path (blue) once layout/processor conversion penalties are
charged.  This network is small enough for exhaustive enumeration, so the
Fig. 1 experiment verifies QS-DNN against the brute-force optimum.
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape


def fig1_network() -> NetworkGraph:
    """Three convolution layers on a small feature map (Fig. 1)."""
    b = NetworkBuilder("fig1_toy", TensorShape(8, 32, 32))
    b.conv("layer1", out_channels=16, kernel=3, padding=1)
    b.conv("layer2", out_channels=16, kernel=3, padding=1)
    b.conv("layer3", out_channels=8, kernel=3, padding=1)
    return b.build()
