"""AlexNet, the Caffe (BVLC) single-column deployment.

AlexNet matters for the GPGPU story: its fc6/fc7 layers hold ~59 M
parameters, and cuDNN *has no fully-connected primitive* (paper §III-B),
so the best-single-library cuDNN schedule pays for Vanilla FC on the CPU.
QS-DNN learns to route FC through cuBLAS GEMV instead (paper §VI-A).
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape


def alexnet() -> NetworkGraph:
    """AlexNet (227x227 RGB input, grouped convs flattened to dense)."""
    b = NetworkBuilder("alexnet", TensorShape(3, 227, 227))
    b.conv("conv1", out_channels=96, kernel=11, stride=4)   # 96 x 55 x 55
    b.relu("relu1")
    b.lrn("norm1")
    b.pool_max("pool1", kernel=3, stride=2)                 # 96 x 27 x 27
    b.conv("conv2", out_channels=256, kernel=5, padding=2)  # 256 x 27 x 27
    b.relu("relu2")
    b.lrn("norm2")
    b.pool_max("pool2", kernel=3, stride=2)                 # 256 x 13 x 13
    b.conv("conv3", out_channels=384, kernel=3, padding=1)
    b.relu("relu3")
    b.conv("conv4", out_channels=384, kernel=3, padding=1)
    b.relu("relu4")
    b.conv("conv5", out_channels=256, kernel=3, padding=1)
    b.relu("relu5")
    b.pool_max("pool5", kernel=3, stride=2)                 # 256 x 6 x 6
    b.fc("fc6", out_channels=4096)
    b.relu("relu6")
    b.fc("fc7", out_channels=4096)
    b.relu("relu7")
    b.fc("fc8", out_channels=1000)
    b.softmax("prob")
    return b.build()
