"""SphereNet-20, a face-recognition embedding network (SphereFace, CVPR'17).

Stands in for the paper's face-recognition workload: a 20-layer residual
CNN over 112x96 aligned face crops, ending in a 512-d embedding FC.  The
original's PReLU activations are tagged ``variant="leaky"`` (identical
cost structure: one extra multiply per element).
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape

#: (stage channels, residual unit count) — the 20-layer configuration.
_STAGES = ((64, 1), (128, 2), (256, 4), (512, 1))


def _residual_unit(b: NetworkBuilder, name: str, after: str, channels: int) -> str:
    conv = b.conv(f"{name}/conv1", out_channels=channels, kernel=3, padding=1,
                  after=after)
    conv = b.relu(f"{name}/prelu1", variant="leaky", after=conv)
    conv = b.conv(f"{name}/conv2", out_channels=channels, kernel=3, padding=1,
                  after=conv)
    conv = b.relu(f"{name}/prelu2", variant="leaky", after=conv)
    return b.add(f"{name}/add", inputs=[conv, after])


def spherenet20() -> NetworkGraph:
    """SphereFace-20 face embedding network (112x96 RGB input)."""
    b = NetworkBuilder("spherenet20", TensorShape(3, 112, 96))
    cursor = "input"
    for stage_idx, (channels, units) in enumerate(_STAGES, start=1):
        cursor = b.conv(
            f"conv{stage_idx}_stride", out_channels=channels, kernel=3,
            stride=2, padding=1, after=cursor,
        )
        cursor = b.relu(f"prelu{stage_idx}_stride", variant="leaky", after=cursor)
        for unit_idx in range(units):
            cursor = _residual_unit(
                b, f"stage{stage_idx}/unit{unit_idx}", cursor, channels
            )
    b.fc("fc5", out_channels=512, after=cursor)
    return b.build()
