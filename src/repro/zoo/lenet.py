"""LeNet-5, the Caffe MNIST deployment.

The paper singles LeNet-5 out: its layers are so small that in GPGPU mode
the learned optimum is a *pure CPU* schedule — GPU kernel-launch and
transfer overheads outweigh any compute advantage (paper §VI-A).
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape


def lenet5() -> NetworkGraph:
    """LeNet-5 as deployed by Caffe's MNIST example (28x28 grayscale)."""
    b = NetworkBuilder("lenet5", TensorShape(1, 28, 28))
    b.conv("conv1", out_channels=20, kernel=5)          # 20 x 24 x 24
    b.pool_max("pool1", kernel=2)                       # 20 x 12 x 12
    b.conv("conv2", out_channels=50, kernel=5)          # 50 x 8 x 8
    b.pool_max("pool2", kernel=2)                       # 50 x 4 x 4
    b.fc("ip1", out_channels=500)
    b.relu("relu1")
    b.fc("ip2", out_channels=10)
    b.softmax("prob")
    return b.build()
