"""Network zoo: the CNNs the paper evaluates (plus the Fig. 1 toy net).

Architectures are shape-faithful reconstructions of the standard Caffe /
Darknet deployments of each model.  Primitive selection depends only on
layer hyper-parameters, so weights are never materialized.  Where the
original used ceil-mode pooling, padding is adjusted to reach the
canonical feature-map sizes (noted per network).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.nn.graph import NetworkGraph
from repro.zoo.lenet import lenet5
from repro.zoo.alexnet import alexnet
from repro.zoo.vgg import vgg16, vgg19
from repro.zoo.googlenet import googlenet
from repro.zoo.mobilenet import mobilenet_v1
from repro.zoo.squeezenet import squeezenet_v11
from repro.zoo.resnet import resnet18, resnet34, resnet50
from repro.zoo.tinyyolo import tiny_yolo_v2
from repro.zoo.facenet import spherenet20
from repro.zoo.mtcnn import mtcnn_onet, mtcnn_pnet, mtcnn_rnet
from repro.zoo.ssd_mobilenet import ssd_mobilenet
from repro.zoo.toy import fig1_network

#: Builders for every zoo network, keyed by canonical name.
ZOO: dict[str, Callable[[], NetworkGraph]] = {
    "lenet5": lenet5,
    "alexnet": alexnet,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "googlenet": googlenet,
    "mobilenet_v1": mobilenet_v1,
    "squeezenet_v1.1": squeezenet_v11,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnet50": resnet50,
    "tiny_yolo_v2": tiny_yolo_v2,
    "spherenet20": spherenet20,
    "ssd_mobilenet": ssd_mobilenet,
    "mtcnn_pnet": mtcnn_pnet,
    "mtcnn_rnet": mtcnn_rnet,
    "mtcnn_onet": mtcnn_onet,
    "fig1_toy": fig1_network,
}

#: The networks reported in Table II (classification + face + detection).
TABLE2_NETWORKS: tuple[str, ...] = (
    "lenet5",
    "alexnet",
    "vgg16",
    "vgg19",
    "googlenet",
    "mobilenet_v1",
    "squeezenet_v1.1",
    "resnet18",
    "resnet50",
    "spherenet20",
    "tiny_yolo_v2",
)


def available_networks() -> list[str]:
    """Names accepted by :func:`build_network`."""
    return sorted(ZOO)


def build_network(name: str) -> NetworkGraph:
    """Instantiate a zoo network by name."""
    try:
        builder = ZOO[name]
    except KeyError:
        raise ConfigError(
            f"unknown network {name!r}; available: {', '.join(available_networks())}"
        ) from None
    return builder()


__all__ = [
    "ZOO",
    "TABLE2_NETWORKS",
    "available_networks",
    "build_network",
    "lenet5",
    "alexnet",
    "vgg16",
    "vgg19",
    "googlenet",
    "mobilenet_v1",
    "squeezenet_v11",
    "resnet18",
    "resnet34",
    "resnet50",
    "tiny_yolo_v2",
    "spherenet20",
    "ssd_mobilenet",
    "mtcnn_pnet",
    "mtcnn_rnet",
    "mtcnn_onet",
    "fig1_network",
]
