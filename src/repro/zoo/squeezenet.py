"""SqueezeNet v1.1 (the forked, 2.4x-cheaper revision of the SqueezeNet repo).

Fire modules (squeeze 1x1 -> parallel expand 1x1 / 3x3 -> concat) give a
branchy topology at tiny channel counts — lots of compatibility edges,
little compute, so penalties weigh heavily in the learned schedule.
Ceil-mode pools are reproduced with padding 1 (giving 56/28/14 maps).
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape

#: (name, squeeze, expand1x1, expand3x3) per fire module.
_FIRES = (
    ("fire2", 16, 64, 64),
    ("fire3", 16, 64, 64),
    ("fire4", 32, 128, 128),
    ("fire5", 32, 128, 128),
    ("fire6", 48, 192, 192),
    ("fire7", 48, 192, 192),
    ("fire8", 64, 256, 256),
    ("fire9", 64, 256, 256),
)

#: Fire modules preceded by a stride-2 max-pool.
_POOL_BEFORE = {"fire4", "fire6"}


def _fire(b: NetworkBuilder, name: str, after: str, s: int, e1: int, e3: int) -> str:
    sq = b.conv(f"{name}/squeeze1x1", out_channels=s, kernel=1, after=after)
    sq = b.relu(f"{name}/relu_squeeze1x1", after=sq)
    left = b.conv(f"{name}/expand1x1", out_channels=e1, kernel=1, after=sq)
    left = b.relu(f"{name}/relu_expand1x1", after=left)
    right = b.conv(f"{name}/expand3x3", out_channels=e3, kernel=3, padding=1, after=sq)
    right = b.relu(f"{name}/relu_expand3x3", after=right)
    return b.concat(f"{name}/concat", inputs=[left, right])


def squeezenet_v11() -> NetworkGraph:
    """SqueezeNet v1.1 (227x227 RGB input)."""
    b = NetworkBuilder("squeezenet_v1.1", TensorShape(3, 227, 227))
    b.conv("conv1", out_channels=64, kernel=3, stride=2)       # 64 x 113 x 113
    b.relu("relu_conv1")
    cursor = b.pool_max("pool1", kernel=3, stride=2)           # 64 x 56 x 56
    for name, s, e1, e3 in _FIRES:
        if name in _POOL_BEFORE:
            cursor = b.pool_max(
                f"pool_{name}", kernel=3, stride=2, padding=1, after=cursor
            )
        cursor = _fire(b, name, cursor, s, e1, e3)
    b.conv("conv10", out_channels=1000, kernel=1, after=cursor)
    b.relu("relu_conv10")
    b.global_pool_avg("pool10")
    b.softmax("prob")
    return b.build()
