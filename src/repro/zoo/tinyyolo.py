"""Tiny-YOLO-v2 (Darknet's tiny-yolo-voc), the paper's object detector.

The Darknet original uses a stride-1 'same' max-pool before conv7; that is
reproduced here as a 3x3 stride-1 padding-1 pool (identical output size).
Leaky ReLU activations are tagged ``variant="leaky"``.
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape

#: Output channels of the six pooled conv stages.
_STAGE_CHANNELS = (16, 32, 64, 128, 256, 512)


def tiny_yolo_v2() -> NetworkGraph:
    """Tiny-YOLO-v2 for VOC (416x416 RGB input, 125-channel head)."""
    b = NetworkBuilder("tiny_yolo_v2", TensorShape(3, 416, 416))
    for i, channels in enumerate(_STAGE_CHANNELS, start=1):
        b.conv(f"conv{i}", out_channels=channels, kernel=3, padding=1)
        b.batch_norm(f"bn{i}")
        b.relu(f"leaky{i}", variant="leaky")
        if i < 6:
            b.pool_max(f"pool{i}", kernel=2, stride=2)
        else:
            # Darknet: maxpool size=2 stride=1 'same'; 3x3/s1/p1 keeps 13x13.
            b.pool_max(f"pool{i}", kernel=3, stride=1, padding=1)
    b.conv("conv7", out_channels=1024, kernel=3, padding=1)
    b.batch_norm("bn7")
    b.relu("leaky7", variant="leaky")
    b.conv("conv8", out_channels=1024, kernel=3, padding=1)
    b.batch_norm("bn8")
    b.relu("leaky8", variant="leaky")
    b.conv("conv9", out_channels=125, kernel=1)  # 5 anchors x (5 + 20 classes)
    return b.build()
