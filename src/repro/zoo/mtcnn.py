"""MTCNN: the cascaded face-detection networks (P-Net, R-Net, O-Net).

A classic industrial face-recognition *pipeline* starts with MTCNN
detection before any embedding network runs.  The three stages are tiny
(thousands to a few million FLOPs) — exactly the regime where the paper
observes GPU launch overheads and transfers dominating, so their learned
GPGPU schedules collapse to pure CPU just like LeNet-5's.

Architectures follow Zhang et al., IEEE SPL 2016 (PReLU activations
tagged ``variant="leaky"``).  P-Net is fully convolutional on a 12x12
proposal window; R-Net and O-Net end in FC layers.
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape


def mtcnn_pnet() -> NetworkGraph:
    """P-Net: the 12x12 fully-convolutional proposal network."""
    b = NetworkBuilder("mtcnn_pnet", TensorShape(3, 12, 12))
    b.conv("conv1", out_channels=10, kernel=3)        # 10 x 10 x 10
    b.relu("prelu1", variant="leaky")
    b.pool_max("pool1", kernel=2)                     # 10 x 5 x 5
    b.conv("conv2", out_channels=16, kernel=3)        # 16 x 3 x 3
    b.relu("prelu2", variant="leaky")
    b.conv("conv3", out_channels=32, kernel=3)        # 32 x 1 x 1
    b.relu("prelu3", variant="leaky")
    b.conv("conv4_1", out_channels=2, kernel=1)       # face classification
    b.softmax("prob1")
    return b.build()


def mtcnn_rnet() -> NetworkGraph:
    """R-Net: the 24x24 refinement network."""
    b = NetworkBuilder("mtcnn_rnet", TensorShape(3, 24, 24))
    b.conv("conv1", out_channels=28, kernel=3)        # 28 x 22 x 22
    b.relu("prelu1", variant="leaky")
    b.pool_max("pool1", kernel=3, stride=2)           # 28 x 10 x 10
    b.conv("conv2", out_channels=48, kernel=3)        # 48 x 8 x 8
    b.relu("prelu2", variant="leaky")
    b.pool_max("pool2", kernel=3, stride=2)           # 48 x 3 x 3
    b.conv("conv3", out_channels=64, kernel=2)        # 64 x 2 x 2
    b.relu("prelu3", variant="leaky")
    b.fc("fc4", out_channels=128)
    b.relu("prelu4", variant="leaky")
    b.fc("fc5_1", out_channels=2)
    b.softmax("prob1")
    return b.build()


def mtcnn_onet() -> NetworkGraph:
    """O-Net: the 48x48 output network (landmarks head omitted)."""
    b = NetworkBuilder("mtcnn_onet", TensorShape(3, 48, 48))
    b.conv("conv1", out_channels=32, kernel=3)        # 32 x 46 x 46
    b.relu("prelu1", variant="leaky")
    b.pool_max("pool1", kernel=3, stride=2)           # 32 x 22 x 22
    b.conv("conv2", out_channels=64, kernel=3)        # 64 x 20 x 20
    b.relu("prelu2", variant="leaky")
    b.pool_max("pool2", kernel=3, stride=2)           # 64 x 9 x 9
    b.conv("conv3", out_channels=64, kernel=3)        # 64 x 7 x 7
    b.relu("prelu3", variant="leaky")
    b.pool_max("pool3", kernel=2)                     # 64 x 3 x 3
    b.conv("conv4", out_channels=128, kernel=2)       # 128 x 2 x 2
    b.relu("prelu4", variant="leaky")
    b.fc("fc5", out_channels=256)
    b.relu("prelu5", variant="leaky")
    b.fc("fc6_1", out_channels=2)
    b.softmax("prob1")
    return b.build()
