"""SSD-MobileNet: single-shot detection on a MobileNet-v1 backbone.

The paper's object-detection workload class.  The SSD head hangs six
detection branches (class + box 3x3 convs) off feature maps of
decreasing resolution, plus a pyramid of 1x1/3x3-s2 feature-extension
blocks — a wide, shallow fan-out that stresses the compatibility-edge
handling very differently from classification trunks.

The head follows the standard SSD300-MobileNet deployment (Caffe /
TensorFlow object detection API, VOC classes): detection taps at
conv11/relu (19x19) and conv13/relu (10x10... here 7x7 at our ladder)
plus four extension blocks.  Detection outputs are concatenated per
type.  Anchor counts: 3 on the first tap, 6 elsewhere.
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape
from repro.zoo.mobilenet import _BLOCKS

#: (channels_mid, channels_out) of the four SSD extension blocks.
_EXTENSIONS = ((256, 512), (128, 256), (128, 256), (64, 128))
#: VOC: 20 classes + background.
_NUM_CLASSES = 21


def ssd_mobilenet() -> NetworkGraph:
    """SSD-MobileNet-v1 (300x300 RGB input, VOC head)."""
    b = NetworkBuilder("ssd_mobilenet", TensorShape(3, 300, 300))
    b.conv_bn_relu("conv1", out_channels=32, kernel=3, stride=2, padding=1)
    taps: list[tuple[str, int]] = []  # (layer name, anchors)
    for i, (stride, channels) in enumerate(_BLOCKS, start=1):
        b.dw_bn_relu(f"conv{i}_dw", kernel=3, stride=stride, padding=1)
        out = b.conv_bn_relu(f"conv{i}_pw", out_channels=channels, kernel=1)
        if i == 11:
            taps.append((out, 3))
    taps.append((b.cursor, 6))  # conv13 output

    cursor = b.cursor
    for j, (mid, out_channels) in enumerate(_EXTENSIONS, start=14):
        cursor = b.conv_bn_relu(
            f"conv{j}_1", out_channels=mid, kernel=1, after=cursor
        )
        cursor = b.conv_bn_relu(
            f"conv{j}_2", out_channels=out_channels, kernel=3, stride=2,
            padding=1, after=cursor,
        )
        taps.append((cursor, 6))

    class_heads, box_heads = [], []
    for k, (tap, anchors) in enumerate(taps):
        class_heads.append(
            b.conv(
                f"cls{k}", out_channels=anchors * _NUM_CLASSES, kernel=3,
                padding=1, after=tap,
            )
        )
        box_heads.append(
            b.conv(
                f"box{k}", out_channels=anchors * 4, kernel=3, padding=1,
                after=tap,
            )
        )
    # Flatten every head so the final concats merge 1x1 spatial tensors.
    class_flat = [b.flatten(f"cls{k}_flat", after=h) for k, h in enumerate(class_heads)]
    box_flat = [b.flatten(f"box{k}_flat", after=h) for k, h in enumerate(box_heads)]
    scores = b.concat("mbox_conf", inputs=class_flat)
    boxes = b.concat("mbox_loc", inputs=box_flat)
    b.concat("detection_out", inputs=[scores, boxes])
    return b.build()
