"""GoogLeNet (Inception v1), the BVLC Caffe deployment.

GoogLeNet's nine inception modules create the widest design space in the
zoo (branches multiply the number of edges where layout conversions can
appear), which is where the paper reports the largest RL-over-RS gains
(up to ~15x, §VI-B).  Caffe's ceil-mode pools are reproduced with
padding 1, giving the canonical 56/28/14/7 feature-map ladder.
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape

#: (name, 1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj) per module.
_INCEPTIONS = (
    ("3a", 64, 96, 128, 16, 32, 32),
    ("3b", 128, 128, 192, 32, 96, 64),
    ("4a", 192, 96, 208, 16, 48, 64),
    ("4b", 160, 112, 224, 24, 64, 64),
    ("4c", 128, 128, 256, 24, 64, 64),
    ("4d", 112, 144, 288, 32, 64, 64),
    ("4e", 256, 160, 320, 32, 128, 128),
    ("5a", 256, 160, 320, 32, 128, 128),
    ("5b", 384, 192, 384, 48, 128, 128),
)

#: Modules after which a stride-2 max-pool follows.
_POOL_AFTER = {"3b", "4e"}


def _inception(b: NetworkBuilder, tag: str, after: str, cfg: tuple[int, ...]) -> str:
    c1, r3, c3, r5, c5, pp = cfg
    p = f"inception_{tag}"
    br1 = b.conv(f"{p}/1x1", out_channels=c1, kernel=1, after=after)
    br1 = b.relu(f"{p}/relu_1x1", after=br1)

    br2 = b.conv(f"{p}/3x3_reduce", out_channels=r3, kernel=1, after=after)
    br2 = b.relu(f"{p}/relu_3x3_reduce", after=br2)
    br2 = b.conv(f"{p}/3x3", out_channels=c3, kernel=3, padding=1, after=br2)
    br2 = b.relu(f"{p}/relu_3x3", after=br2)

    br3 = b.conv(f"{p}/5x5_reduce", out_channels=r5, kernel=1, after=after)
    br3 = b.relu(f"{p}/relu_5x5_reduce", after=br3)
    br3 = b.conv(f"{p}/5x5", out_channels=c5, kernel=5, padding=2, after=br3)
    br3 = b.relu(f"{p}/relu_5x5", after=br3)

    br4 = b.pool_max(f"{p}/pool", kernel=3, stride=1, padding=1, after=after)
    br4 = b.conv(f"{p}/pool_proj", out_channels=pp, kernel=1, after=br4)
    br4 = b.relu(f"{p}/relu_pool_proj", after=br4)

    return b.concat(f"{p}/output", inputs=[br1, br2, br3, br4])


def googlenet() -> NetworkGraph:
    """GoogLeNet / Inception v1 (224x224 RGB input)."""
    b = NetworkBuilder("googlenet", TensorShape(3, 224, 224))
    b.conv("conv1/7x7_s2", out_channels=64, kernel=7, stride=2, padding=3)  # 112
    b.relu("conv1/relu_7x7")
    b.pool_max("pool1/3x3_s2", kernel=3, stride=2, padding=1)               # 56
    b.lrn("pool1/norm1")
    b.conv("conv2/3x3_reduce", out_channels=64, kernel=1)
    b.relu("conv2/relu_3x3_reduce")
    b.conv("conv2/3x3", out_channels=192, kernel=3, padding=1)
    b.relu("conv2/relu_3x3")
    b.lrn("conv2/norm2")
    b.pool_max("pool2/3x3_s2", kernel=3, stride=2, padding=1)               # 28

    cursor = b.cursor
    for tag, *cfg in _INCEPTIONS:
        cursor = _inception(b, tag, cursor, tuple(cfg))
        if tag in _POOL_AFTER:
            cursor = b.pool_max(
                f"pool{tag[0]}/3x3_s2", kernel=3, stride=2, padding=1, after=cursor
            )

    b.global_pool_avg("pool5/7x7_s1", after=cursor)
    b.fc("loss3/classifier", out_channels=1000)
    b.softmax("prob")
    return b.build()
