"""ResNet-18 and ResNet-50 (CVPR'16, the torchvision/Caffe deployments).

Residual joins are ``ELTWISE_ADD`` layers with two producers, so every
block contributes an extra compatibility edge — the skip path and the
conv path must agree on layout/processor or pay a conversion penalty.
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape

#: Blocks per stage for each depth.
_STAGES_18 = (2, 2, 2, 2)
_STAGES_34 = (3, 4, 6, 3)
_STAGES_50 = (3, 4, 6, 3)
#: Base channels per stage.
_CHANNELS = (64, 128, 256, 512)


def _basic_block(b: NetworkBuilder, name: str, after: str, channels: int, stride: int) -> str:
    """Two 3x3 convs with identity (or projected) shortcut."""
    conv = b.conv(f"{name}/conv1", out_channels=channels, kernel=3, stride=stride,
                  padding=1, after=after)
    conv = b.batch_norm(f"{name}/bn1", after=conv)
    conv = b.relu(f"{name}/relu1", after=conv)
    conv = b.conv(f"{name}/conv2", out_channels=channels, kernel=3, padding=1, after=conv)
    conv = b.batch_norm(f"{name}/bn2", after=conv)
    shortcut = after
    if stride != 1 or _out_channels(b, after) != channels:
        shortcut = b.conv(f"{name}/downsample", out_channels=channels, kernel=1,
                          stride=stride, after=after)
        shortcut = b.batch_norm(f"{name}/downsample_bn", after=shortcut)
    joined = b.add(f"{name}/add", inputs=[conv, shortcut])
    return b.relu(f"{name}/relu_out", after=joined)


def _bottleneck_block(b: NetworkBuilder, name: str, after: str, channels: int,
                      stride: int) -> str:
    """1x1 reduce -> 3x3 -> 1x1 expand(4x) with shortcut."""
    expanded = channels * 4
    conv = b.conv(f"{name}/conv1", out_channels=channels, kernel=1, after=after)
    conv = b.batch_norm(f"{name}/bn1", after=conv)
    conv = b.relu(f"{name}/relu1", after=conv)
    conv = b.conv(f"{name}/conv2", out_channels=channels, kernel=3, stride=stride,
                  padding=1, after=conv)
    conv = b.batch_norm(f"{name}/bn2", after=conv)
    conv = b.relu(f"{name}/relu2", after=conv)
    conv = b.conv(f"{name}/conv3", out_channels=expanded, kernel=1, after=conv)
    conv = b.batch_norm(f"{name}/bn3", after=conv)
    shortcut = after
    if stride != 1 or _out_channels(b, after) != expanded:
        shortcut = b.conv(f"{name}/downsample", out_channels=expanded, kernel=1,
                          stride=stride, after=after)
        shortcut = b.batch_norm(f"{name}/downsample_bn", after=shortcut)
    joined = b.add(f"{name}/add", inputs=[conv, shortcut])
    return b.relu(f"{name}/relu_out", after=joined)


def _out_channels(b: NetworkBuilder, layer_name: str) -> int:
    return b.output_shape(layer_name).channels


def _resnet(name: str, stages: tuple[int, ...], bottleneck: bool) -> NetworkGraph:
    b = NetworkBuilder(name, TensorShape(3, 224, 224))
    b.conv("conv1", out_channels=64, kernel=7, stride=2, padding=3)      # 112
    b.batch_norm("bn1")
    b.relu("relu1")
    cursor = b.pool_max("pool1", kernel=3, stride=2, padding=1)          # 56
    block = _bottleneck_block if bottleneck else _basic_block
    for stage_idx, (block_count, channels) in enumerate(zip(stages, _CHANNELS), start=1):
        for block_idx in range(block_count):
            stride = 2 if (stage_idx > 1 and block_idx == 0) else 1
            cursor = block(
                b, f"layer{stage_idx}/block{block_idx}", cursor, channels, stride
            )
    b.global_pool_avg("avgpool", after=cursor)
    b.fc("fc", out_channels=1000)
    b.softmax("prob")
    return b.build()


def resnet18() -> NetworkGraph:
    """ResNet-18 (basic blocks, 224x224 RGB input)."""
    return _resnet("resnet18", _STAGES_18, bottleneck=False)


def resnet34() -> NetworkGraph:
    """ResNet-34 (basic blocks, 224x224 RGB input)."""
    return _resnet("resnet34", _STAGES_34, bottleneck=False)


def resnet50() -> NetworkGraph:
    """ResNet-50 (bottleneck blocks, 224x224 RGB input)."""
    return _resnet("resnet50", _STAGES_50, bottleneck=True)
