"""VGG-16 and VGG-19 (the ICLR'15 configurations D and E).

VGG-19 is the paper's largest workload: ~39 GFLOPs of 3x3 convolutions
(ideal for Winograd — the source of the ~45x CPU speedup over Vanilla)
plus a 102 M-parameter fc6 whose absence from cuDNN drives the big
QS-DNN-vs-cuDNN gap in GPGPU mode (paper §VI-A).
"""

from __future__ import annotations

from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.tensor import TensorShape

#: (block index, conv count, channels) for configuration D (VGG-16).
_VGG16_BLOCKS = ((1, 2, 64), (2, 2, 128), (3, 3, 256), (4, 3, 512), (5, 3, 512))
#: Configuration E (VGG-19) has four convs in blocks 3-5.
_VGG19_BLOCKS = ((1, 2, 64), (2, 2, 128), (3, 4, 256), (4, 4, 512), (5, 4, 512))


def _vgg(name: str, blocks: tuple[tuple[int, int, int], ...]) -> NetworkGraph:
    b = NetworkBuilder(name, TensorShape(3, 224, 224))
    for block_idx, conv_count, channels in blocks:
        for conv_idx in range(1, conv_count + 1):
            b.conv(
                f"conv{block_idx}_{conv_idx}",
                out_channels=channels,
                kernel=3,
                padding=1,
            )
            b.relu(f"relu{block_idx}_{conv_idx}")
        b.pool_max(f"pool{block_idx}", kernel=2)
    b.fc("fc6", out_channels=4096)
    b.relu("relu6")
    b.fc("fc7", out_channels=4096)
    b.relu("relu7")
    b.fc("fc8", out_channels=1000)
    b.softmax("prob")
    return b.build()


def vgg16() -> NetworkGraph:
    """VGG-16 (configuration D), 224x224 RGB input."""
    return _vgg("vgg16", _VGG16_BLOCKS)


def vgg19() -> NetworkGraph:
    """VGG-19 (configuration E), 224x224 RGB input."""
    return _vgg("vgg19", _VGG19_BLOCKS)
