"""Hardware substrate: simulated heterogeneous embedded platforms.

The paper measures a physical Nvidia Jetson TX-2.  This package replaces
the board with an analytic model: per-processor rooflines (peak compute,
streaming bandwidth, fixed per-kernel overhead), a CPU<->GPU transfer
model, and multiplicative log-normal measurement noise.  The search never
observes anything but measured latencies, so any latency source with the
same *structure* exercises the identical code path (see DESIGN.md §2).
"""

from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.hw.memory import TransferModel
from repro.hw.noise import NoiseModel
from repro.hw.platform import Platform
from repro.hw.jetson_tx2 import jetson_tx2
from repro.hw.presets import raspberry_pi3, jetson_tx2_maxn, cpu_only

__all__ = [
    "ProcessorKind",
    "ProcessorModel",
    "TransferModel",
    "NoiseModel",
    "Platform",
    "jetson_tx2",
    "jetson_tx2_maxn",
    "raspberry_pi3",
    "cpu_only",
]
