"""Processor roofline models.

A primitive's noiseless execution time is::

    time = max(flops / (peak * eff_compute), bytes / (bandwidth * eff_memory))
           + fixed overhead

i.e. a roofline with perfect compute/traffic overlap, scaled by
primitive-specific efficiency factors, plus a fixed per-invocation cost
(function-call latency on a CPU, kernel-launch latency on a GPU).  The
fixed cost is what sinks GPU schedules for tiny layers — the effect that
makes LeNet-5's learned GPGPU schedule collapse to pure CPU (paper §VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PlatformError


class ProcessorKind(enum.Enum):
    """Processor classes distinguished by the engine (paper Table I)."""

    CPU = "cpu"
    GPU = "gpu"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ProcessorModel:
    """An analytic model of one processor.

    Parameters
    ----------
    name:
        Human-readable identifier (``"cortex_a57"``).
    kind:
        CPU or GPU.
    peak_gflops:
        fp32 peak in GFLOP/s (for the CPU: one thread, as in the paper).
    mem_bandwidth_gbs:
        Achievable streaming bandwidth in GB/s for this processor.
    overhead_ms:
        Fixed per-invocation cost in milliseconds.
    """

    name: str
    kind: ProcessorKind
    peak_gflops: float
    mem_bandwidth_gbs: float
    overhead_ms: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0:
            raise PlatformError(f"{self.name}: peak_gflops must be positive")
        if self.mem_bandwidth_gbs <= 0:
            raise PlatformError(f"{self.name}: mem_bandwidth_gbs must be positive")
        if self.overhead_ms < 0:
            raise PlatformError(f"{self.name}: overhead_ms must be >= 0")

    def compute_ms(self, flops: float, efficiency: float) -> float:
        """Milliseconds to execute ``flops`` at a fraction of peak."""
        self._check_efficiency(efficiency)
        if flops < 0:
            raise PlatformError("flops must be >= 0")
        return flops / (self.peak_gflops * 1e9 * efficiency) * 1e3

    def memory_ms(self, nbytes: float, efficiency: float) -> float:
        """Milliseconds to move ``nbytes`` at a fraction of peak bandwidth."""
        self._check_efficiency(efficiency)
        if nbytes < 0:
            raise PlatformError("nbytes must be >= 0")
        return nbytes / (self.mem_bandwidth_gbs * 1e9 * efficiency) * 1e3

    def roofline_ms(
        self,
        flops: float,
        nbytes: float,
        eff_compute: float,
        eff_memory: float,
        invocations: int = 1,
    ) -> float:
        """Roofline time plus fixed overhead for ``invocations`` calls."""
        if invocations < 1:
            raise PlatformError("invocations must be >= 1")
        busy = max(
            self.compute_ms(flops, eff_compute), self.memory_ms(nbytes, eff_memory)
        )
        return busy + self.overhead_ms * invocations

    @staticmethod
    def _check_efficiency(efficiency: float) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise PlatformError(f"efficiency must be in (0, 1], got {efficiency}")

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.kind}): {self.peak_gflops:g} GFLOP/s, "
            f"{self.mem_bandwidth_gbs:g} GB/s, {self.overhead_ms * 1e3:g} us/call"
        )
