"""Inter-processor transfer model.

When consecutive layers run on different processors the activation tensor
must cross between CPU and GPU address spaces.  On the TX-2 this is a
cudaMemcpy over shared LPDDR4 — cheap per byte but with a fixed software
latency that dominates for small tensors (paper Fig. 1: "costly (slow)
memory transfer").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError


@dataclass(frozen=True)
class TransferModel:
    """Latency + bandwidth model of a CPU<->GPU copy."""

    latency_ms: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise PlatformError("transfer latency_ms must be >= 0")
        if self.bandwidth_gbs <= 0:
            raise PlatformError("transfer bandwidth_gbs must be positive")

    def transfer_ms(self, nbytes: float) -> float:
        """Milliseconds to move ``nbytes`` across the processor boundary."""
        if nbytes < 0:
            raise PlatformError("nbytes must be >= 0")
        return self.latency_ms + nbytes / (self.bandwidth_gbs * 1e9) * 1e3
