"""Measurement noise.

Real latency measurements jitter with cache state, DVFS and OS scheduling.
We model a measurement as the true model time scaled by a log-normal
factor — always positive, right-skewed like real timing distributions.
The profiler averages 50 samples per layer, exactly as the paper does
(§V-A footnote), which shrinks the error of LUT entries to ~sigma/sqrt(50).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlatformError


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative log-normal measurement noise.

    ``sigma`` is the standard deviation of the underlying normal; 0.03
    yields ~3 % timing jitter, typical of a warmed-up embedded board.
    ``sigma = 0`` makes measurements exact (useful in tests).
    """

    sigma: float = 0.03

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise PlatformError("noise sigma must be >= 0")

    def sample(self, true_ms: float, rng: np.random.Generator) -> float:
        """One noisy measurement of a true latency."""
        if true_ms < 0:
            raise PlatformError("true_ms must be >= 0")
        if self.sigma == 0.0:
            return true_ms
        # Mean-one lognormal: exp(N(-sigma^2/2, sigma)).
        factor = float(np.exp(rng.normal(-0.5 * self.sigma**2, self.sigma)))
        return true_ms * factor

    def sample_mean(
        self, true_ms: float, rng: np.random.Generator, repeats: int
    ) -> float:
        """Mean of ``repeats`` noisy measurements (the paper uses 50)."""
        if repeats < 1:
            raise PlatformError("repeats must be >= 1")
        if self.sigma == 0.0:
            return true_ms
        factors = np.exp(rng.normal(-0.5 * self.sigma**2, self.sigma, size=repeats))
        return true_ms * float(factors.mean())
