"""Additional platform presets.

The paper's future-work section targets more heterogeneous platforms;
these presets let the same search run against different hardware balances
(and back the portability example in ``examples/``).
"""

from __future__ import annotations

from repro.hw.memory import TransferModel
from repro.hw.noise import NoiseModel
from repro.hw.platform import Platform
from repro.hw.processor import ProcessorKind, ProcessorModel


def raspberry_pi3(noise_sigma: float = 0.05) -> Platform:
    """Raspberry Pi 3B: one Cortex-A53 thread at 1.2 GHz, CPU only.

    Half the NEON issue width of the A57 and a much weaker memory system;
    noisier, too (no fan, thermal throttling).
    """
    cpu = ProcessorModel(
        name="cortex_a53",
        kind=ProcessorKind.CPU,
        peak_gflops=4.8,
        mem_bandwidth_gbs=2.5,
        overhead_ms=0.0015,
    )
    return Platform(
        name="raspberry_pi3", processors=(cpu,), noise=NoiseModel(sigma=noise_sigma)
    )


def jetson_tx2_maxn(noise_sigma: float = 0.03) -> Platform:
    """Jetson TX-2 in Max-N: GPU at 1.46 GHz and faster memory clocks.

    Shifts the CPU/GPU crossover point — useful for studying how the
    learned schedules shift with the hardware balance.
    """
    cpu = ProcessorModel(
        name="cortex_a57",
        kind=ProcessorKind.CPU,
        peak_gflops=16.0,
        mem_bandwidth_gbs=9.0,
        overhead_ms=0.001,
    )
    gpu = ProcessorModel(
        name="pascal_256_maxn",
        kind=ProcessorKind.GPU,
        peak_gflops=747.0,
        mem_bandwidth_gbs=36.0,
        overhead_ms=0.035,
    )
    return Platform(
        name="jetson_tx2_maxn",
        processors=(cpu, gpu),
        transfer=TransferModel(latency_ms=0.030, bandwidth_gbs=4.5),
        noise=NoiseModel(sigma=noise_sigma),
    )


def cpu_only(platform: Platform) -> Platform:
    """Strip the GPU from a platform (CPU-mode measurements, Table II left)."""
    return Platform(
        name=f"{platform.name}_cpu_only",
        processors=(platform.cpu,),
        transfer=None,
        noise=platform.noise,
    )


__all__ = ["raspberry_pi3", "jetson_tx2_maxn", "cpu_only"]


# Re-export ProcessorKind for symmetric imports in examples.
_ = ProcessorKind
