"""Calibrated Nvidia Jetson TX-2 model (the paper's platform, §VI-A).

Calibration notes
-----------------
* **CPU** — one ARM Cortex-A57 core at 2.0 GHz.  NEON does 4-wide fp32
  FMA on two pipes: 16 GFLOP/s peak for perfectly scheduled code.  A
  single core extracts roughly 8 GB/s of the shared LPDDR4 stream
  bandwidth.  Per-call overhead is a function call: ~1 us.
* **GPU** — 256-core Pascal at 1.30 GHz (max-Q): 2 * 256 * 1.3 = 666
  GFLOP/s fp32.  The GPU sees more of the LPDDR4 (~30 GB/s achievable).
  Kernel launch + driver overhead on the TX-2 is ~35 us — the single most
  important number for small networks: a LeNet-5-sized layer finishes on
  the CPU before the GPU kernel has even launched.
* **Transfer** — cudaMemcpy over shared DRAM: ~5.5 GB/s effective with
  ~25 us software latency per copy (paper Fig. 1 "costly (slow) memory
  transfer").
* **Noise** — ~3 % log-normal jitter, typical of a warm board with
  fixed clocks.

Absolute numbers are deliberately conservative approximations; the
reproduction targets the *relative* structure of Table II (see
EXPERIMENTS.md), which is governed by the ratios between these constants.
"""

from __future__ import annotations

from repro.hw.memory import TransferModel
from repro.hw.noise import NoiseModel
from repro.hw.platform import Platform
from repro.hw.processor import ProcessorKind, ProcessorModel

CPU_PEAK_GFLOPS = 16.0
CPU_BANDWIDTH_GBS = 8.0
CPU_CALL_OVERHEAD_MS = 0.001

GPU_PEAK_GFLOPS = 666.0
GPU_BANDWIDTH_GBS = 30.0
GPU_LAUNCH_OVERHEAD_MS = 0.035

TRANSFER_LATENCY_MS = 0.040
TRANSFER_BANDWIDTH_GBS = 5.5

NOISE_SIGMA = 0.03


def jetson_tx2(noise_sigma: float = NOISE_SIGMA) -> Platform:
    """The Jetson TX-2 model used by every Table II experiment."""
    cpu = ProcessorModel(
        name="cortex_a57",
        kind=ProcessorKind.CPU,
        peak_gflops=CPU_PEAK_GFLOPS,
        mem_bandwidth_gbs=CPU_BANDWIDTH_GBS,
        overhead_ms=CPU_CALL_OVERHEAD_MS,
    )
    gpu = ProcessorModel(
        name="pascal_256",
        kind=ProcessorKind.GPU,
        peak_gflops=GPU_PEAK_GFLOPS,
        mem_bandwidth_gbs=GPU_BANDWIDTH_GBS,
        overhead_ms=GPU_LAUNCH_OVERHEAD_MS,
    )
    transfer = TransferModel(
        latency_ms=TRANSFER_LATENCY_MS, bandwidth_gbs=TRANSFER_BANDWIDTH_GBS
    )
    return Platform(
        name="jetson_tx2",
        processors=(cpu, gpu),
        transfer=transfer,
        noise=NoiseModel(sigma=noise_sigma),
    )
