"""A heterogeneous platform: processors + transfer + noise."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlatformError
from repro.hw.memory import TransferModel
from repro.hw.noise import NoiseModel
from repro.hw.processor import ProcessorKind, ProcessorModel


@dataclass(frozen=True)
class Platform:
    """A target device as seen by the inference engine optimizer.

    At minimum a CPU must be present (the Vanilla library guarantees a
    dependency-free implementation for every layer, and Vanilla is a CPU
    library).  A GPU and the transfer model are optional — CPU-only
    platforms simply never pay transfer penalties.
    """

    name: str
    processors: tuple[ProcessorModel, ...]
    transfer: TransferModel | None = None
    noise: NoiseModel = field(default_factory=NoiseModel)

    def __post_init__(self) -> None:
        kinds = [p.kind for p in self.processors]
        if len(set(kinds)) != len(kinds):
            raise PlatformError(f"{self.name}: duplicate processor kinds {kinds}")
        if ProcessorKind.CPU not in kinds:
            raise PlatformError(f"{self.name}: a CPU processor is required")
        if ProcessorKind.GPU in kinds and self.transfer is None:
            raise PlatformError(
                f"{self.name}: a GPU requires a CPU<->GPU transfer model"
            )

    @property
    def kinds(self) -> frozenset[ProcessorKind]:
        """The processor kinds this platform offers."""
        return frozenset(p.kind for p in self.processors)

    def has(self, kind: ProcessorKind) -> bool:
        """Whether a processor of ``kind`` exists on this platform."""
        return kind in self.kinds

    def processor(self, kind: ProcessorKind) -> ProcessorModel:
        """The processor of the given kind."""
        for p in self.processors:
            if p.kind is kind:
                return p
        raise PlatformError(f"{self.name} has no {kind} processor")

    @property
    def cpu(self) -> ProcessorModel:
        """The CPU model (always present)."""
        return self.processor(ProcessorKind.CPU)

    def transfer_ms(self, nbytes: float) -> float:
        """Cost of one CPU<->GPU activation copy."""
        if self.transfer is None:
            raise PlatformError(f"{self.name} has no transfer path")
        return self.transfer.transfer_ms(nbytes)

    def __str__(self) -> str:
        procs = "; ".join(str(p) for p in self.processors)
        return f"Platform {self.name}: {procs}"
