"""The state space of the search (paper Table I).

A state is "a tuple of the parameters that specify the execution of a
layer with a certain primitive on a target platform": layer type, layer
depth, acceleration library, algorithm, algorithm implementation,
hardware processor and BLAS library.

The search's fast path works on (depth, candidate-index) pairs — a
bijection with these tuples — but results and reports surface the full
Table I view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.lut import LatencyTable, PrimitiveMeta


@dataclass(frozen=True)
class SearchState:
    """One Table I state tuple."""

    layer_type: str
    layer_depth: int
    library: str
    algorithm: str
    algorithm_impl: str
    processor: str
    blas: str | None

    @classmethod
    def from_meta(
        cls, layer_type: str, depth: int, meta: PrimitiveMeta
    ) -> "SearchState":
        """Build the Table I tuple for a primitive at a given depth."""
        return cls(
            layer_type=layer_type,
            layer_depth=depth,
            library=meta.library,
            algorithm=meta.algorithm,
            algorithm_impl=meta.impl,
            processor=str(meta.processor),
            blas=meta.blas,
        )

    def __str__(self) -> str:
        blas = f", blas={self.blas}" if self.blas else ""
        return (
            f"[{self.layer_depth}:{self.layer_type}] "
            f"{self.library}.{self.algorithm}"
            f"{'.' + self.algorithm_impl if self.algorithm_impl else ''} "
            f"on {self.processor}{blas}"
        )


def describe_assignments(
    lut: LatencyTable, assignments: dict[str, str], layer_types: dict[str, str]
) -> list[SearchState]:
    """Render a schedule as the sequence of Table I states it visits."""
    states = []
    for depth, layer in enumerate(lut.layers):
        uid = assignments[layer]
        states.append(
            SearchState.from_meta(
                layer_types.get(layer, "?"), depth, lut.meta[uid]
            )
        )
    return states
