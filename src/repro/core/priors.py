"""Pluggable Q-priors: transfer-learned warm starts (ROADMAP item 1).

The paper's §VII names value-function approximation as the path beyond
tabular QS-DNN; the fleet already holds the raw material — a
:class:`~repro.runtime.store.ResultStore` corpus of solved
(network, platform, mode) instances and the tiered LUT cache.  This
module turns that corpus into *initial* Q-tables, replacing the
hard-wired ``np.zeros`` seam with one pluggable layer:

* :class:`ZeroPrior` — today's behavior.  ``warm_start="off"`` runs are
  bitwise-identical to pre-prior builds (exactness contract 9).
* :class:`StoredQPrior` — replay a stored solution of the *same*
  scenario: the schedule's per-stage costs become optimistic per-state
  priors, so exploitation starts from the known-good schedule instead
  of from uniform zeros.
* :class:`SurrogatePrior` — cross-network transfer: a linear cost
  surrogate trained on (static features → log-latency) pairs harvested
  from the corpus' LUTs (reusing the ``ext/linear_q`` feature map),
  *excluding* the target network, predicts per-action costs on the
  held-out target and seeds the prior from the predicted schedule.

Determinism rules
-----------------

* Prior construction draws **no** randomness: same corpus → same prior,
  and the search's RNG streams are untouched, so a warm run is exactly
  reproducible from (seed, corpus).
* Priors are applied to the flat Q block *before* the first episode and
  never on resume — a checkpoint carries the live Q state, so resumed
  warm runs stay bitwise-identical to uninterrupted ones even if the
  corpus changed in between.
* Every prior fills complete rows with finite values and the row-max
  cache is recomputed exactly (``QTable.load_prior``), preserving the
  greedy tie-breaking contract of :meth:`QTable.greedy_action`.

Transport
---------

Fleet workers have no store.  A resolver prior (:class:`StoredQPrior`,
:class:`SurrogatePrior`) can be collapsed into a portable *spec* —
small JSON carrying the resolved schedule or surrogate weights — via
:meth:`QPrior.spec_text`, shipped in the lease grant, and revived with
:func:`decode_prior_spec` on the worker (floats round-trip bitwise
through shortest-repr JSON literals).
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.backends.registry import registered_libraries
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.lut import IndexedLUT, LatencyTable

#: Accepted values of every ``warm_start`` knob (config, job, CLI).
WARM_START_CHOICES = ("off", "stored", "surrogate")

#: Version tag of the portable prior-spec JSON.
PRIOR_SPEC_FORMAT = 1

#: Floor under measured/predicted latencies before taking log10.
_LOG_FLOOR_MS = 1e-6


def validate_warm_start(kind: str) -> str:
    """Validate a ``warm_start`` knob value; returns it unchanged."""
    if kind not in WARM_START_CHOICES:
        raise ConfigError(
            f"warm_start must be one of {WARM_START_CHOICES}, got {kind!r}"
        )
    return kind


# -- shared feature map (ext/linear_q reuses this) ---------------------------


def static_features(
    idx: "IndexedLUT",
    meta: dict,
    libraries: tuple[str, ...] | None = None,
) -> list[np.ndarray]:
    """Per layer: ``(num_candidates, 4 + len(libraries))`` feature rows.

    The static block of the ``ext/linear_q`` feature map: bias,
    normalized depth, GPU flag, log10 latency, and the library one-hot
    in :func:`~repro.backends.registry.registered_libraries` order.
    Libraries outside the registry (synthetic test LUTs) encode as
    all-zeros, matching the historical membership check.
    """
    if libraries is None:
        libraries = registered_libraries()
    depth_scale = max(len(idx) - 1, 1)
    rows: list[np.ndarray] = []
    for i, uids in enumerate(idx.candidate_uids):
        block = np.zeros((len(uids), 4 + len(libraries)), dtype=np.float64)
        for a, uid in enumerate(uids):
            m = meta[uid]
            block[a, 0] = 1.0  # bias
            block[a, 1] = i / depth_scale
            block[a, 2] = 1.0 if str(m.processor) == "gpu" else 0.0
            block[a, 3] = math.log10(max(idx.times[i][a], _LOG_FLOOR_MS))
            if m.library in libraries:
                block[a, 4 + libraries.index(m.library)] = 1.0
        rows.append(block)
    return rows


# -- flat-block construction -------------------------------------------------


def q_layout(idx: "IndexedLUT") -> tuple[list[int], list[int]]:
    """``(num_actions, row_sizes)`` of the Q-table over this LUT.

    Mirrors the wiring every search uses: layer i's state rows are its
    primary graph predecessor's action count (1 for virtual-start
    layers).
    """
    num_actions = [int(n) for n in idx.num_actions]
    row_sizes = [
        1 if p < 0 else num_actions[p] for p in idx.q_parent
    ]
    return num_actions, row_sizes


def prior_row_max(
    values: np.ndarray, num_actions: list[int], row_sizes: list[int]
) -> np.ndarray:
    """Exact per-row maxima of a flat Q block (the row-max cache).

    Bitwise the same computation :meth:`QTable.load_prior` performs —
    the mega kernel tiles priors into its SoA state through this.
    """
    out = np.empty(sum(row_sizes), dtype=np.float64)
    pos = 0
    rm = 0
    for n, r in zip(num_actions, row_sizes):
        block = values[pos : pos + r * n].reshape(r, n)
        out[rm : rm + r] = block.max(axis=1)
        pos += r * n
        rm += r
    return out


def schedule_prior_block(
    idx: "IndexedLUT",
    choices: list[int],
    stage_times: list[np.ndarray],
    discount: float,
) -> np.ndarray:
    """Flat Q block seeded from a reference schedule.

    ``choices`` is the reference schedule (one action index per layer);
    ``stage_times[i]`` the per-action stage times of layer ``i``
    (measured for stored priors, predicted for surrogate priors).  Each
    entry becomes the discounted return of "take action ``a`` in state
    ``(i, r)``, then follow the reference schedule"::

        cost(i, r, a) = stage_times[i][a] + sum of incoming penalties
                        (row-conditioned on the primary parent,
                         reference-conditioned on other predecessors)
        T(i)          = -ref_cost(i) + discount * T(i+1),  T(L) = 0
        Q(i, r, a)    = -cost(i, r, a) + discount * T(i+1)

    All values are finite and negative-tailed, so the least-cost action
    of every row is its argmax — optimism never detours exploitation
    through a known-bad action.
    """
    num_layers = len(idx)
    num_actions, row_sizes = q_layout(idx)
    costs: list[np.ndarray] = []
    for i in range(num_layers):
        cost = np.tile(
            np.asarray(stage_times[i], dtype=np.float64),
            (row_sizes[i], 1),
        )
        for producer, edge_idx in idx.incoming[i]:
            edge = idx.edge_matrices[edge_idx]
            if producer == idx.q_parent[i]:
                cost = cost + edge
            else:
                cost = cost + edge[choices[producer], :][None, :]
        costs.append(cost)
    tails = np.zeros(num_layers + 1, dtype=np.float64)
    for i in range(num_layers - 1, -1, -1):
        parent = idx.q_parent[i]
        ref_row = 0 if parent < 0 else choices[parent]
        ref_cost = float(costs[i][ref_row, choices[i]])
        tails[i] = -ref_cost + discount * tails[i + 1]
    blocks = [
        (-costs[i] + discount * tails[i + 1]).ravel()
        for i in range(num_layers)
    ]
    return np.concatenate(blocks)


# -- the prior protocol and its implementations ------------------------------


@runtime_checkable
class QPrior(Protocol):
    """One pluggable Q-initialization strategy."""

    #: Which ``warm_start`` knob value this prior implements.
    kind: str

    def prior_for(
        self, lut: "LatencyTable", discount: float = 0.9
    ) -> np.ndarray | None:
        """The flat Q block for this LUT, or None for a cold start."""
        ...  # pragma: no cover - protocol

    def spec_text(self, lut: "LatencyTable") -> str | None:
        """Portable resolved form (lease transport), or None."""
        ...  # pragma: no cover - protocol


class ZeroPrior:
    """Today's behavior: zero-initialized Q, bitwise default."""

    kind = "off"

    def prior_for(self, lut, discount: float = 0.9) -> np.ndarray | None:
        return None

    def spec_text(self, lut) -> str | None:
        return None


class SchedulePrior:
    """A prior built from one concrete schedule (layer → uid).

    The portable, store-free form of :class:`StoredQPrior` — what fleet
    workers decode out of a lease grant.  Returns None (cold start)
    when the schedule does not fit the target LUT (a layer or uid
    missing — e.g. the corpus entry predates a design-space change).
    """

    kind = "stored"

    def __init__(self, assignments: dict[str, str]) -> None:
        self.assignments = dict(assignments)

    def _choices(self, idx: "IndexedLUT") -> list[int] | None:
        choices: list[int] = []
        for i, name in enumerate(idx.layer_names):
            uid = self.assignments.get(name)
            if uid is None or uid not in idx.candidate_uids[i]:
                return None
            choices.append(idx.candidate_uids[i].index(uid))
        return choices

    def prior_for(self, lut, discount: float = 0.9) -> np.ndarray | None:
        idx = lut.indexed()
        choices = self._choices(idx)
        if choices is None:
            return None
        return schedule_prior_block(idx, choices, idx.times, discount)

    def spec_text(self, lut=None) -> str | None:
        # No target-LUT validation here: the worker-side ``prior_for``
        # already degrades an unfit schedule to a cold start, and spec
        # resolution must work from job identity alone (the service
        # resolves specs without loading the target LUT).
        return encode_prior_spec(
            {"kind": "stored", "assignments": self.assignments}
        )


class WeightsPrior:
    """A prior built from trained surrogate weights.

    The portable, store-free form of :class:`SurrogatePrior`.  Predicts
    per-action log-latencies from the shared static feature map, takes
    the predicted-best schedule as reference, and prices its prior with
    the predicted stage times plus the target's *real* edge penalties.
    """

    kind = "surrogate"

    def __init__(
        self, weights: np.ndarray, libraries: tuple[str, ...]
    ) -> None:
        self.weights = np.asarray(weights, dtype=np.float64)
        self.libraries = tuple(libraries)

    def prior_for(self, lut, discount: float = 0.9) -> np.ndarray | None:
        idx = lut.indexed()
        features = static_features(idx, lut.meta, self.libraries)
        if features and features[0].shape[1] != self.weights.shape[0]:
            return None  # trained against a different feature dim
        predicted = [
            np.maximum(
                10.0 ** (block @ self.weights), _LOG_FLOOR_MS
            )
            for block in features
        ]
        choices = [int(np.argmin(p)) for p in predicted]
        return schedule_prior_block(idx, choices, predicted, discount)

    def spec_text(self, lut=None) -> str | None:
        return encode_prior_spec(
            {
                "kind": "surrogate",
                "weights": [float(w) for w in self.weights],
                "libraries": list(self.libraries),
            }
        )


class StoredQPrior:
    """Replay the best stored solution of this exact scenario.

    ``store`` is duck-typed (anything with the
    :meth:`~repro.runtime.store.ResultStore.query` signature) so core
    keeps no runtime dependency.  Falls back to a cold start when the
    corpus holds no usable schedule.
    """

    kind = "stored"

    def __init__(self, store) -> None:
        self.store = store

    def _best_assignments(
        self, network: str, platform: str, mode: str
    ) -> dict[str, str] | None:
        best_ms = math.inf
        best: dict[str, str] | None = None
        for row in self.store.query(
            network=network, platform=platform, mode=mode
        ):
            payload = row.payload
            member = getattr(payload, "best", None)
            if member is None:
                member = payload
            assignments = getattr(member, "best_assignments", None)
            ms = getattr(member, "best_ms", None)
            if assignments is None or ms is None:
                continue
            if float(ms) < best_ms:
                best_ms = float(ms)
                best = dict(assignments)
        return best

    def _schedule(
        self, network: str, platform: str, mode: str
    ) -> SchedulePrior | None:
        assignments = self._best_assignments(network, platform, mode)
        if assignments is None:
            return None
        return SchedulePrior(assignments)

    def prior_for(self, lut, discount: float = 0.9) -> np.ndarray | None:
        schedule = self._schedule(
            lut.graph_name, lut.platform_name, lut.mode
        )
        if schedule is None:
            return None
        return schedule.prior_for(lut, discount)

    def spec_text(self, lut) -> str | None:
        schedule = self._schedule(
            lut.graph_name, lut.platform_name, lut.mode
        )
        if schedule is None:
            return None
        return schedule.spec_text(lut)


class SurrogatePrior:
    """Cross-network cost surrogate trained on the corpus' LUTs.

    Harvests (static features → log10 latency) pairs from every corpus
    network of the same (platform, mode) **excluding** the target
    (held-out semantics), fits one deterministic least-squares model,
    and seeds the target's prior from the predicted costs.

    ``lut_resolver`` maps a stored :class:`CampaignJob` to its cached
    :class:`LatencyTable` (or None) and must be *cache-only* — warming
    a search must never trigger corpus profiling.
    """

    kind = "surrogate"

    def __init__(self, store, lut_resolver) -> None:
        self.store = store
        self.lut_resolver = lut_resolver

    def _fit(
        self, network: str, platform: str, mode: str
    ) -> WeightsPrior | None:
        libraries = registered_libraries()
        features: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        seen: set[str] = set()
        for row in self.store.query(platform=platform, mode=mode):
            job = row.job
            if job.network == network or job.network in seen:
                continue
            corpus_lut = self.lut_resolver(job)
            if corpus_lut is None:
                continue
            seen.add(job.network)
            cidx = corpus_lut.indexed()
            for i, block in enumerate(
                static_features(cidx, corpus_lut.meta, libraries)
            ):
                features.append(block)
                targets.append(
                    np.log10(np.maximum(cidx.times[i], _LOG_FLOOR_MS))
                )
        if not features:
            return None
        design = np.vstack(features)
        response = np.concatenate(targets)
        weights, *_ = np.linalg.lstsq(design, response, rcond=None)
        return WeightsPrior(weights, libraries)

    def prior_for(self, lut, discount: float = 0.9) -> np.ndarray | None:
        fitted = self._fit(lut.graph_name, lut.platform_name, lut.mode)
        if fitted is None:
            return None
        return fitted.prior_for(lut, discount)

    def spec_text(self, lut) -> str | None:
        fitted = self._fit(lut.graph_name, lut.platform_name, lut.mode)
        if fitted is None:
            return None
        return fitted.spec_text(lut)


# -- resolution and transport ------------------------------------------------


def make_prior(kind: str, store=None, lut_resolver=None) -> QPrior:
    """The prior implementing one ``warm_start`` knob value.

    ``stored``/``surrogate`` without a store degrade to
    :class:`ZeroPrior` — a warm request where no corpus is reachable
    runs cold rather than failing the job.
    """
    validate_warm_start(kind)
    if kind == "off" or store is None:
        return ZeroPrior()
    if kind == "stored":
        return StoredQPrior(store)
    return SurrogatePrior(store, lut_resolver or (lambda job: None))


def resolve_prior_spec(
    kind: str,
    network: str,
    platform: str,
    mode: str,
    store,
    lut_resolver=None,
) -> str | None:
    """Resolve a portable prior spec from job identity alone.

    What a submitter with corpus access (the service, or the CLI
    against a local store) computes before shipping the job: the
    stored or surrogate prior collapsed to transport JSON.  Needs no
    target LUT — unfit schedules degrade to cold starts worker-side.
    Returns None (run cold) when the corpus offers nothing.
    """
    validate_warm_start(kind)
    if kind == "off" or store is None:
        return None
    if kind == "stored":
        schedule = StoredQPrior(store)._schedule(network, platform, mode)
        return schedule.spec_text() if schedule is not None else None
    fitted = SurrogatePrior(
        store, lut_resolver or (lambda job: None)
    )._fit(network, platform, mode)
    return fitted.spec_text() if fitted is not None else None


def encode_prior_spec(spec: dict) -> str:
    """Serialize a portable prior spec (compact, float-exact JSON)."""
    return json.dumps(
        {"format": PRIOR_SPEC_FORMAT, **spec}, separators=(",", ":")
    )


def decode_prior_spec(text: str) -> QPrior:
    """Revive a prior from its portable spec (the lease payload)."""
    try:
        body = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed prior spec: {exc}") from None
    if not isinstance(body, dict) or body.get("format") != PRIOR_SPEC_FORMAT:
        raise ConfigError(
            f"unsupported prior spec format {body.get('format')!r} "
            f"(this build reads format {PRIOR_SPEC_FORMAT})"
        )
    kind = body.get("kind")
    if kind == "stored":
        return SchedulePrior(dict(body["assignments"]))
    if kind == "surrogate":
        return WeightsPrior(
            np.asarray(body["weights"], dtype=np.float64),
            tuple(body["libraries"]),
        )
    raise ConfigError(f"unknown prior spec kind {kind!r}")
