"""Epsilon-greedy schedules (paper §IV-C, §V-B, Fig. 4).

The paper's schedule: "In all experiments, 50% of the total episodes
correspond to full exploration and 5% to any other epsilon from 0.9 to
0.1" — with the remaining 5% at epsilon = 0 (full exploitation), which is
exactly Fig. 4's 1000-episode run: 500 exploration episodes, then epsilon
drops by 0.1 every 50 episodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError


@dataclass(frozen=True)
class EpsilonPhase:
    """A run of consecutive episodes sharing one epsilon."""

    epsilon: float
    episodes: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise SearchError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if self.episodes < 0:
            raise SearchError(f"episodes must be >= 0, got {self.episodes}")


class EpsilonSchedule:
    """A piecewise-constant epsilon schedule over episodes."""

    def __init__(self, phases: list[EpsilonPhase]) -> None:
        if not phases:
            raise SearchError("epsilon schedule needs at least one phase")
        self.phases = list(phases)
        self._boundaries: list[tuple[int, float]] = []
        start = 0
        for phase in self.phases:
            start += phase.episodes
            self._boundaries.append((start, phase.epsilon))
        if start == 0:
            raise SearchError("epsilon schedule has zero total episodes")

    @property
    def total_episodes(self) -> int:
        """Total number of episodes across all phases."""
        return self._boundaries[-1][0]

    def epsilon_for(self, episode: int) -> float:
        """Epsilon for a 0-based episode index."""
        if not 0 <= episode < self.total_episodes:
            raise SearchError(
                f"episode {episode} outside schedule of {self.total_episodes}"
            )
        for boundary, epsilon in self._boundaries:
            if episode < boundary:
                return epsilon
        raise AssertionError("unreachable")

    def trace(self) -> list[float]:
        """Epsilon per episode, as a list (for plots/tests)."""
        return [self.epsilon_for(i) for i in range(self.total_episodes)]

    # -- constructors --------------------------------------------------------

    @classmethod
    def paper(cls, total_episodes: int = 1000) -> "EpsilonSchedule":
        """The paper's schedule (§V-B): 50% explore, 5% per step 0.9..0.1,
        the remainder at full exploitation."""
        if total_episodes < 20:
            raise SearchError(
                "paper schedule needs >= 20 episodes to fit all phases"
            )
        explore = total_episodes // 2
        step = max(total_episodes // 20, 1)  # 5% per intermediate epsilon
        phases = [EpsilonPhase(1.0, explore)]
        used = explore
        for tenths in range(9, 0, -1):
            phases.append(EpsilonPhase(tenths / 10.0, step))
            used += step
        remaining = total_episodes - used
        if remaining < 0:
            raise SearchError("paper schedule phases exceed total episodes")
        phases.append(EpsilonPhase(0.0, remaining))
        return cls(phases)

    @classmethod
    def linear(cls, total_episodes: int) -> "EpsilonSchedule":
        """Ablation: epsilon decays linearly 1.0 -> 0.0 over ten steps."""
        if total_episodes < 10:
            raise SearchError("linear schedule needs >= 10 episodes")
        step = total_episodes // 10
        phases = [
            EpsilonPhase(1.0 - tenth / 10.0, step) for tenth in range(9)
        ]
        phases.append(EpsilonPhase(0.0, total_episodes - 9 * step))
        return cls(phases)

    @classmethod
    def constant(cls, epsilon: float, total_episodes: int) -> "EpsilonSchedule":
        """Ablation: a fixed epsilon throughout."""
        return cls([EpsilonPhase(epsilon, total_episodes)])

    def __repr__(self) -> str:
        parts = ", ".join(f"{p.epsilon:g}x{p.episodes}" for p in self.phases)
        return f"EpsilonSchedule({parts})"
