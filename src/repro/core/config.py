"""Search configuration (paper §V-B).

Defaults are the paper's: learning rate 0.05, discount factor 0.9
("slightly more importance to short-term rewards"), replay buffer of 128
transitions ("following [29]"), reward shaping on, and the 50%-explore
epsilon schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.epsilon import EpsilonSchedule
from repro.errors import ConfigError


@dataclass
class ServiceConfig:
    """Configuration of the async campaign service (``repro serve``).

    The service accepts :class:`~repro.runtime.campaign.CampaignJob`
    submissions over HTTP, runs them on a bounded worker pool and
    persists payloads in a :class:`~repro.runtime.store.ResultStore`;
    see :mod:`repro.runtime.service` and ``docs/service.md``.
    """

    #: Interface the HTTP server binds (loopback by default; bind
    #: 0.0.0.0 explicitly to serve a fleet).
    host: str = "127.0.0.1"
    #: TCP port; 0 lets the OS pick (the bound port is printed and
    #: exposed as ``CampaignService.port``).
    port: int = 8421
    #: Worker processes draining the job queue.  0 accepts jobs but
    #: never runs them (useful for tests and manual queue control).
    workers: int = 2
    #: Maximum queued (not yet running) jobs before ``POST /jobs``
    #: answers 429 — the service's back-pressure valve.
    queue_limit: int = 64
    #: Result-store database path (None: in-memory, lives with the
    #: service process; see :class:`~repro.runtime.store.ResultStore`).
    store_path: str | None = None
    #: Local LUT cache tier shared by worker jobs — also the shard
    #: tree this instance serves over ``GET/PUT /luts`` (None: no
    #: local tier, and the LUT endpoints answer misses/503).
    cache_dir: str | None = None
    #: Remote shard server URL(s) chained behind the local tier —
    #: worker jobs fetch LUTs profiled elsewhere in the fleet before
    #: profiling themselves (see :mod:`repro.runtime.lutcache`).
    cache_remote: str | None = None
    #: Seconds between keep-alive events on an idle progress stream.
    heartbeat_s: float = 0.5
    #: Finished job records retained in memory for ``GET /jobs``.
    #: Oldest terminal records are evicted past this bound (payloads
    #: stay available through the result store); queued/running
    #: records are never evicted.
    keep_records: int = 1024
    #: Seconds a fleet worker's lease stays valid without a heartbeat.
    #: Each heartbeat extends the deadline by this much; a missed
    #: deadline expires the lease and requeues the job.
    lease_ttl_s: float = 30.0
    #: Seconds between lease-reaper sweeps (expiry detection latency).
    lease_check_s: float = 1.0
    #: Times a job may be (re)leased before a further expiry marks it
    #: failed instead of requeueing it — bounds crash loops on a job
    #: that reliably kills its workers.
    max_lease_retries: int = 3
    #: Per-tenant cap on *active* (queued + running/leased) jobs; 0
    #: disables the quota.  Exceeding it answers 429 + Retry-After.
    quota_jobs: int = 0
    #: Per-tenant token-bucket rate limit on ``POST /jobs`` requests,
    #: in requests per second; 0 disables rate limiting.
    rate_limit_per_s: float = 0.0
    #: Token-bucket burst capacity (requests a quiet tenant may send
    #: back-to-back before the per-second rate applies).
    rate_burst: int = 10
    #: Seconds graceful shutdown waits for outstanding fleet leases to
    #: complete before releasing them (their jobs are then requeued
    #: and cancelled like other queued jobs).
    drain_timeout_s: float = 30.0
    #: Maximum jobs one ``POST /leases`` may claim (``max_jobs`` is
    #: clamped to this) — bounds how much queued work a single slow or
    #: crash-prone worker can hold hostage under one lease.
    lease_batch_limit: int = 64
    #: Result-store group-commit buffer size: 0 commits every result
    #: immediately; N > 0 coalesces up to N rows per sqlite commit
    #: (flushed on batch boundaries, reaper ticks and shutdown).  See
    #: :class:`~repro.runtime.store.ResultStore`.
    store_group_commit: int = 0
    #: Run the file-backed result store in WAL mode with
    #: ``synchronous=NORMAL`` (the throughput default); False keeps
    #: the rollback journal with per-write full fsync durability.
    store_wal: bool = True
    #: Checkpoint search/multi-seed jobs every N episodes (anytime
    #: search: live progress, ``DELETE`` preemption of running jobs,
    #: crash recovery, and ``submit --resume``).  0 disables — the
    #: default, since checkpointing adds per-boundary snapshot work
    #: and store writes.  See :mod:`repro.core.checkpoint`.
    checkpoint_every: int = 0
    #: Seconds a persisted checkpoint of a non-terminal job survives
    #: without being refreshed before the reaper garbage-collects it
    #: (checkpoints of completed jobs are deleted immediately).
    checkpoint_ttl_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers}")
        if self.queue_limit < 1:
            raise ConfigError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.heartbeat_s <= 0:
            raise ConfigError(
                f"heartbeat_s must be > 0, got {self.heartbeat_s}"
            )
        if self.keep_records < 1:
            raise ConfigError(
                f"keep_records must be >= 1, got {self.keep_records}"
            )
        if self.lease_ttl_s <= 0:
            raise ConfigError(
                f"lease_ttl_s must be > 0, got {self.lease_ttl_s}"
            )
        if self.lease_check_s <= 0:
            raise ConfigError(
                f"lease_check_s must be > 0, got {self.lease_check_s}"
            )
        if self.max_lease_retries < 1:
            raise ConfigError(
                f"max_lease_retries must be >= 1, got {self.max_lease_retries}"
            )
        if self.quota_jobs < 0:
            raise ConfigError(
                f"quota_jobs must be >= 0, got {self.quota_jobs}"
            )
        if self.rate_limit_per_s < 0:
            raise ConfigError(
                f"rate_limit_per_s must be >= 0, got {self.rate_limit_per_s}"
            )
        if self.rate_burst < 1:
            raise ConfigError(
                f"rate_burst must be >= 1, got {self.rate_burst}"
            )
        if self.drain_timeout_s < 0:
            raise ConfigError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
        if self.lease_batch_limit < 1:
            raise ConfigError(
                f"lease_batch_limit must be >= 1, got {self.lease_batch_limit}"
            )
        if self.store_group_commit < 0:
            raise ConfigError(
                f"store_group_commit must be >= 0, got {self.store_group_commit}"
            )
        if self.checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_ttl_s <= 0:
            raise ConfigError(
                f"checkpoint_ttl_s must be > 0, got {self.checkpoint_ttl_s}"
            )


@dataclass
class SearchConfig:
    """Hyper-parameters of one QS-DNN search."""

    episodes: int = 1000
    learning_rate: float = 0.05
    discount: float = 0.9
    replay_capacity: int = 128
    replay_enabled: bool = True
    #: Reward shaping (paper §IV-C): per-layer negative latency rewards.
    #: Off -> only the terminal transition carries the (total) reward.
    reward_shaping: bool = True
    #: First update of a Q entry writes its target directly (removes the
    #: optimistic zero-init bias; see QTable).  Off by default — the
    #: paper uses plain eq. (2) from zero; exposed for ablations.
    first_visit_bootstrap: bool = False
    #: Coordinate-descent sweeps applied to the best-found configuration
    #: before reporting (LUT-only, strictly improving; see
    #: :mod:`repro.core.polish`).  0 disables (raw RL output).
    polish_sweeps: int = 2
    #: Episode-kernel backend: ``"auto"`` picks numba when installed
    #: (honoring ``REPRO_KERNEL_BACKEND``), else the pure-Python
    #: reference backend; ``"mega"`` forces the structure-of-arrays
    #: multi-seed path (scalar searches degrade it to the per-seed
    #: backend).  All are bit-identical; see :mod:`repro.core.kernels`.
    kernel: str = "auto"
    seed: int = 0
    epsilon: EpsilonSchedule = field(default=None)  # type: ignore[assignment]
    #: Record the per-episode latency curve (Figs. 4/5).
    track_curve: bool = True
    #: Q-prior used to seed the table (``off``/``stored``/``surrogate``;
    #: see :mod:`repro.core.priors`).  ``off`` keeps the zero init and
    #: is bitwise-identical to builds without the prior layer
    #: (exactness contract 9).
    warm_start: str = "off"

    def __post_init__(self) -> None:
        if self.episodes < 1:
            raise ConfigError(f"episodes must be >= 1, got {self.episodes}")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )
        if not 0.0 <= self.discount <= 1.0:
            raise ConfigError(f"discount must be in [0, 1], got {self.discount}")
        if self.replay_capacity < 1:
            raise ConfigError(
                f"replay_capacity must be >= 1, got {self.replay_capacity}"
            )
        if self.polish_sweeps < 0:
            raise ConfigError(
                f"polish_sweeps must be >= 0, got {self.polish_sweeps}"
            )
        if self.kernel not in ("auto", "numba", "reference", "mega"):
            raise ConfigError(
                "kernel must be auto, numba, reference or mega, "
                f"got {self.kernel!r}"
            )
        from repro.core.priors import validate_warm_start

        validate_warm_start(self.warm_start)
        if self.epsilon is None:
            self.epsilon = (
                EpsilonSchedule.paper(self.episodes)
                if self.episodes >= 20
                else EpsilonSchedule.constant(1.0, self.episodes)
            )
        if self.epsilon.total_episodes != self.episodes:
            raise ConfigError(
                f"epsilon schedule covers {self.epsilon.total_episodes} episodes, "
                f"config says {self.episodes}"
            )
