"""QS-DNN: the Q-learning-based search engine (paper §IV-V).

The search consumes only a :class:`~repro.engine.lut.LatencyTable` — the
two-phase split that lets it run "in a standard Intel CPU ... in less
than 10 min" while the board is needed only for profiling.
"""

from repro.core.config import SearchConfig
from repro.core.epsilon import EpsilonSchedule
from repro.core.kernels import numba_available, resolve_backend
from repro.core.multi_seed import MultiSeedResult, MultiSeedSearch, seed_range
from repro.core.polish import coordinate_descent
from repro.core.qtable import QTable, QTableFlat
from repro.core.replay import ReplayBuffer, Transition
from repro.core.state import SearchState
from repro.core.result import SearchResult
from repro.core.search import QSDNNSearch

__all__ = [
    "SearchConfig",
    "EpsilonSchedule",
    "coordinate_descent",
    "MultiSeedResult",
    "MultiSeedSearch",
    "numba_available",
    "resolve_backend",
    "seed_range",
    "QTable",
    "QTableFlat",
    "ReplayBuffer",
    "Transition",
    "SearchState",
    "SearchResult",
    "QSDNNSearch",
]
