"""Anytime-search checkpoints: versioned, float-exact, backend-neutral.

A checkpoint is everything a QS-DNN search needs to continue from an
episode boundary and finish **bitwise-identical** to the uninterrupted
run: per seed the flat Q block with its row-max and visited caches
(the exact :meth:`~repro.core.qtable.QTable.flat` layout), the replay
ring with its fill/position counters, both named RNG streams'
bit-generator states, and the best-so-far tracking (best total, best
choices, latency curve); per run the episode index, epsilon trace and
accumulated wall clock.

The format is deliberately backend-neutral: the ring is stored as
``(layer, row, action, next_row, reward)`` rows in slot order — the
column layout of the mega SoA ring — and each backend exports/imports
its own representation losslessly (``export_ring``/``import_ring`` on
the runners, the per-seed slicing helpers below for
:class:`~repro.core.kernels.mega.MegaState`).  A checkpoint captured
under one kernel backend therefore resumes under any other, and the
result is still bitwise equal (the backends run identical arithmetic).

Serialization is plain JSON: Python emits shortest-round-trip float
literals, so every double survives encode/decode bit-for-bit (the same
guarantee the result-store codecs lean on), and NumPy bit-generator
states are dicts of (arbitrary-precision) ints, which JSON carries
exactly.  :data:`CHECKPOINT_FORMAT` versions the schema; decoding an
unknown version raises :class:`~repro.errors.CheckpointError` loudly
instead of resuming under semantics this code never implemented.

Capture draws **no** randomness and happens only at episode
boundaries, so the policy/replay streams of a checkpointing run are
byte-identical to a plain run — checkpointing never perturbs the
search it is snapshotting.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import CheckpointError

#: Schema version of the checkpoint dict.  Bump on any change to the
#: captured fields or their meaning; decoding rejects other versions.
CHECKPOINT_FORMAT = 1

#: Job kinds that can checkpoint (the episode-loop searches).
CHECKPOINT_KINDS = ("search", "multi-seed")


# -- RNG state ------------------------------------------------------------


def rng_state(rng) -> dict:
    """A JSON-safe copy of a ``numpy.random.Generator``'s state.

    ``bit_generator.state`` is a dict of strings and ints (PCG64 keeps
    its 128-bit state/increment as Python ints), which JSON round-trips
    exactly.
    """
    state = rng.bit_generator.state
    return json.loads(json.dumps(state))


def set_rng_state(rng, state: dict) -> None:
    """Restore a generator to a previously captured state, exactly."""
    rng.bit_generator.state = state


# -- per-seed snapshots ---------------------------------------------------


def seed_snapshot(
    seed: int,
    qtable,
    runner,
    policy_rng,
    replay_rng,
    best_total: float,
    best_choices,
    curve: list[float],
) -> dict:
    """Capture one seed's complete search state.

    Flushes the runner's backend-local state into the QTable's flat
    arrays first (``finalize()`` is idempotent on every backend), then
    copies the flat Q block, the canonical ring rows, both RNG states
    and the best-so-far tracking.
    """
    runner.finalize()
    flat = qtable.flat()
    return {
        "seed": int(seed),
        "q": flat.data.tolist(),
        "row_max": flat.row_max.tolist(),
        "visited": [bool(v) for v in flat.visited.tolist()],
        "ring": runner.export_ring(),
        "policy_rng": rng_state(policy_rng),
        "replay_rng": rng_state(replay_rng),
        "best_total": float(best_total),
        "best_choices": (
            [int(c) for c in best_choices] if best_choices is not None else None
        ),
        "curve": [float(c) for c in curve],
    }


def restore_seed_arrays(snap: dict, qtable) -> None:
    """Write a seed snapshot's Q block back into a fresh QTable.

    Must run **before** ``make_runner``: the reference backend mirrors
    the flat arrays into Python lists at construction, so restoring
    first makes every backend start from the checkpointed state.
    """
    flat = qtable.flat()
    data = np.asarray(snap["q"], dtype=np.float64)
    row_max = np.asarray(snap["row_max"], dtype=np.float64)
    if data.shape != flat.data.shape or row_max.shape != flat.row_max.shape:
        raise CheckpointError(
            "checkpoint Q block does not match this search's layout "
            f"(got {data.shape[0]}/{row_max.shape[0]} entries, table has "
            f"{flat.data.shape[0]}/{flat.row_max.shape[0]})"
        )
    flat.data[:] = data
    flat.row_max[:] = row_max
    if flat.visited.shape[0]:
        visited = np.asarray(snap["visited"], dtype=np.bool_)
        if visited.shape != flat.visited.shape:
            raise CheckpointError(
                "checkpoint visited flags do not match this search's layout"
            )
        flat.visited[:] = visited


# -- mega SoA snapshots ---------------------------------------------------


def mega_seed_snapshot(
    state,
    s: int,
    seed: int,
    policy_rng,
    replay_rng,
    best_total: float,
    best_choices,
    curve: list[float],
) -> dict:
    """One seed's snapshot sliced out of a :class:`MegaState`.

    The mega arrays already hold every seed's state in the canonical
    flat layout (``q[s]`` *is* the seed's ``QTable.flat().data``), so
    capture is pure slicing — no kernel round-trip.
    """
    if state.replay_enabled:
        ring_rows = [
            [
                int(state.ring[s, t, 0]),
                int(state.ring[s, t, 1]),
                int(state.ring[s, t, 2]),
                int(state.ring[s, t, 3]),
                float(state.ring[s, t, 4]),
            ]
            for t in range(state.fill)
        ]
        ring = {"rows": ring_rows, "fill": int(state.fill), "pos": int(state.pos)}
    else:
        ring = None
    return {
        "seed": int(seed),
        "q": state.q[s].tolist(),
        "row_max": state.row_max[s].tolist(),
        "visited": [bool(v) for v in state.visited[s].tolist()],
        "ring": ring,
        "policy_rng": rng_state(policy_rng),
        "replay_rng": rng_state(replay_rng),
        "best_total": float(best_total),
        "best_choices": (
            [int(c) for c in best_choices] if best_choices is not None else None
        ),
        "curve": [float(c) for c in curve],
    }


def restore_mega_seed(snap: dict, state, s: int) -> None:
    """Write one seed snapshot into row ``s`` of a fresh MegaState.

    The lockstep fill/pos counters are shared across seeds; the caller
    restores them once from any member snapshot (they are identical in
    every seed of a lockstep checkpoint by construction).
    """
    q = np.asarray(snap["q"], dtype=np.float64)
    row_max = np.asarray(snap["row_max"], dtype=np.float64)
    if q.shape != state.q[s].shape or row_max.shape != state.row_max[s].shape:
        raise CheckpointError(
            "checkpoint Q block does not match this sweep's layout"
        )
    state.q[s] = q
    state.row_max[s] = row_max
    if state.visited.shape[1]:
        state.visited[s] = np.asarray(snap["visited"], dtype=np.bool_)
    ring = snap.get("ring")
    if ring is not None and state.replay_enabled:
        for t, row in enumerate(ring["rows"]):
            state.ring[s, t, 0] = row[0]
            state.ring[s, t, 1] = row[1]
            state.ring[s, t, 2] = row[2]
            state.ring[s, t, 3] = row[3]
            state.ring[s, t, 4] = row[4]
        state.fill = int(ring["fill"])
        state.pos = int(ring["pos"])


# -- the run-level envelope ----------------------------------------------


def build_checkpoint(
    kind: str,
    graph: str,
    mode: str,
    episodes: int,
    episode: int,
    kernel: str,
    elapsed_s: float,
    epsilon_trace: list[float],
    seed_snaps: list[dict],
    warm_start: str = "off",
) -> dict:
    """Assemble the run-level checkpoint envelope.

    ``episode`` counts *completed* episodes — resume continues from
    that index.  ``best_ms`` is the headline best across seeds (what
    progress streams display); it is always finite because capture
    happens after at least one completed episode.  ``warm_start``
    records which Q-prior seeded the run; resume validates it so a
    warm checkpoint never silently continues under a cold label (the
    snapshot's Q block already carries the prior's effect — resume
    never re-applies priors).
    """
    ckpt = {
        "format": CHECKPOINT_FORMAT,
        "kind": kind,
        "graph": graph,
        "mode": mode,
        "episodes": int(episodes),
        "episode": int(episode),
        "kernel": kernel,
        "best_ms": min(s["best_total"] for s in seed_snaps),
        "elapsed_s": float(elapsed_s),
        "epsilon_trace": [float(e) for e in epsilon_trace],
        "seeds": seed_snaps,
    }
    # Cold checkpoints stay byte-identical to pre-prior builds (the
    # encoded text is part of the bitwise-off contract); the key only
    # appears for warm runs.
    if warm_start != "off":
        ckpt["warm_start"] = warm_start
    return ckpt


def encode_checkpoint(ckpt: dict) -> str:
    """The checkpoint as canonical JSON text (floats bitwise-exact)."""
    return json.dumps(ckpt, separators=(",", ":"))


def decode_checkpoint(text: str) -> dict:
    """Parse checkpoint text, rejecting unknown formats loudly."""
    try:
        ckpt = json.loads(text)
    except (ValueError, TypeError) as error:
        raise CheckpointError(f"checkpoint does not parse as JSON: {error}")
    if not isinstance(ckpt, dict):
        raise CheckpointError(
            f"checkpoint must be a JSON object, got {type(ckpt).__name__}"
        )
    version = ckpt.get("format")
    if version != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unknown checkpoint format {version!r}; this build reads "
            f"format {CHECKPOINT_FORMAT} — refusing to resume under "
            "semantics it cannot verify"
        )
    return ckpt


def check_resume(
    ckpt: dict,
    kind: str,
    graph: str,
    mode: str,
    episodes: int,
    seeds: list[int],
    warm_start: str = "off",
) -> None:
    """Verify a checkpoint belongs to this exact search, or raise.

    Resuming a checkpoint under a different graph, mode, episode
    budget, seed list or warm-start kind would silently answer a
    different question; every mismatch is a loud
    :class:`CheckpointError`.  Checkpoints written before the prior
    layer carry no ``warm_start`` key and count as ``"off"``.
    """
    if ckpt.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unknown checkpoint format {ckpt.get('format')!r}"
        )
    if ckpt.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint is for kind {ckpt.get('kind')!r}, not {kind!r}"
        )
    if ckpt.get("graph") != graph or ckpt.get("mode") != mode:
        raise CheckpointError(
            f"checkpoint is for {ckpt.get('graph')}/{ckpt.get('mode')}, "
            f"this search runs {graph}/{mode}"
        )
    if int(ckpt.get("episodes", -1)) != int(episodes):
        raise CheckpointError(
            f"checkpoint budget is {ckpt.get('episodes')} episodes, "
            f"this search runs {episodes}"
        )
    snap_seeds = [int(s["seed"]) for s in ckpt.get("seeds", [])]
    if snap_seeds != [int(s) for s in seeds]:
        raise CheckpointError(
            f"checkpoint covers seeds {snap_seeds}, this search runs "
            f"{list(seeds)}"
        )
    ckpt_warm = ckpt.get("warm_start", "off")
    if ckpt_warm != warm_start:
        raise CheckpointError(
            f"checkpoint was seeded with warm_start={ckpt_warm!r}, "
            f"this search runs warm_start={warm_start!r}"
        )
    completed = int(ckpt.get("episode", -1))
    if not 0 < completed < int(episodes):
        raise CheckpointError(
            f"checkpoint episode index {completed} is outside (0, {episodes})"
        )
