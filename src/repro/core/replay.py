"""Experience replay (paper §IV-C).

"We have added an experience replay after each episode which helps the
action-value function converge faster [34].  We have set the experience
replay's buffer size to 128 following [29]."

The buffer is a FIFO ring of transitions; after each episode its whole
content is replayed in a random order, bootstrapping from the *current*
Q table (so late replays benefit from earlier ones).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.qtable import QTable
from repro.errors import SearchError


@dataclass(frozen=True)
class Transition:
    """One (state, action, reward, next-state) step of an episode.

    ``layer`` and ``prev_choice`` identify the state; ``action`` the
    primitive picked for ``layer``; ``reward`` the shaped reward;
    ``next_row`` the successor state's row at layer + 1 (None for chain
    semantics, where it equals ``action``).
    """

    layer: int
    prev_choice: int
    action: int
    reward: float
    next_row: int | None = None


class ReplayBuffer:
    """Fixed-capacity FIFO of transitions."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise SearchError(f"replay capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: list[Transition] = []
        self._next = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, transition: Transition) -> None:
        """Insert, evicting the oldest transition when full."""
        if len(self._items) < self.capacity:
            self._items.append(transition)
        else:
            self._items[self._next] = transition
        self._next = (self._next + 1) % self.capacity

    def replay(self, qtable: QTable, rng: np.random.Generator) -> int:
        """Re-apply every buffered transition in random order.

        Returns the number of updates applied.
        """
        if not self._items:
            return 0
        order = rng.permutation(len(self._items))
        for idx in order:
            t = self._items[idx]
            qtable.update(t.layer, t.prev_choice, t.action, t.reward, t.next_row)
        return len(self._items)

    def clear(self) -> None:
        """Empty the buffer."""
        self._items.clear()
        self._next = 0
