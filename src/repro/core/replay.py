"""Experience replay (paper §IV-C).

"We have added an experience replay after each episode which helps the
action-value function converge faster [34].  We have set the experience
replay's buffer size to 128 following [29]."

The buffer is a FIFO ring of transitions; after each episode its whole
content is replayed in a random order, bootstrapping from the *current*
Q table (so late replays benefit from earlier ones).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.qtable import QTable
from repro.errors import SearchError


class Transition(NamedTuple):
    """One (state, action, reward, next-state) step of an episode.

    ``layer`` and ``prev_choice`` identify the state; ``action`` the
    primitive picked for ``layer``; ``reward`` the shaped reward;
    ``next_row`` the successor state's row at layer + 1 (None for chain
    semantics, where it equals ``action``).

    A ``NamedTuple`` so the replay buffer can treat it interchangeably
    with the plain tuples of its fast path.
    """

    layer: int
    prev_choice: int
    action: int
    reward: float
    next_row: int | None = None


class ReplayBuffer:
    """Fixed-capacity FIFO of transitions.

    Transitions are stored as plain ``(layer, prev_choice, action,
    reward, next_row)`` tuples — the buffer is written and replayed
    hundreds of thousands of times per search, and tuple packing is
    several times cheaper than dataclass construction.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise SearchError(f"replay capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: list[tuple[int, int, int, float, int | None]] = []
        self._next = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, transition: Transition) -> None:
        """Insert, evicting the oldest transition when full."""
        self.push_step(*transition)

    def push_step(
        self,
        layer: int,
        prev_choice: int,
        action: int,
        reward: float,
        next_row: int | None = None,
    ) -> None:
        """Insert one transition by fields (the search-loop fast path:
        packs a plain tuple, skipping :class:`Transition` construction)."""
        item = (layer, prev_choice, action, reward, next_row)
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._next] = item
        self._next = (self._next + 1) % self.capacity

    def replay(self, qtable: QTable, rng: np.random.Generator) -> int:
        """Re-apply every buffered transition in random order.

        Returns the number of updates applied.
        """
        if not self._items:
            return 0
        items = self._items
        update = qtable.update
        for idx in rng.permutation(len(items)).tolist():
            layer, prev_choice, action, reward, next_row = items[idx]
            update(layer, prev_choice, action, reward, next_row)
        return len(items)

    def clear(self) -> None:
        """Empty the buffer."""
        self._items.clear()
        self._next = 0
