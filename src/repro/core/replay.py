"""Experience replay (paper §IV-C).

"We have added an experience replay after each episode which helps the
action-value function converge faster [34].  We have set the experience
replay's buffer size to 128 following [29]."

The buffer is a FIFO ring of transitions; after each episode its whole
content is replayed in a random order, bootstrapping from the *current*
Q table (so late replays benefit from earlier ones).

Storage is a preallocated ``(capacity, 5)`` float64 ring — one row per
transition, ``(layer, prev_choice, action, reward, next_row)`` with
``next_row = -1`` encoding chain semantics — so pushes never allocate
and the whole pass replays as one compiled kernel call when the numba
backend is available.  The replay order is drawn into a preallocated
int64 scratch buffer via an in-place shuffle (bit-identical to
``rng.permutation`` — the generator consumes the same stream), so the
pure-Python fallback stops churning per-episode permutation lists too.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.kernels import resolve_backend
from repro.core.qtable import QTable
from repro.errors import ConfigError, SearchError


class Transition(NamedTuple):
    """One (state, action, reward, next-state) step of an episode.

    ``layer`` and ``prev_choice`` identify the state; ``action`` the
    primitive picked for ``layer``; ``reward`` the shaped reward;
    ``next_row`` the successor state's row at layer + 1 (None for chain
    semantics, where it equals ``action``).
    """

    layer: int
    prev_choice: int
    action: int
    reward: float
    next_row: int | None = None


class ReplayBuffer:
    """Fixed-capacity FIFO ring of transitions over a ``(capacity, 5)``
    preallocated array (see module docstring for the row layout)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise SearchError(f"replay capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data = np.empty((capacity, 5), dtype=np.float64)
        self._size = 0
        self._next = 0
        self._perm = np.empty(capacity, dtype=np.int64)
        self._iota = np.arange(capacity, dtype=np.int64)

    def __len__(self) -> int:
        return self._size

    def push(self, transition: Transition) -> None:
        """Insert, evicting the oldest transition when full."""
        self.push_step(*transition)

    def push_step(
        self,
        layer: int,
        prev_choice: int,
        action: int,
        reward: float,
        next_row: int | None = None,
    ) -> None:
        """Insert one transition by fields (no allocation: writes the
        ring row in place)."""
        row = self._data[self._next]
        row[0] = layer
        row[1] = prev_choice
        row[2] = action
        row[3] = reward
        row[4] = -1.0 if next_row is None else next_row
        if self._size < self.capacity:
            self._size += 1
        self._next = (self._next + 1) % self.capacity

    def transitions(self) -> list[Transition]:
        """The buffered transitions, in ring-storage order (a copy)."""
        out = []
        for k in range(self._size):
            row = self._data[k]
            next_row = row[4]
            out.append(
                Transition(
                    int(row[0]),
                    int(row[1]),
                    int(row[2]),
                    float(row[3]),
                    None if next_row < 0 else int(next_row),
                )
            )
        return out

    def sample_order(self, rng: np.random.Generator) -> np.ndarray:
        """A fresh replay order over the buffered transitions.

        Shuffles the preallocated scratch in place; the draw consumes
        exactly the stream of ``rng.permutation(len(self))``.  The
        returned view is valid until the next call.
        """
        order = self._perm[: self._size]
        order[:] = self._iota[: self._size]
        rng.shuffle(order)
        return order

    def replay(self, qtable: QTable, rng: np.random.Generator) -> int:
        """Re-apply every buffered transition in random order.

        Runs as one compiled kernel call when the numba backend is
        selected; the fallback applies :meth:`QTable.update` per
        transition.  Returns the number of updates applied.
        """
        if not self._size:
            return 0
        order = self.sample_order(rng)
        try:
            compiled = resolve_backend() == "numba"
        except ConfigError:
            # e.g. REPRO_KERNEL_BACKEND=numba without numba installed —
            # this method always has a working scalar fallback, so a
            # backend-selection problem must not make replay fail.
            compiled = False
        if compiled:
            from repro.core.kernels import numba_backend

            numba_backend.replay_ring(qtable, self._data, order)
            return self._size
        data = self._data
        update = qtable.update
        for idx in order:
            row = data[idx]
            next_row = row[4]
            update(
                int(row[0]),
                int(row[1]),
                int(row[2]),
                float(row[3]),
                None if next_row < 0 else int(next_row),
            )
        return self._size

    def clear(self) -> None:
        """Empty the buffer."""
        self._size = 0
        self._next = 0
