"""The tabular action-value function (paper §IV-B, eq. 2).

States are (layer depth, primitive chosen at the layer's *primary graph
predecessor*); actions are the primitive choices of the current layer.
The Q function is therefore one matrix per layer::

    Q[i][parent_choice, action]   for layer i, i = 0 .. L-1

On a chain the parent of layer i is layer i-1, recovering the familiar
trellis; on branchy graphs (inception modules, residual joins) keying
the state to the graph predecessor makes the compatibility penalty part
of the reward a deterministic function of (state, action) — which plain
topological chaining cannot guarantee.  Layers fed directly by the
network input use a single virtual start state.

The update is the paper's eq. (2)::

    Q(s,a) <- Q(s,a)(1 - alpha) + alpha * (r + gamma * max_a' Q(s',a'))

where s' is the state the agent is in when making the *next* decision —
so the bootstrap row of layer i+1 is the episode's choice at layer
i+1's own parent, supplied by the caller via ``next_row``.

The matrices are stored as plain Python lists: the search applies
hundreds of thousands of single-entry updates per run, and scalar
list arithmetic is several times faster than numpy element access
while computing bit-identical IEEE-754 results.  :meth:`q_values`
materializes a numpy row for callers that want array semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError


class QTable:
    """Per-layer Q matrices over a (possibly branchy) decision sequence.

    Parameters
    ----------
    num_actions:
        Candidate count per layer.
    learning_rate / discount:
        eq. (2)'s alpha and gamma (paper: 0.05 and 0.9).
    row_sizes:
        State count per layer: the parent layer's action count, or 1
        for virtual-start layers.  Defaults to chain wiring
        (``[1, n_0, n_1, ...]``).
    first_visit_bootstrap:
        Rewards are all negative, so a zero-initialized entry looks
        *better* than any learned one and exploitation detours through
        unvisited actions.  When enabled, the first update of an entry
        writes its target directly (as if alpha = 1) and eq. (2)
        applies from the second visit — scale-free optimism removal.
        Disabled by default (the paper uses plain eq. (2) throughout).
    """

    def __init__(
        self,
        num_actions: list[int],
        learning_rate: float,
        discount: float,
        row_sizes: list[int] | None = None,
        first_visit_bootstrap: bool = False,
    ) -> None:
        if not num_actions:
            raise SearchError("QTable needs at least one layer")
        if any(n < 1 for n in num_actions):
            raise SearchError("every layer needs at least one action")
        if not 0.0 < learning_rate <= 1.0:
            raise SearchError(f"learning_rate out of range: {learning_rate}")
        if not 0.0 <= discount <= 1.0:
            raise SearchError(f"discount out of range: {discount}")
        self.learning_rate = learning_rate
        self.discount = discount
        self.first_visit_bootstrap = first_visit_bootstrap
        self.num_actions = list(num_actions)
        if row_sizes is None:
            row_sizes = [1] + self.num_actions[:-1]
        if len(row_sizes) != len(num_actions):
            raise SearchError("row_sizes must match num_actions in length")
        if any(r < 1 for r in row_sizes):
            raise SearchError("every layer needs at least one state row")
        self.row_sizes = list(row_sizes)
        self._keep_rate = 1.0 - learning_rate
        self._q: list[list[list[float]]] = [
            [[0.0] * n for _ in range(r)]
            for r, n in zip(self.row_sizes, self.num_actions)
        ]
        self._visited: list[list[list[bool]]] = [
            [[False] * n for _ in range(r)]
            for r, n in zip(self.row_sizes, self.num_actions)
        ]
        # Exact per-row maxima, maintained incrementally: the eq. (2)
        # bootstrap reads max_a' Q(s', a') on every update, and an O(1)
        # cached lookup replaces an O(n) scan on the hottest path.  The
        # cache is rescanned only when the maximal entry decreases, so
        # it always equals max(row) bit-for-bit.
        self._row_max: list[list[float]] = [
            [0.0] * r for r in self.row_sizes
        ]
        self._num_layers = len(self._q)

    def __len__(self) -> int:
        return self._num_layers

    @property
    def storage(self) -> tuple[list, list]:
        """The live ``(q, row_max)`` nested lists.

        The performance surface for fused update loops (the lockstep
        multi-seed runner): callers may mutate entries in place but must
        preserve the row-max invariant exactly as :meth:`update` does.
        """
        return self._q, self._row_max

    def q_values(self, layer: int, row: int) -> np.ndarray:
        """The action-value row for (layer, parent choice), as an array
        (a snapshot copy — mutations do not write back)."""
        return np.array(self._q[layer][row], dtype=np.float64)

    def greedy_action(self, layer: int, row: int) -> int:
        """argmax_a Q(s, a) with deterministic first-index tie-breaking.

        With bootstrapping on, the argmax runs over visited actions when
        any exist — exploitation follows learned values, leaving pure
        exploration to the epsilon schedule.
        """
        values = self._q[layer][row]
        if self.first_visit_bootstrap:
            visited = self._visited[layer][row]
            best_action = -1
            best_value = -np.inf
            for action, (value, seen) in enumerate(zip(values, visited)):
                if seen and value > best_value:
                    best_value = value
                    best_action = action
            if best_action >= 0:
                return best_action
            return values.index(max(values))
        return values.index(self._row_max[layer][row])

    def best_value(self, layer: int, row: int) -> float:
        """max_a' Q(layer, row, a') — the bootstrap value of a state.

        Returns 0 past the terminal layer (episodic objective).  With
        bootstrapping on, unvisited entries are excluded when possible.
        """
        if layer >= self._num_layers:
            return 0.0
        if self.first_visit_bootstrap:
            values = self._q[layer][row]
            visited = self._visited[layer][row]
            seen = [v for v, f in zip(values, visited) if f]
            if seen:
                return max(seen)
            return max(values)
        return self._row_max[layer][row]

    def update(
        self,
        layer: int,
        row: int,
        action: int,
        reward: float,
        next_row: int | None = None,
    ) -> float:
        """Apply eq. (2); returns the new Q value.

        ``next_row`` identifies the successor state's row in layer
        ``layer + 1`` (the episode's choice at that layer's parent).
        Defaults to ``action`` — exact for chains, where the parent of
        layer i+1 is layer i itself.
        """
        successor = action if next_row is None else next_row
        q_row = self._q[layer][row]
        old = q_row[action]
        if not self.first_visit_bootstrap:
            # Hot path: inline the bootstrap (best_value) as a cached
            # row-max read — this method runs hundreds of thousands of
            # times per search.
            nxt = layer + 1
            boot = 0.0 if nxt >= self._num_layers else self._row_max[nxt][successor]
            new = (
                old * self._keep_rate
                + self.learning_rate * (reward + self.discount * boot)
            )
        else:
            target = reward + self.discount * self.best_value(layer + 1, successor)
            if not self._visited[layer][row][action]:
                new = target
            else:
                new = old * self._keep_rate + self.learning_rate * target
        q_row[action] = new
        max_row = self._row_max[layer]
        current_max = max_row[row]
        if new > current_max:
            max_row[row] = new
        elif old == current_max and new < old:
            # The maximal entry decreased: rescan (another entry may
            # still hold the same maximum, which the rescan preserves).
            max_row[row] = max(q_row)
        self._visited[layer][row][action] = True
        return new

    def greedy_rollout(self, parents: list[int] | None = None) -> list[int]:
        """The current fully-greedy decision sequence.

        ``parents[i]`` is the layer whose choice selects layer i's Q row
        (-1 for the virtual start).  Defaults to chain wiring.
        """
        if parents is None:
            parents = list(range(-1, self._num_layers - 1))
        choices: list[int] = []
        for layer in range(self._num_layers):
            parent = parents[layer]
            row = 0 if parent < 0 else choices[parent]
            choices.append(self.greedy_action(layer, row))
        return choices

    def copy(self) -> "QTable":
        """Deep copy (used by tests and ablation snapshots)."""
        clone = QTable(
            self.num_actions,
            self.learning_rate,
            self.discount,
            row_sizes=self.row_sizes,
            first_visit_bootstrap=self.first_visit_bootstrap,
        )
        clone._q = [[list(row) for row in layer] for layer in self._q]
        clone._visited = [[list(row) for row in layer] for layer in self._visited]
        clone._row_max = [list(row) for row in self._row_max]
        return clone
