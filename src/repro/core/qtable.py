"""The tabular action-value function (paper §IV-B, eq. 2).

States are (layer depth, primitive chosen at the layer's *primary graph
predecessor*); actions are the primitive choices of the current layer.
The Q function is therefore one matrix per layer::

    Q[i][parent_choice, action]   for layer i, i = 0 .. L-1

On a chain the parent of layer i is layer i-1, recovering the familiar
trellis; on branchy graphs (inception modules, residual joins) keying
the state to the graph predecessor makes the compatibility penalty part
of the reward a deterministic function of (state, action) — which plain
topological chaining cannot guarantee.  Layers fed directly by the
network input use a single virtual start state.

The update is the paper's eq. (2)::

    Q(s,a) <- Q(s,a)(1 - alpha) + alpha * (r + gamma * max_a' Q(s',a'))

where s' is the state the agent is in when making the *next* decision —
so the bootstrap row of layer i+1 is the episode's choice at layer
i+1's own parent, supplied by the caller via ``next_row``.

Storage is one contiguous flat ``float64`` array plus per-layer offsets
(row ``(i, r)`` starts at ``q_offsets[i] + r * num_actions[i]``), with
the incremental row-max cache held the same way — the layout the
compiled episode kernels (:mod:`repro.core.kernels`) operate on in
place.  The scalar methods below are the reference semantics those
kernels reproduce bit-for-bit; they compute in Python floats (IEEE-754
doubles, identical results to the compiled path) and are fast enough
for the replay buffer's generic path and for tests, while searches
drive the flat arrays through a kernel backend.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.errors import SearchError


class QTableFlat(NamedTuple):
    """The live flat-array state of a :class:`QTable`.

    The performance surface for the episode kernels: ``data`` holds
    every Q entry (row ``(layer, r)`` starts at
    ``q_offsets[layer] + r * num_actions[layer]``), ``row_max`` the
    per-row maxima (row ``(layer, r)`` at ``rm_offsets[layer] + r``),
    ``visited`` the per-entry visit flags (same layout as ``data``;
    empty unless ``first_visit_bootstrap``).  Kernels may mutate all
    three in place but must preserve the row-max invariant exactly as
    :meth:`QTable.update` does.
    """

    data: np.ndarray
    row_max: np.ndarray
    visited: np.ndarray
    q_offsets: np.ndarray
    rm_offsets: np.ndarray
    num_actions: np.ndarray


class QTable:
    """Per-layer Q matrices over a (possibly branchy) decision sequence.

    Parameters
    ----------
    num_actions:
        Candidate count per layer.
    learning_rate / discount:
        eq. (2)'s alpha and gamma (paper: 0.05 and 0.9).
    row_sizes:
        State count per layer: the parent layer's action count, or 1
        for virtual-start layers.  Defaults to chain wiring
        (``[1, n_0, n_1, ...]``).
    first_visit_bootstrap:
        Rewards are all negative, so a zero-initialized entry looks
        *better* than any learned one and exploitation detours through
        unvisited actions.  When enabled, the first update of an entry
        writes its target directly (as if alpha = 1) and eq. (2)
        applies from the second visit — scale-free optimism removal.
        Disabled by default (the paper uses plain eq. (2) throughout).
    """

    def __init__(
        self,
        num_actions: list[int],
        learning_rate: float,
        discount: float,
        row_sizes: list[int] | None = None,
        first_visit_bootstrap: bool = False,
    ) -> None:
        if not num_actions:
            raise SearchError("QTable needs at least one layer")
        if any(n < 1 for n in num_actions):
            raise SearchError("every layer needs at least one action")
        if not 0.0 < learning_rate <= 1.0:
            raise SearchError(f"learning_rate out of range: {learning_rate}")
        if not 0.0 <= discount <= 1.0:
            raise SearchError(f"discount out of range: {discount}")
        self.learning_rate = learning_rate
        self.discount = discount
        self.first_visit_bootstrap = first_visit_bootstrap
        self.num_actions = list(num_actions)
        if row_sizes is None:
            row_sizes = [1] + self.num_actions[:-1]
        if len(row_sizes) != len(num_actions):
            raise SearchError("row_sizes must match num_actions in length")
        if any(r < 1 for r in row_sizes):
            raise SearchError("every layer needs at least one state row")
        self.row_sizes = list(row_sizes)
        self._keep_rate = 1.0 - learning_rate
        self._num_layers = len(self.num_actions)
        # Contiguous flat layout: layer i's block spans
        # row_sizes[i] * num_actions[i] entries starting at q_off[i];
        # the row-max cache is flat with one slot per (layer, row).
        q_off = [0]
        rm_off = [0]
        for r, n in zip(self.row_sizes, self.num_actions):
            q_off.append(q_off[-1] + r * n)
            rm_off.append(rm_off[-1] + r)
        self._q_off = q_off  # Python ints for the scalar methods
        self._rm_off = rm_off
        self._data = np.zeros(q_off[-1], dtype=np.float64)
        # Exact per-row maxima, maintained incrementally: the eq. (2)
        # bootstrap reads max_a' Q(s', a') on every update, and an O(1)
        # cached lookup replaces an O(n) scan on the hottest path.  The
        # cache is rescanned only when the maximal entry decreases, so
        # it always equals max(row) bit-for-bit.
        self._row_max = np.zeros(rm_off[-1], dtype=np.float64)
        # Visit flags exist (and are maintained) only under
        # first_visit_bootstrap — nothing reads them otherwise.
        self._visited = np.zeros(
            q_off[-1] if first_visit_bootstrap else 0, dtype=np.bool_
        )

    def __len__(self) -> int:
        return self._num_layers

    def flat(self) -> QTableFlat:
        """The live flat-array state (see :class:`QTableFlat`)."""
        return QTableFlat(
            data=self._data,
            row_max=self._row_max,
            visited=self._visited,
            q_offsets=np.asarray(self._q_off[:-1], dtype=np.int64),
            rm_offsets=np.asarray(self._rm_off[:-1], dtype=np.int64),
            num_actions=np.asarray(self.num_actions, dtype=np.int64),
        )

    def _row_base(self, layer: int, row: int) -> int:
        return self._q_off[layer] + row * self.num_actions[layer]

    def q_values(self, layer: int, row: int) -> np.ndarray:
        """The action-value row for (layer, parent choice), as an array
        (a snapshot copy — mutations do not write back)."""
        base = self._row_base(layer, row)
        return self._data[base : base + self.num_actions[layer]].copy()

    def greedy_action(self, layer: int, row: int) -> int:
        """argmax_a Q(s, a) with deterministic first-index tie-breaking.

        With bootstrapping on, the argmax runs over visited actions when
        any exist — exploitation follows learned values, leaving pure
        exploration to the epsilon schedule.
        """
        base = self._row_base(layer, row)
        n = self.num_actions[layer]
        if self.first_visit_bootstrap:
            best_action = -1
            best_value = -np.inf
            for a in range(n):
                if self._visited[base + a]:
                    value = self._data[base + a]
                    if value > best_value:
                        best_value = value
                        best_action = a
            if best_action >= 0:
                return best_action
            return int(np.argmax(self._data[base : base + n]))
        target = self._row_max[self._rm_off[layer] + row]
        return int(np.argmax(self._data[base : base + n] == target))

    def best_value(self, layer: int, row: int) -> float:
        """max_a' Q(layer, row, a') — the bootstrap value of a state.

        Returns 0 past the terminal layer (episodic objective).  With
        bootstrapping on, unvisited entries are excluded when possible.
        """
        if layer >= self._num_layers:
            return 0.0
        if self.first_visit_bootstrap:
            base = self._row_base(layer, row)
            n = self.num_actions[layer]
            values = self._data[base : base + n]
            mask = self._visited[base : base + n]
            if mask.any():
                return float(values[mask].max())
            return float(values.max())
        return float(self._row_max[self._rm_off[layer] + row])

    def update(
        self,
        layer: int,
        row: int,
        action: int,
        reward: float,
        next_row: int | None = None,
    ) -> float:
        """Apply eq. (2); returns the new Q value.

        ``next_row`` identifies the successor state's row in layer
        ``layer + 1`` (the episode's choice at that layer's parent).
        Defaults to ``action`` — exact for chains, where the parent of
        layer i+1 is layer i itself.
        """
        successor = action if next_row is None else next_row
        data = self._data
        base = self._q_off[layer] + row * self.num_actions[layer]
        idx = base + action
        old = float(data[idx])
        if not self.first_visit_bootstrap:
            nxt = layer + 1
            boot = (
                0.0
                if nxt >= self._num_layers
                else float(self._row_max[self._rm_off[nxt] + successor])
            )
            new = (
                old * self._keep_rate
                + self.learning_rate * (reward + self.discount * boot)
            )
        else:
            target = reward + self.discount * self.best_value(layer + 1, successor)
            if not self._visited[idx]:
                new = target
            else:
                new = old * self._keep_rate + self.learning_rate * target
            self._visited[idx] = True
        data[idx] = new
        rm_idx = self._rm_off[layer] + row
        current_max = float(self._row_max[rm_idx])
        if new > current_max:
            self._row_max[rm_idx] = new
        elif old == current_max and new < old:
            # The maximal entry decreased: rescan (another entry may
            # still hold the same maximum, which the rescan preserves).
            self._row_max[rm_idx] = data[
                base : base + self.num_actions[layer]
            ].max()
        return new

    def load_prior(self, values: np.ndarray) -> None:
        """Seed the table from a flat prior block (warm start).

        Overwrites every Q entry and recomputes the row-max cache as
        the *exact* per-row maximum — :meth:`greedy_action` locates the
        argmax by row-max equality, so an approximate cache would break
        its deterministic tie-breaking.  Visit flags are untouched: a
        prior is an initial value estimate, not a visit.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self._data.shape:
            raise SearchError(
                f"prior block has shape {values.shape}, "
                f"table expects {self._data.shape}"
            )
        self._data[:] = values
        for layer in range(self._num_layers):
            block = self._data[
                self._q_off[layer] : self._q_off[layer + 1]
            ].reshape(self.row_sizes[layer], self.num_actions[layer])
            self._row_max[
                self._rm_off[layer] : self._rm_off[layer + 1]
            ] = block.max(axis=1)

    def greedy_rollout(self, parents: list[int] | None = None) -> list[int]:
        """The current fully-greedy decision sequence.

        ``parents[i]`` is the layer whose choice selects layer i's Q row
        (-1 for the virtual start).  Defaults to chain wiring.
        """
        if parents is None:
            parents = list(range(-1, self._num_layers - 1))
        choices: list[int] = []
        for layer in range(self._num_layers):
            parent = parents[layer]
            row = 0 if parent < 0 else choices[parent]
            choices.append(self.greedy_action(layer, row))
        return choices

    def copy(self) -> "QTable":
        """Deep copy (used by tests and ablation snapshots)."""
        clone = QTable(
            self.num_actions,
            self.learning_rate,
            self.discount,
            row_sizes=self.row_sizes,
            first_visit_bootstrap=self.first_visit_bootstrap,
        )
        clone._data = self._data.copy()
        clone._row_max = self._row_max.copy()
        clone._visited = self._visited.copy()
        return clone
