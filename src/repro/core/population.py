"""Vectorized schedule populations: the shared substrate of the
population-based searchers.

A *population* is a plain ``(P, L)`` int64 matrix — one row per
candidate schedule, one column per schedulable layer, each entry a
candidate index into that layer's primitive list.  Everything the
CEM/GA baselines (and the multi-seed runner's bookkeeping) need on top
of :meth:`~repro.engine.pricing.CostEngine.price_batch` lives here as
batched numpy operations with no Python per-individual loop:

* uniform initialization (:func:`random_population`),
* per-gene resampling mutation (:func:`mutate`),
* uniform crossover between parent matrices (:func:`uniform_crossover`),
* tournament and elite selection over fitness vectors
  (:func:`tournament_select`, :func:`elite_indices`),
* masked categorical sampling and elite re-estimation for CEM
  (:func:`categorical_sample`, :func:`elite_distribution`).

The invariant every operation preserves (and
:func:`validate_population` enforces) is per-layer validity: column
``l`` only ever holds values in ``[0, num_actions[l])``.  Invalid
indices would price to ``+inf`` via the engine's padding, so a
violation here is a bug, not a bad schedule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError, SearchError


def as_action_counts(num_actions) -> np.ndarray:
    """Per-layer candidate counts as a validated int64 vector."""
    counts = np.asarray(num_actions, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise SearchError("num_actions must be a non-empty 1-D vector")
    if counts.min() < 1:
        raise SearchError("every layer needs at least one candidate")
    return counts


def validate_population(num_actions, population: np.ndarray) -> np.ndarray:
    """Check a ``(P, L)`` population for per-layer index validity.

    Returns the population (as int64) so callers can chain; raises
    :class:`~repro.errors.ScheduleError` on any out-of-range gene.
    """
    counts = as_action_counts(num_actions)
    matrix = np.asarray(population, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[1] != counts.size:
        raise ScheduleError(
            f"population must be (P, {counts.size}), got {matrix.shape}"
        )
    if matrix.size and (matrix.min() < 0 or (matrix >= counts[None, :]).any()):
        raise ScheduleError("population contains out-of-range candidate indices")
    return matrix


def random_population(
    num_actions, rng: np.random.Generator, size: int
) -> np.ndarray:
    """``(size, L)`` uniformly random valid population."""
    counts = as_action_counts(num_actions)
    if size < 1:
        raise SearchError(f"population size must be >= 1, got {size}")
    return rng.integers(0, counts[None, :], size=(size, counts.size))


def mutate(
    population: np.ndarray,
    num_actions,
    rng: np.random.Generator,
    rate: float,
) -> np.ndarray:
    """Resample each gene with probability ``rate`` (returns a copy).

    Mutation draws a fresh uniform candidate for the mutated gene, so a
    mutated population is valid by construction.
    """
    counts = as_action_counts(num_actions)
    if not 0.0 <= rate <= 1.0:
        raise SearchError(f"mutation rate must be in [0, 1], got {rate}")
    matrix = np.asarray(population, dtype=np.int64)
    mask = rng.random(matrix.shape) < rate
    resampled = rng.integers(0, counts[None, :], size=matrix.shape)
    return np.where(mask, resampled, matrix)


def uniform_crossover(
    parents_a: np.ndarray,
    parents_b: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-gene 50/50 mix of two aligned parent matrices."""
    a = np.asarray(parents_a, dtype=np.int64)
    b = np.asarray(parents_b, dtype=np.int64)
    if a.shape != b.shape:
        raise ScheduleError(
            f"crossover parents must align, got {a.shape} vs {b.shape}"
        )
    return np.where(rng.random(a.shape) < 0.5, a, b)


def tournament_select(
    fitness: np.ndarray,
    rng: np.random.Generator,
    rounds: int,
    tournament: int,
) -> np.ndarray:
    """``rounds`` tournament winners over a (lower-is-better) fitness.

    Each round draws ``tournament`` contestants uniformly with
    replacement and keeps the fittest; ties break toward the earliest
    drawn contestant.  Returns the winner indices, shape ``(rounds,)``.
    """
    scores = np.asarray(fitness, dtype=np.float64)
    if scores.ndim != 1 or scores.size == 0:
        raise SearchError("fitness must be a non-empty 1-D vector")
    if rounds < 1 or tournament < 1:
        raise SearchError("rounds and tournament size must be >= 1")
    contestants = rng.integers(0, scores.size, size=(rounds, tournament))
    return contestants[
        np.arange(rounds), np.argmin(scores[contestants], axis=1)
    ]


def elite_indices(fitness: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` fittest individuals, best first.

    Stable order: ties keep their population order, so elite selection
    is deterministic across platforms.
    """
    scores = np.asarray(fitness, dtype=np.float64)
    if count < 1 or count > scores.size:
        raise SearchError(
            f"elite count must be in [1, {scores.size}], got {count}"
        )
    return np.argsort(scores, kind="stable")[:count]


def uniform_distribution(num_actions) -> np.ndarray:
    """``(L, A_max)`` per-layer uniform categorical over valid actions."""
    counts = as_action_counts(num_actions)
    max_actions = int(counts.max())
    probs = np.zeros((counts.size, max_actions), dtype=np.float64)
    valid = np.arange(max_actions)[None, :] < counts[:, None]
    probs[valid] = np.repeat(1.0 / counts, counts)
    return probs


def categorical_sample(
    probs: np.ndarray,
    num_actions,
    rng: np.random.Generator,
    size: int,
) -> np.ndarray:
    """``(size, L)`` draws from per-layer categorical distributions.

    ``probs`` is ``(L, A_max)`` with zero mass on invalid (padded)
    actions.  Sampling is one inverse-CDF pass over the whole matrix;
    the final clip guards the ``u ~ 1.0`` float edge so every draw is a
    valid index even when a row's mass sums marginally below 1.
    """
    counts = as_action_counts(num_actions)
    matrix = np.asarray(probs, dtype=np.float64)
    if matrix.shape != (counts.size, int(counts.max())):
        raise SearchError(
            f"probs must be (L, A_max) = ({counts.size}, {int(counts.max())}), "
            f"got {matrix.shape}"
        )
    if size < 1:
        raise SearchError(f"sample size must be >= 1, got {size}")
    cdf = np.cumsum(matrix, axis=1)
    draws = rng.random((size, counts.size))
    choices = (draws[:, :, None] >= cdf[None, :, :]).sum(axis=2)
    return np.minimum(choices, counts[None, :] - 1)


def elite_distribution(
    population: np.ndarray, num_actions, elite: np.ndarray
) -> np.ndarray:
    """Per-layer empirical action frequencies of the elite rows.

    Returns ``(L, A_max)`` with zero mass outside each layer's valid
    range — the maximum-likelihood categorical update of CEM.
    """
    counts = as_action_counts(num_actions)
    matrix = validate_population(counts, population)[np.asarray(elite)]
    max_actions = int(counts.max())
    freq = np.zeros((counts.size, max_actions), dtype=np.float64)
    for layer in range(counts.size):
        freq[layer, : counts[layer]] = np.bincount(
            matrix[:, layer], minlength=int(counts[layer])
        )[: counts[layer]]
    return freq / matrix.shape[0]


def floor_and_renormalize(
    probs: np.ndarray, num_actions, min_prob: float
) -> np.ndarray:
    """Clamp valid-action probabilities to at least ``min_prob`` and
    renormalize each layer row to sum to 1 (invalid actions stay 0).

    Keeps every primitive reachable for the lifetime of a CEM run —
    without a floor the categorical collapses after a few elite updates
    and can lock out the true optimum.
    """
    counts = as_action_counts(num_actions)
    matrix = np.asarray(probs, dtype=np.float64).copy()
    valid = np.arange(matrix.shape[1])[None, :] < counts[:, None]
    matrix[valid] = np.maximum(matrix[valid], min_prob)
    matrix[~valid] = 0.0
    return matrix / matrix.sum(axis=1, keepdims=True)
