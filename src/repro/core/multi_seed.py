"""Vectorized multi-seed QS-DNN: K independent searches in lockstep.

Robustness sweeps and portfolio searches run the same
(network, platform, mode) scenario under many seeds.  Run naively that
costs K full searches; run in *lockstep* the K searches advance
episode-by-episode together, sharing one compiled
:class:`~repro.engine.pricing.CostEngine` and pricing all K rollouts of
each episode step in a single
:meth:`~repro.engine.pricing.CostEngine.layer_costs_batch` call instead
of K scalar ones.  On top of the batched pricing the lockstep loop

* draws each seed's episode randomness from the *same* named streams as
  :class:`~repro.core.search.QSDNNSearch` (policy and replay streams,
  identical call sequence), so every seed's trajectory — and therefore
  its ``best_ms`` — is bit-identical to an independent single-seed
  ``run()`` with that seed;
* vectorizes the decision pass of full-exploration episodes (the first
  half of the paper's schedule) across layers, skipping the Python
  per-layer loop entirely;
* runs each seed's eq. (2) online sweep and replay chain through a
  per-seed episode kernel (:mod:`repro.core.kernels`): one compiled
  call per (seed, episode) on the numba backend, the bit-identical
  pure-Python reference backend otherwise.

Exactness is the contract: the lockstep fast path reproduces the exact
per-seed results of K independent runs (property-tested), it just
amortizes the work.  Experience replay is an inherently sequential
per-seed update chain, so replay-enabled configs run the kernel-fused
path (batched pricing + per-seed kernels) — as does
``first_visit_bootstrap``, whose visit bookkeeping the kernels carry
natively; with replay disabled and plain eq. (2) the runner prices and
learns nearly everything batched across seeds and K=8 seeds cost well
under half of 8 independent runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core import checkpoint as ckpt_mod
from repro.core.config import SearchConfig
from repro.core.kernels import make_runner, mega_selected, resolve_backend
from repro.core.polish import coordinate_descent
from repro.core.priors import prior_row_max
from repro.core.qtable import QTable
from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError, PreemptedError
from repro.utils.rng import RngStream
from repro.utils.units import format_ms


def seed_range(base_seed: int, count: int) -> list[int]:
    """The K consecutive seeds ``base_seed .. base_seed + count - 1``."""
    if count < 1:
        raise ConfigError(f"seed count must be >= 1, got {count}")
    return list(range(base_seed, base_seed + count))


@dataclass
class MultiSeedResult:
    """Outcome of one lockstep multi-seed search.

    ``results[i]`` is seed ``seeds[i]``'s :class:`SearchResult`,
    bit-identical to an independent single-seed run; each carries an
    equal share of the total wall clock.  ``batched_pricings`` counts
    the engine calls the lockstep loop issued (one per episode step,
    regardless of K).
    """

    results: list[SearchResult]
    wall_clock_s: float
    batched_pricings: int = 0
    lockstep: bool = True

    @property
    def seeds(self) -> list[int]:
        """The seed of each member run, in result order."""
        return [r.config.seed if r.config else i for i, r in enumerate(self.results)]

    @property
    def best(self) -> SearchResult:
        """The member run with the lowest ``best_ms``."""
        return min(self.results, key=lambda r: r.best_ms)

    @property
    def best_ms_per_seed(self) -> list[float]:
        """``best_ms`` of each member run, in result order."""
        return [r.best_ms for r in self.results]

    def summary(self) -> str:
        """One-line description of the whole sweep."""
        best = self.best
        spread = max(self.best_ms_per_seed) - min(self.best_ms_per_seed)
        mode = "lockstep" if self.lockstep else "sequential"
        throughput = (
            f", {len(self.results) / self.wall_clock_s:.0f} seeds/s"
            if self.wall_clock_s > 0
            else ""
        )
        return (
            f"multi-seed qs-dnn on {best.graph_name}: {len(self.results)} seeds "
            f"({mode}), best {format_ms(best.best_ms)} "
            f"(seed {best.config.seed if best.config else '?'}, "
            f"spread {format_ms(spread)}) in {self.wall_clock_s:.2f}s"
            f"{throughput}"
        )


class _SeedState:
    """Per-seed mutable search state of the lockstep loop."""

    __slots__ = (
        "seed",
        "qtable",
        "runner",
        "policy_rng",
        "replay_rng",
        "best_total",
        "best_choices",
        "curve",
    )

    def __init__(self, seed, qtable, runner, policy_rng, replay_rng):
        self.seed = seed
        self.qtable = qtable
        self.runner = runner
        self.policy_rng = policy_rng
        self.replay_rng = replay_rng
        self.best_total = np.inf
        self.best_choices = None
        self.curve: list[float] = []


class MultiSeedSearch:
    """K independent QS-DNN searches over one LUT, run in lockstep.

    ``prior`` seeds every member's Q table with the same flat block
    (see :mod:`repro.core.priors`) when ``config.warm_start`` is not
    ``"off"`` — exactly what each member's independent single-seed run
    would load, preserving the lockstep == independent contract.
    """

    def __init__(
        self,
        lut: LatencyTable,
        config: SearchConfig | None = None,
        seeds: Sequence[int] = (0,),
        prior=None,
    ) -> None:
        self.lut = lut
        self.config = config or SearchConfig()
        self.seeds = [int(s) for s in seeds]
        if not self.seeds:
            raise ConfigError("multi-seed search needs at least one seed")
        self.prior = prior
        self.indexed = lut.indexed()
        self.engine = self.indexed.engine()

    def run(
        self,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        resume: dict | None = None,
    ) -> MultiSeedResult:
        """Run every seed to completion; results come back in seed order.

        ``checkpoint_every``/``on_checkpoint``/``resume`` behave as in
        :meth:`QSDNNSearch.run`, with the whole lockstep sweep captured
        in one checkpoint (one snapshot per seed).
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        anytime = bool(checkpoint_every and on_checkpoint) or resume is not None
        # Warm start: resolve the prior once per sweep — every seed
        # loads the same block, exactly what its independent
        # single-seed run would load (lockstep == independent).  A
        # resumed sweep never re-applies priors: the snapshots' Q
        # blocks already carry them.
        prior_values = None
        if (
            resume is None
            and self.config.warm_start != "off"
            and self.prior is not None
        ):
            prior_values = self.prior.prior_for(
                self.lut, self.config.discount
            )
        if mega_selected(self.config.kernel, len(self.seeds)):
            # The structure-of-arrays path: one prange dispatch per
            # episode runs all K seeds (explicit --kernel mega, or
            # auto with K >= MEGA_SEED_THRESHOLD under numba).
            return self._run_mega(
                checkpoint_every, on_checkpoint, resume, prior_values
            )
        if (
            self.config.replay_enabled
            or self.config.first_visit_bootstrap
            or resolve_backend(self.config.kernel) == "numba"
            or anytime
            or prior_values is not None
        ):
            # Replay is a sequential per-seed update chain (each replayed
            # transition bootstraps from the chain so far) and the
            # first-visit bootstrap tracks per-entry visit state — both
            # run per-seed episode kernels behind one batched pricing
            # call per episode.  With the numba backend the compiled
            # kernels beat numpy seed-batching on every config, so all
            # configs route through them.  Anytime runs (checkpointing
            # or resuming) also route here: the fused path is bitwise
            # equal to the vectorized one (the existing exactness
            # contract) and its per-seed runners carry the canonical
            # checkpoint state.  Warm-started runs route here too —
            # the per-seed QTables take the prior block directly.
            return self._run_lockstep_fused(
                checkpoint_every, on_checkpoint, resume, prior_values
            )
        return self._run_lockstep_vectorized()

    # -- the lockstep kernel-fused path (replay on / first-visit) ------------

    def _run_lockstep_fused(
        self,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        resume: dict | None = None,
        prior_values: np.ndarray | None = None,
    ) -> MultiSeedResult:
        cfg = self.config
        idx = self.indexed
        engine = self.engine
        num_layers = len(idx)
        action_counts = np.asarray(idx.num_actions, dtype=np.int64)
        q_parent = idx.q_parent
        row_sizes = [
            1 if parent < 0 else int(idx.num_actions[parent])
            for parent in q_parent
        ]
        backend = resolve_backend(cfg.kernel)
        if resume is not None:
            ckpt_mod.check_resume(
                resume,
                kind="multi-seed",
                graph=self.lut.graph_name,
                mode=self.lut.mode,
                episodes=cfg.episodes,
                seeds=self.seeds,
                warm_start=cfg.warm_start,
            )

        states: list[_SeedState] = []
        for s, seed in enumerate(self.seeds):
            stream = RngStream(seed, "qsdnn", self.lut.graph_name, self.lut.mode)
            qtable = QTable(
                list(idx.num_actions),
                cfg.learning_rate,
                cfg.discount,
                row_sizes=row_sizes,
                first_visit_bootstrap=cfg.first_visit_bootstrap,
            )
            if resume is not None:
                # Before make_runner: the reference backend mirrors the
                # flat arrays at construction.
                ckpt_mod.restore_seed_arrays(resume["seeds"][s], qtable)
            elif prior_values is not None:
                # Same ordering constraint as resume: load before the
                # runner mirrors the flat arrays.
                qtable.load_prior(prior_values)
            state = _SeedState(
                seed,
                qtable,
                make_runner(
                    engine,
                    qtable,
                    q_parent,
                    replay_enabled=cfg.replay_enabled,
                    replay_capacity=cfg.replay_capacity,
                    backend=backend,
                ),
                stream.child("policy"),
                stream.child("replay"),
            )
            if resume is not None:
                snap = resume["seeds"][s]
                state.runner.import_ring(snap["ring"])
                ckpt_mod.set_rng_state(state.policy_rng, snap["policy_rng"])
                ckpt_mod.set_rng_state(state.replay_rng, snap["replay_rng"])
                state.best_total = snap["best_total"]
                state.best_choices = snap["best_choices"]
                state.curve = list(snap["curve"])
            states.append(state)

        shaping = cfg.reward_shaping
        track_curve = cfg.track_curve
        epsilon_for = cfg.epsilon.epsilon_for
        num_seeds = len(states)

        batch = np.empty((num_seeds, num_layers), dtype=np.int64)
        epsilon_trace: list[float] = []
        batched_pricings = 0
        start_episode = 0
        elapsed_s = 0.0
        if resume is not None:
            epsilon_trace = list(resume["epsilon_trace"])
            start_episode = int(resume["episode"])
            elapsed_s = float(resume.get("elapsed_s", 0.0))
        started = time.perf_counter()

        for episode in range(start_episode, cfg.episodes):
            epsilon = epsilon_for(episode)
            # -- decision pass (per seed, same RNG calls as QSDNNSearch)
            full_explore = epsilon >= 1.0
            full_exploit = epsilon <= 0.0
            for s, state in enumerate(states):
                if full_explore:
                    explore = None
                    explored = state.policy_rng.integers(0, action_counts)
                elif full_exploit:
                    explore = None
                    explored = None
                else:
                    rng = state.policy_rng
                    explore = rng.random(num_layers) < epsilon
                    explored = rng.integers(0, action_counts)
                state.runner.rollout(explore, explored)
                batch[s] = state.runner.choices
            # -- pricing pass: all K rollouts in one engine call
            costs = engine.layer_costs_batch(batch, checked=False)
            totals = costs.sum(axis=1).tolist()
            rewards_batch = -costs if shaping else None
            batched_pricings += 1
            # -- learning pass: one fused kernel call per seed
            for s, state in enumerate(states):
                total = totals[s]
                if rewards_batch is not None:
                    rewards = rewards_batch[s]
                else:
                    rewards = np.zeros(num_layers, dtype=np.float64)
                    rewards[num_layers - 1] = -total
                perm = state.runner.draw_replay_order(state.replay_rng)
                state.runner.learn(rewards, perm)
                if total < state.best_total:
                    state.best_total = total
                    state.best_choices = state.runner.snapshot()
                if track_curve:
                    state.curve.append(total)
            if track_curve:
                epsilon_trace.append(epsilon)
            # -- anytime checkpoint (episode boundary; draws no RNG)
            if (
                checkpoint_every
                and on_checkpoint is not None
                and (episode + 1) % checkpoint_every == 0
                and episode + 1 < cfg.episodes
            ):
                snapshot = ckpt_mod.build_checkpoint(
                    kind="multi-seed",
                    graph=self.lut.graph_name,
                    mode=self.lut.mode,
                    episodes=cfg.episodes,
                    episode=episode + 1,
                    kernel=cfg.kernel,
                    elapsed_s=elapsed_s + (time.perf_counter() - started),
                    epsilon_trace=epsilon_trace,
                    warm_start=cfg.warm_start,
                    seed_snaps=[
                        ckpt_mod.seed_snapshot(
                            state.seed,
                            state.qtable,
                            state.runner,
                            state.policy_rng,
                            state.replay_rng,
                            state.best_total,
                            state.best_choices,
                            state.curve,
                        )
                        for state in states
                    ],
                )
                if on_checkpoint(snapshot) is False:
                    raise PreemptedError(snapshot)

        # -- per-seed finalization (polish, greedy policy, packaging)
        results = []
        for state in states:
            state.runner.finalize()
            assert state.best_choices is not None
            best_choices = np.asarray(state.best_choices, dtype=np.int64)
            best_total = state.best_total
            if cfg.polish_sweeps > 0:
                best_choices, best_total = coordinate_descent(
                    engine, best_choices, max_sweeps=cfg.polish_sweeps
                )
            greedy_ms = engine.price(
                state.qtable.greedy_rollout(parents=q_parent)
            )
            results.append(
                SearchResult(
                    graph_name=self.lut.graph_name,
                    method="qs-dnn",
                    best_assignments=engine.assignments(best_choices),
                    best_ms=float(best_total),
                    episodes=cfg.episodes,
                    curve_ms=state.curve,
                    epsilon_trace=list(epsilon_trace) if track_curve else [],
                    config=replace(cfg, seed=state.seed),
                    greedy_ms=float(greedy_ms),
                    kernel_backend=backend,
                    warm_start=cfg.warm_start,
                )
            )
        wall = elapsed_s + (time.perf_counter() - started)
        for result in results:
            result.wall_clock_s = wall / num_seeds
        return MultiSeedResult(
            results=results,
            wall_clock_s=wall,
            batched_pricings=batched_pricings,
            lockstep=True,
        )

    # -- the mega SoA path (K seeds per kernel dispatch) --------------------

    def _run_mega(
        self,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        resume: dict | None = None,
        prior_values: np.ndarray | None = None,
    ) -> MultiSeedResult:
        """Run all K seeds as structure-of-arrays mega-kernel dispatches.

        One :class:`~repro.core.kernels.mega.MegaState` holds every
        seed's flat Q block, row-max cache and replay ring along a
        leading seed axis; each episode issues a single fused kernel
        call (two when reward shaping is off, which needs the totals
        before learning — same split as ``QSDNNSearch``).  The driver
        keeps every random draw per seed, in the exact stream order of
        an independent single-seed run: consecutive full-exploration
        episodes block-draw per seed (a row-major ``(run, L)`` block is
        bitwise the same stream as ``run`` per-episode draws), mixed
        episodes draw per (seed, episode), exploitation draws nothing,
        and replay permutations shuffle a per-seed scratch row exactly
        like ``draw_replay_order``.
        """
        from repro.core.kernels import mega as mega_kernels

        cfg = self.config
        idx = self.indexed
        engine = self.engine
        num_layers = len(idx)
        num_seeds = len(self.seeds)
        action_counts = np.asarray(idx.num_actions, dtype=np.int64)
        q_parent = np.asarray(idx.q_parent, dtype=np.int64)
        row_sizes = [
            1 if parent < 0 else int(idx.num_actions[parent])
            for parent in idx.q_parent
        ]
        views = engine.kernel_views()
        mega_kernels.ensure_warm()
        state = mega_kernels.MegaState(
            num_seeds=num_seeds,
            num_actions=list(idx.num_actions),
            row_sizes=row_sizes,
            q_parent=q_parent,
            pricing=views[:6],
            max_actions=views[6],
            learning_rate=cfg.learning_rate,
            discount=cfg.discount,
            first_visit_bootstrap=cfg.first_visit_bootstrap,
            replay_enabled=cfg.replay_enabled,
            replay_capacity=cfg.replay_capacity,
        )

        streams = [
            RngStream(seed, "qsdnn", self.lut.graph_name, self.lut.mode)
            for seed in self.seeds
        ]
        policy_rngs = [s.child("policy") for s in streams]
        replay_rngs = [s.child("replay") for s in streams]

        if resume is not None:
            ckpt_mod.check_resume(
                resume,
                kind="multi-seed",
                graph=self.lut.graph_name,
                mode=self.lut.mode,
                episodes=cfg.episodes,
                seeds=self.seeds,
                warm_start=cfg.warm_start,
            )
            for s in range(num_seeds):
                snap = resume["seeds"][s]
                ckpt_mod.restore_mega_seed(snap, state, s)
                ckpt_mod.set_rng_state(policy_rngs[s], snap["policy_rng"])
                ckpt_mod.set_rng_state(replay_rngs[s], snap["replay_rng"])
        elif prior_values is not None:
            # Tile the prior block across the seed axis — ``q[s]`` is
            # each seed's flat ``QTable`` block, so this is exactly
            # what K independent ``load_prior`` calls would write.
            prior_rm = prior_row_max(
                prior_values, list(idx.num_actions), row_sizes
            )
            for s in range(num_seeds):
                state.q[s] = prior_values
                state.row_max[s] = prior_rm

        shaping = cfg.reward_shaping
        track_curve = cfg.track_curve
        eps_list = [cfg.epsilon.epsilon_for(e) for e in range(cfg.episodes)]

        explored_buf = np.empty((num_seeds, num_layers), dtype=np.int64)
        explore_buf = np.empty((num_seeds, num_layers), dtype=np.bool_)
        perm_buf = (
            np.empty((num_seeds, cfg.replay_capacity), dtype=np.int64)
            if cfg.replay_enabled
            else None
        )
        iota = np.arange(cfg.replay_capacity, dtype=np.int64)
        # Full-exploration blocks: cap the pre-drawn run so a K=1000
        # sweep over a 500-episode explore phase never materializes
        # hundreds of megabytes of entropy at once.
        block_cap = max(1, 8192 // max(num_layers, 1))
        blocks: np.ndarray | None = None
        block_pos = block_len = 0

        best_total = np.full(num_seeds, np.inf, dtype=np.float64)
        best_choices = np.zeros((num_seeds, num_layers), dtype=np.int64)
        episode_totals: list[np.ndarray] = []
        epsilon_trace: list[float] = []
        batched_pricings = 0
        start_episode = 0
        elapsed_s = 0.0
        if resume is not None:
            for s in range(num_seeds):
                snap = resume["seeds"][s]
                best_total[s] = snap["best_total"]
                if snap["best_choices"] is not None:
                    best_choices[s] = snap["best_choices"]
            start_episode = int(resume["episode"])
            elapsed_s = float(resume.get("elapsed_s", 0.0))
            epsilon_trace = list(resume["epsilon_trace"])
            if track_curve:
                episode_totals = [
                    np.array(
                        [resume["seeds"][s]["curve"][e] for s in range(num_seeds)],
                        dtype=np.float64,
                    )
                    for e in range(start_episode)
                ]
        started = time.perf_counter()

        for episode in range(start_episode, cfg.episodes):
            epsilon = eps_list[episode]
            # -- decision entropy (per seed, stream-identical draws)
            if epsilon >= 1.0:
                if block_pos == block_len:
                    run = 1
                    while (
                        episode + run < cfg.episodes
                        and eps_list[episode + run] >= 1.0
                        and run < block_cap
                        # A block must never span a checkpoint boundary:
                        # capture would otherwise find the policy stream
                        # already advanced past the boundary.  Capping
                        # changes only the draw *grouping* — a (run, L)
                        # row-major block is bitwise the same stream as
                        # run per-episode draws — so results are
                        # unchanged.
                        and not (
                            checkpoint_every
                            and (episode + run) % checkpoint_every == 0
                        )
                    ):
                        run += 1
                    if blocks is None or blocks.shape[1] < run:
                        blocks = np.empty(
                            (num_seeds, run, num_layers), dtype=np.int64
                        )
                    for s, rng in enumerate(policy_rngs):
                        blocks[s, :run] = rng.integers(
                            0, action_counts[None, :], size=(run, num_layers)
                        )
                    block_len = run
                    block_pos = 0
                np.copyto(explored_buf, blocks[:, block_pos, :])
                block_pos += 1
                mode = mega_kernels._MODE_EXPLORE
                explore2, explored2 = None, explored_buf
            elif epsilon <= 0.0:
                mode = mega_kernels._MODE_GREEDY
                explore2 = explored2 = None
            else:
                for s, rng in enumerate(policy_rngs):
                    explore_buf[s] = rng.random(num_layers) < epsilon
                    explored_buf[s] = rng.integers(0, action_counts)
                mode = mega_kernels._MODE_MIXED
                explore2, explored2 = explore_buf, explored_buf
            # -- replay entropy (per seed, same shuffle as the runners)
            if perm_buf is not None:
                stored = state.stored()
                perm2 = perm_buf[:, :stored]
                for s, rng in enumerate(replay_rngs):
                    row = perm_buf[s, :stored]
                    row[:] = iota[:stored]
                    rng.shuffle(row)
            else:
                perm2 = None
            # -- one (or two) mega dispatches for all K seeds
            if shaping:
                costs = state.episode(mode, explore2, explored2, perm2)
                totals = costs.sum(axis=1)
            else:
                costs = state.rollout_price(mode, explore2, explored2)
                totals = costs.sum(axis=1)
                rewards = np.zeros((num_seeds, num_layers), dtype=np.float64)
                rewards[:, num_layers - 1] = -totals
                state.learn(rewards, perm2)
            batched_pricings += 1
            # -- vectorized best tracking
            improved = totals < best_total
            if improved.any():
                best_total[improved] = totals[improved]
                best_choices[improved] = state.choices[improved]
            if track_curve:
                episode_totals.append(totals.copy())
                epsilon_trace.append(epsilon)
            # -- anytime checkpoint (episode boundary; draws no RNG).
            # The block-run cap above guarantees no pre-drawn policy
            # entropy extends past this boundary, so the captured RNG
            # states correspond exactly to "episodes < boundary drawn".
            if (
                checkpoint_every
                and on_checkpoint is not None
                and (episode + 1) % checkpoint_every == 0
                and episode + 1 < cfg.episodes
            ):
                snapshot = ckpt_mod.build_checkpoint(
                    kind="multi-seed",
                    graph=self.lut.graph_name,
                    mode=self.lut.mode,
                    episodes=cfg.episodes,
                    episode=episode + 1,
                    kernel=cfg.kernel,
                    elapsed_s=elapsed_s + (time.perf_counter() - started),
                    epsilon_trace=epsilon_trace,
                    warm_start=cfg.warm_start,
                    seed_snaps=[
                        ckpt_mod.mega_seed_snapshot(
                            state,
                            s,
                            seed,
                            policy_rngs[s],
                            replay_rngs[s],
                            float(best_total[s]),
                            best_choices[s],
                            [float(t[s]) for t in episode_totals],
                        )
                        for s, seed in enumerate(self.seeds)
                    ],
                )
                if on_checkpoint(snapshot) is False:
                    raise PreemptedError(snapshot)

        # -- finalization: one greedy mega dispatch, per-seed packaging
        greedy_choices = state.greedy_choices().copy()
        curve_matrix = (
            np.stack(episode_totals) if episode_totals else None
        )
        results = []
        for s, seed in enumerate(self.seeds):
            chosen = best_choices[s].copy()
            total = float(best_total[s])
            if cfg.polish_sweeps > 0:
                chosen, total = coordinate_descent(
                    engine, chosen, max_sweeps=cfg.polish_sweeps
                )
            greedy_ms = engine.price(greedy_choices[s])
            results.append(
                SearchResult(
                    graph_name=self.lut.graph_name,
                    method="qs-dnn",
                    best_assignments=engine.assignments(chosen),
                    best_ms=float(total),
                    episodes=cfg.episodes,
                    curve_ms=(
                        curve_matrix[:, s].tolist()
                        if curve_matrix is not None
                        else []
                    ),
                    epsilon_trace=list(epsilon_trace) if track_curve else [],
                    config=replace(cfg, seed=seed),
                    greedy_ms=float(greedy_ms),
                    kernel_backend="mega",
                    warm_start=cfg.warm_start,
                )
            )
        wall = elapsed_s + (time.perf_counter() - started)
        for result in results:
            result.wall_clock_s = wall / num_seeds
        #: Test hook: the final SoA state (Q, row_max, visited, ring)
        #: the exactness property compares against per-seed runs.
        self._mega_state = state
        return MultiSeedResult(
            results=results,
            wall_clock_s=wall,
            batched_pricings=batched_pricings,
            lockstep=True,
        )

    # -- the lockstep vectorized path (replay off) --------------------------

    def _run_lockstep_vectorized(self) -> MultiSeedResult:
        """Batch the whole learning pass across seeds and layers.

        Within one episode the online eq. (2) updates are
        order-independent: the update of layer ``i`` bootstraps from
        layer ``i + 1``'s row max, which this episode only writes
        *after* reading (the reference loop runs in ascending layer
        order), and every (seed, layer) pair is updated exactly once.
        All ``K x L`` updates of an episode therefore batch into a
        handful of flat-array numpy operations while reproducing the
        sequential reference bit-for-bit.

        Greedy decisions never scan Q rows: an argmax cache per
        (seed, layer, row) is maintained under the exact
        ``values.index(row_max)`` first-index semantics of
        :meth:`QTable.greedy_action`, mirrored into nested Python lists
        (lazily, on first non-exploration episode) for fast scalar
        reads in the sequential decision walk.
        """
        cfg = self.config
        idx = self.indexed
        engine = self.engine
        num_layers = len(idx)
        num_seeds = len(self.seeds)
        action_counts = np.asarray(idx.num_actions, dtype=np.int64)
        q_parent = idx.q_parent
        parent_idx = np.asarray(q_parent, dtype=np.int64)
        virtual_start = parent_idx < 0
        parent_gather = np.maximum(parent_idx, 0)
        row_counts = np.where(virtual_start, 1, action_counts[parent_gather])
        max_rows = int(row_counts.max())
        max_actions = int(action_counts.max())

        keep = 1.0 - cfg.learning_rate
        lr = cfg.learning_rate
        gamma = cfg.discount
        shaping = cfg.reward_shaping
        track_curve = cfg.track_curve
        epsilon_for = cfg.epsilon.epsilon_for

        # Dense per-seed Q storage.  Invalid (row, action) slots are
        # -inf so row-wise rescans ignore them; valid entries start at
        # 0.0 exactly like QTable.
        valid = (
            np.arange(max_rows)[None, :, None] < row_counts[:, None, None]
        ) & (np.arange(max_actions)[None, None, :] < action_counts[:, None, None])
        q = np.full(
            (num_seeds, num_layers, max_rows, max_actions),
            -np.inf,
            dtype=np.float64,
        )
        q[:, valid] = 0.0
        row_max = np.zeros((num_seeds, num_layers, max_rows), dtype=np.float64)
        arg_max = np.zeros((num_seeds, num_layers, max_rows), dtype=np.int64)
        q_flat = q.reshape(-1)
        q_rows = q.reshape(-1, max_actions)
        rm_flat = row_max.reshape(-1)
        am_flat = arg_max.reshape(-1)
        #: Python-list mirror of arg_max for the scalar decision walk.
        mirror: list[list[list[int]]] | None = None
        #: Per seed: the last full-exploitation walk is still valid (no
        #: greedy-cache entry changed since it was computed).
        walk_fresh = [False] * num_seeds

        policy_rngs = [
            RngStream(seed, "qsdnn", self.lut.graph_name, self.lut.mode).child(
                "policy"
            )
            for seed in self.seeds
        ]

        seed_col = np.arange(num_seeds)[:, None]
        layer_row = np.arange(num_layers)[None, :]
        row_base_of = (seed_col * num_layers + layer_row) * max_rows

        batch = np.empty((num_seeds, num_layers), dtype=np.int64)
        rows_np = np.empty((num_seeds, num_layers), dtype=np.int64)
        best_total = [np.inf] * num_seeds
        best_choices: list[np.ndarray | None] = [None] * num_seeds
        curves: list[list[float]] = [[] for _ in range(num_seeds)]
        epsilon_trace: list[float] = []
        batched_pricings = 0
        eps_list = [epsilon_for(e) for e in range(cfg.episodes)]
        blocks: list[np.ndarray] = []
        block_pos = block_len = 0
        started = time.perf_counter()

        for episode in range(cfg.episodes):
            epsilon = eps_list[episode]
            # -- decision pass (same RNG calls per seed as QSDNNSearch)
            if epsilon >= 1.0:
                if block_pos == block_len:
                    # Pre-draw a whole run of consecutive
                    # full-exploration episodes per seed in one RNG
                    # call: a (run, L) block fills row-major, so it is
                    # bit-identical to `run` successive per-episode
                    # draws from the same stream.
                    run = 1
                    while (
                        episode + run < cfg.episodes
                        and eps_list[episode + run] >= 1.0
                    ):
                        run += 1
                    blocks = [
                        rng.integers(
                            0, action_counts[None, :], size=(run, num_layers)
                        )
                        for rng in policy_rngs
                    ]
                    block_len = run
                    block_pos = 0
                for s in range(num_seeds):
                    batch[s] = blocks[s][block_pos]
                block_pos += 1
                rows_np[:, :] = np.where(
                    virtual_start[None, :], 0, batch[:, parent_gather]
                )
                if mirror is not None:
                    walk_fresh = [False] * num_seeds
            else:
                if mirror is None:
                    mirror = arg_max.tolist()
                if epsilon <= 0.0:
                    for s in range(num_seeds):
                        if walk_fresh[s]:
                            # No greedy-cache entry changed since this
                            # seed's last full-exploitation walk, so the
                            # walk (still in batch[s] / rows_np[s]) would
                            # come out identical — skip recomputing it.
                            continue
                        greedy = mirror[s]
                        choices = [0] * num_layers
                        rows = [0] * num_layers
                        for i in range(num_layers):
                            parent = q_parent[i]
                            row = 0 if parent < 0 else choices[parent]
                            rows[i] = row
                            choices[i] = greedy[i][row]
                        batch[s] = choices
                        rows_np[s] = rows
                        walk_fresh[s] = True
                else:
                    for s, rng in enumerate(policy_rngs):
                        walk_fresh[s] = False
                        greedy = mirror[s]
                        explore = (rng.random(num_layers) < epsilon).tolist()
                        explored = rng.integers(0, action_counts).tolist()
                        choices = [0] * num_layers
                        rows = [0] * num_layers
                        for i in range(num_layers):
                            parent = q_parent[i]
                            row = 0 if parent < 0 else choices[parent]
                            rows[i] = row
                            choices[i] = (
                                explored[i] if explore[i] else greedy[i][row]
                            )
                        batch[s] = choices
                        rows_np[s] = rows
            # -- pricing pass: all K rollouts in one engine call
            costs = engine.layer_costs_batch(batch, checked=False)
            totals = costs.sum(axis=1)
            totals_list = totals.tolist()
            batched_pricings += 1
            # -- learning pass: K x L online updates in one batch
            if shaping:
                rewards = -costs
            else:
                rewards = np.zeros_like(costs)
                rewards[:, num_layers - 1] = -totals
            row_idx = row_base_of + rows_np
            q_idx = row_idx * max_actions + batch
            old = q_flat.take(q_idx)
            boot = np.zeros((num_seeds, num_layers), dtype=np.float64)
            # The bootstrap of layer i reads (seed, i + 1, rows[i + 1]),
            # which is exactly the next column of row_idx; the terminal
            # layer bootstraps from 0.
            boot[:, :-1] = rm_flat.take(row_idx[:, 1:])
            new = old * keep + lr * (rewards + gamma * boot)
            q_flat[q_idx.reshape(-1)] = new.reshape(-1)
            cur = rm_flat.take(row_idx)
            am_pre = am_flat.take(row_idx)
            raised = new > cur
            tied_earlier = (new == cur) & (batch < am_pre)
            dropped = (old == cur) & (new < old)
            pokes: list[tuple] = []
            target = row_idx[raised]
            winners = batch[raised]
            rm_flat[target] = new[raised]
            am_flat[target] = winners
            pokes.append((target, winners))
            target = row_idx[tied_earlier]
            winners = batch[tied_earlier]
            am_flat[target] = winners
            pokes.append((target, winners))
            # The maximal entry decreased: rescan those rows (the batch
            # writes are already applied, and each row is touched at
            # most once per episode).
            target = row_idx[dropped]
            rescanned = q_rows[target]
            rm_flat[target] = rescanned.max(axis=1)
            winners = rescanned.argmax(axis=1)
            am_flat[target] = winners
            pokes.append((target, winners))
            if mirror is not None:
                for target, winners in pokes:
                    for flat, winner in zip(target.tolist(), winners.tolist()):
                        row, flat = flat % max_rows, flat // max_rows
                        layer, s = flat % num_layers, flat // num_layers
                        greedy = mirror[s]
                        if greedy[layer][row] != winner:
                            greedy[layer][row] = winner
                            walk_fresh[s] = False
            # -- bookkeeping
            for s in range(num_seeds):
                total = totals_list[s]
                if total < best_total[s]:
                    best_total[s] = total
                    best_choices[s] = batch[s].copy()
                if track_curve:
                    curves[s].append(total)
            if track_curve:
                epsilon_trace.append(epsilon)

        if mirror is None:
            mirror = arg_max.tolist()
        results = []
        for s, seed in enumerate(self.seeds):
            chosen = best_choices[s]
            assert chosen is not None
            total = best_total[s]
            if cfg.polish_sweeps > 0:
                chosen, total = coordinate_descent(
                    engine, chosen, max_sweeps=cfg.polish_sweeps
                )
            greedy = mirror[s]
            walk = [0] * num_layers
            for i in range(num_layers):
                parent = q_parent[i]
                walk[i] = greedy[i][0 if parent < 0 else walk[parent]]
            results.append(
                SearchResult(
                    graph_name=self.lut.graph_name,
                    method="qs-dnn",
                    best_assignments=engine.assignments(chosen),
                    best_ms=float(total),
                    episodes=cfg.episodes,
                    curve_ms=curves[s],
                    epsilon_trace=list(epsilon_trace) if track_curve else [],
                    config=replace(cfg, seed=seed),
                    greedy_ms=float(engine.price(walk)),
                    warm_start=cfg.warm_start,
                )
            )
        wall = time.perf_counter() - started
        for result in results:
            result.wall_clock_s = wall / num_seeds
        return MultiSeedResult(
            results=results,
            wall_clock_s=wall,
            batched_pricings=batched_pricings,
            lockstep=True,
        )
