"""Search results and learning curves."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SearchConfig
from repro.engine.schedule import NetworkSchedule
from repro.utils.stats import running_min
from repro.utils.units import format_ms


@dataclass
class SearchResult:
    """Outcome of one search run (QS-DNN or a baseline).

    ``curve_ms[i]`` is the total LUT latency of the configuration sampled
    in episode ``i`` — the raw material of Figs. 4 and 5.  ``best_ms`` is
    the best configuration *seen* during the whole search, which is what
    both the paper's RL and RS report.

    A search resumed from an anytime checkpoint (see
    :mod:`repro.core.checkpoint`) reports the same fields as an
    uninterrupted run — ``curve_ms`` spans all ``episodes`` from 0 and
    ``wall_clock_s`` includes the elapsed time carried in the
    checkpoint, so throughput numbers stay comparable.
    """

    graph_name: str
    method: str
    best_assignments: dict[str, str]
    best_ms: float
    episodes: int
    curve_ms: list[float] = field(default_factory=list)
    epsilon_trace: list[float] = field(default_factory=list)
    wall_clock_s: float = 0.0
    config: SearchConfig | None = None
    #: Total latency of the final fully-greedy policy (RL only).
    greedy_ms: float | None = None
    #: Episode-kernel backend that ran the search ("numba",
    #: "reference", or "mega" for members of a SoA mega-batch sweep).
    #: None for methods that never enter an episode kernel —
    #: baselines, and the replay-off multi-seed sweep, whose lockstep
    #: path batches eq. (2) across seeds in numpy instead.
    kernel_backend: str | None = None
    #: Which Q-prior seeded this run ("off" = cold start; see
    #: :mod:`repro.core.priors`).
    warm_start: str = "off"

    @property
    def best_curve(self) -> list[float]:
        """Best-so-far latency per episode (monotone non-increasing)."""
        return running_min(self.curve_ms)

    @property
    def episodes_per_s(self) -> float | None:
        """Episode throughput of the search (None if not timed)."""
        if self.wall_clock_s > 0:
            return self.episodes / self.wall_clock_s
        return None

    def schedule(self) -> NetworkSchedule:
        """The best configuration as a deployable schedule."""
        return NetworkSchedule(self.graph_name, dict(self.best_assignments))

    def summary(self) -> str:
        """One-line result description."""
        greedy = (
            f", greedy policy {format_ms(self.greedy_ms)}"
            if self.greedy_ms is not None
            else ""
        )
        throughput = self.episodes_per_s
        rate = f", {throughput:,.0f} eps/s" if throughput is not None else ""
        backend = f" [{self.kernel_backend}]" if self.kernel_backend else ""
        return (
            f"{self.method} on {self.graph_name}: best {format_ms(self.best_ms)} "
            f"after {self.episodes} episodes{greedy} "
            f"({self.wall_clock_s:.2f}s wall-clock{rate}){backend}"
        )
