"""Local refinement of a found configuration (coordinate descent).

The search phase owns a complete latency model (the LUT), so improving a
configuration by single-layer moves is free: for each layer in turn,
pick the primitive minimizing (own time + penalties on all incident
edges) with every other layer fixed, and sweep until a fixed point.

This is a standard post-search step in autotuners and is *additive* to
the paper's method: QS-DNN hands over its best configuration and the
polish can only improve it (each accepted move strictly lowers the
total).  It matters on branchy graphs, where concat joins couple the
choices of layers the tabular Q state cannot see together.  Disable via
``SearchConfig(polish_sweeps=0)`` for the paper's raw RL output; the
ablation benchmark quantifies the difference.
"""

from __future__ import annotations

import numpy as np

from repro.engine.lut import IndexedLUT


def _incident_edges(idx: IndexedLUT) -> list[list[tuple[int, int, bool]]]:
    """Per layer: (edge index, other-layer index, layer_is_consumer)."""
    touching: list[list[tuple[int, int, bool]]] = [[] for _ in range(len(idx))]
    for edge_idx, (producer, consumer) in enumerate(idx.edges):
        pi = idx.layer_index[producer]
        ci = idx.layer_index[consumer]
        touching[ci].append((edge_idx, pi, True))
        touching[pi].append((edge_idx, ci, False))
    return touching


def coordinate_descent(
    idx: IndexedLUT,
    choices: np.ndarray,
    max_sweeps: int = 2,
) -> tuple[np.ndarray, float]:
    """Sweep single-layer improvements until a fixed point (or budget).

    Returns the (possibly improved) choice vector and its total.  The
    input array is not modified.
    """
    if max_sweeps < 0:
        raise ValueError(f"max_sweeps must be >= 0, got {max_sweeps}")
    current = choices.copy()
    touching = _incident_edges(idx)
    for _ in range(max_sweeps):
        improved = False
        for layer in range(len(idx)):
            costs = idx.times[layer].copy()
            for edge_idx, other, is_consumer in touching[layer]:
                matrix = idx.edge_matrices[edge_idx]
                if is_consumer:
                    costs += matrix[current[other], :]
                else:
                    costs += matrix[:, current[other]]
            best = int(np.argmin(costs))
            if costs[best] < costs[current[layer]]:
                current[layer] = best
                improved = True
        if not improved:
            break
    return current, idx.total_ms(current)
