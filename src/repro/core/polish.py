"""Local refinement of a found configuration (coordinate descent).

The search phase owns a complete latency model (the LUT), so improving a
configuration by single-layer moves is free: for each layer in turn,
pick the primitive minimizing (own time + penalties on all incident
edges) with every other layer fixed, and sweep until a fixed point.
The move neighborhood and all pricing come from the
:class:`~repro.engine.pricing.CostEngine`.

This is a standard post-search step in autotuners and is *additive* to
the paper's method: QS-DNN hands over its best configuration and the
polish can only improve it (each accepted move strictly lowers the
total).  It matters on branchy graphs, where concat joins couple the
choices of layers the tabular Q state cannot see together.  Disable via
``SearchConfig(polish_sweeps=0)`` for the paper's raw RL output; the
ablation benchmark quantifies the difference.
"""

from __future__ import annotations

import numpy as np

from repro.engine.pricing import CostEngine


def _as_engine(pricer) -> CostEngine:
    """Accept a CostEngine, an IndexedLUT, or a LatencyTable."""
    if isinstance(pricer, CostEngine):
        return pricer
    return pricer.engine()


def coordinate_descent(
    pricer,
    choices: np.ndarray,
    max_sweeps: int = 2,
) -> tuple[np.ndarray, float]:
    """Sweep single-layer improvements until a fixed point (or budget).

    ``pricer`` is a :class:`CostEngine` (or anything with an
    ``engine()`` accessor, e.g. an ``IndexedLUT``).  Returns the
    (possibly improved) choice vector and its total.  The input array
    is not modified.
    """
    if max_sweeps < 0:
        raise ValueError(f"max_sweeps must be >= 0, got {max_sweeps}")
    engine = _as_engine(pricer)
    current = np.array(choices, dtype=np.int64)
    for _ in range(max_sweeps):
        improved = False
        for layer in range(len(engine)):
            costs = engine.move_costs(current, layer)
            best = int(np.argmin(costs))
            if costs[best] < costs[current[layer]]:
                current[layer] = best
                improved = True
        if not improved:
            break
    return current, engine.price(current)
