"""Compiled episode kernels: the search phase's fused inner loop.

The QS-DNN hot path is per-episode: the sequential epsilon-greedy
rollout walk, the online eq. (2) update sweep, and the replay chain
(whose transitions bootstrap from each other and therefore cannot
vectorize).  This package moves that whole path behind one dispatch
API with two interchangeable backends:

* ``numba`` — `numba`-JIT kernels over the flat-array state of
  :class:`~repro.core.qtable.QTable` and the
  :class:`~repro.engine.pricing.CostEngine` views; one compiled call
  runs a whole episode (rollout + pricing + eq. (2) + replay).
  Optional: auto-detected, never required.
* ``reference`` — pure-Python flat-list mirrors of the same state,
  running the exact same arithmetic in the same order.  This is the
  correctness anchor and the fallback when numba is absent.

Both backends are bit-identical: every floating-point operation is an
IEEE-754 double applied in the same sequence, so the same seeds produce
the same Q tables, the same ``best_ms``, and the same per-episode
curves (property-tested in ``tests/test_core_kernels.py``).

A third spelling, ``mega``, names the structure-of-arrays multi-seed
path (:mod:`repro.core.kernels.mega`): one ``numba.prange`` dispatch
per episode running *all* K seeds, built from the very same scalar
kernels as the per-seed numba backend.  ``mega`` is a routing choice,
not a third arithmetic: in scalar contexts (single-seed searches) it
resolves to the per-seed backend, and ``MultiSeedSearch`` auto-routes
K >= :data:`MEGA_SEED_THRESHOLD` sweeps through it whenever numba is
available (see :func:`mega_selected`).

Backend selection: an explicit name always wins; ``"auto"`` honors the
``REPRO_KERNEL_BACKEND`` environment variable and otherwise picks
``numba`` when importable, ``reference`` when not.

The runner protocol (both backends):

* ``rollout(explore, explored)`` — one epsilon-greedy decision walk
  (``explored is None`` → fully greedy; ``explore is None`` → every
  decision explored; both given → per-layer mix).  Fills ``choices``.
* ``rollout_price(explore, explored) -> costs`` — rollout plus the
  shaped per-layer cost vector (bitwise equal to
  ``CostEngine.layer_costs``).
* ``draw_replay_order(rng) -> perm | None`` — the replay order over
  the ring as it will stand after the episode's pushes, drawn into a
  preallocated scratch (stream-identical to ``rng.permutation``);
  None when replay is disabled.
* ``learn(rewards, perm)`` — the online eq. (2) sweep over the walked
  episode, the replay-ring pushes, and (``perm`` given) the full
  replay pass in that order.
* ``episode(explore, explored, perm) -> costs`` — all of the above
  fused into one call with ``rewards = -costs`` (the reward-shaping
  default).
* ``snapshot()`` — a copy of the episode's choices (best tracking).
* ``finalize()`` — flush backend-local state back into the
  :class:`QTable` (no-op for the numba backend, which mutates the
  flat arrays in place).  Idempotent, so drivers may call it mid-run
  to materialize a checkpoint.
* ``export_ring() -> dict | None`` / ``import_ring(ring)`` — the
  replay ring as backend-neutral checkpoint rows
  ``(layer, row, action, next_row, reward)`` in slot order plus the
  fill/position counters (see :mod:`repro.core.checkpoint`); None
  when replay is disabled.  Import runs against a freshly built
  runner whose QTable was already restored.

Randomness never crosses the kernel boundary: the driver draws every
episode's exploration mask, uniform actions, and replay permutation
from the same named RNG streams as always and hands them in, so both
backends consume byte-identical entropy.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError

#: Environment variable overriding ``"auto"`` backend resolution.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Concrete per-seed backend names (resolution targets of ``"auto"``).
BACKENDS = ("numba", "reference")

#: Every accepted ``kernel`` spelling (configs, jobs, CLI flags).
KERNEL_CHOICES = ("auto", "numba", "reference", "mega")

#: ``"auto"`` multi-seed sweeps with at least this many seeds route
#: through the mega path when numba is available (below it the
#: per-seed lockstep paths win on dispatch overhead).
MEGA_SEED_THRESHOLD = 64

_numba_cache: bool | None = None


def numba_available() -> bool:
    """Whether the numba JIT backend can be imported (cached)."""
    global _numba_cache
    if _numba_cache is None:
        try:
            import numba  # noqa: F401
        except Exception:
            _numba_cache = False
        else:
            _numba_cache = True
    return _numba_cache


def requested_backend(choice: str = "auto") -> str:
    """The effective backend request after applying the environment:
    the explicit ``choice`` when given, else ``REPRO_KERNEL_BACKEND``,
    else ``"auto"``.  May return ``"mega"`` — callers that need a
    concrete per-seed backend go through :func:`resolve_backend`."""
    name = (choice or "auto").strip().lower()
    if name == "auto":
        env = os.environ.get(ENV_VAR, "").strip().lower()
        if env and env != "auto":
            name = env
    return name


def resolve_backend(choice: str = "auto") -> str:
    """Resolve a backend request to a concrete per-seed backend name.

    ``choice`` is one of :data:`KERNEL_CHOICES` (a config value or CLI
    flag).  ``"auto"`` consults ``REPRO_KERNEL_BACKEND`` and falls back
    to auto-detection; ``"mega"`` resolves to its per-seed arithmetic
    twin (numba when available, the reference mirror otherwise) so
    scalar contexts handed a mega request still run the identical
    arithmetic; an explicit request for a missing backend fails loudly
    rather than silently degrading.
    """
    name = requested_backend(choice)
    if name in ("auto", "mega"):
        return "numba" if numba_available() else "reference"
    if name not in BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r}; "
            "have auto, numba, reference, mega"
        )
    if name == "numba" and not numba_available():
        raise ConfigError(
            "kernel backend 'numba' requested but numba is not importable; "
            "pip install numba or use --kernel reference"
        )
    return name


def mega_selected(choice: str, num_seeds: int) -> bool:
    """Whether a K-seed sweep should run the mega SoA path.

    Explicit ``"mega"`` (config, CLI flag, or ``REPRO_KERNEL_BACKEND``)
    always wins — including without numba, where the kernels run as
    plain Python (the correctness anchor the property tests drive).
    ``"auto"`` opts in only for K >= :data:`MEGA_SEED_THRESHOLD` *and*
    with numba importable: below the threshold the per-seed lockstep
    paths win, and auto-routing a thousand pure-Python seed loops
    through mega would be a pathological slowdown, not a fast path.
    """
    name = requested_backend(choice)
    if name == "mega":
        return True
    return (
        name == "auto"
        and num_seeds >= MEGA_SEED_THRESHOLD
        and numba_available()
    )


def make_runner(
    engine,
    qtable,
    q_parent,
    *,
    replay_enabled: bool,
    replay_capacity: int,
    backend: str = "auto",
):
    """Build an episode runner over ``(engine, qtable)`` state.

    ``q_parent[i]`` is the layer whose choice selects layer ``i``'s Q
    row (-1 for virtual-start layers).  The returned runner implements
    the protocol described in the module docstring; its ``backend``
    attribute names the concrete backend that was resolved.
    """
    name = resolve_backend(backend)
    if name == "numba":
        from repro.core.kernels import numba_backend

        return numba_backend.NumbaRunner(
            engine, qtable, q_parent, replay_enabled, replay_capacity
        )
    from repro.core.kernels import reference

    return reference.ReferenceRunner(
        engine, qtable, q_parent, replay_enabled, replay_capacity
    )
