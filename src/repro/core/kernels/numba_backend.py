"""numba-JIT episode kernels: the compiled backend.

One ``episode`` call runs a whole QS-DNN episode — the sequential
epsilon-greedy rollout walk, scalar pricing (bitwise equal to
``CostEngine.layer_costs``: per-layer time gather plus incoming-edge
penalties accumulated in edge order), the online eq. (2) sweep, the
replay-ring pushes and the full replay pass — entirely inside compiled
code, operating in place on the flat-array state of
:class:`~repro.core.qtable.QTable` and the flat views of
:class:`~repro.engine.pricing.CostEngine`.

Kernel signatures group related arrays into tuples (numba compiles
tuple unpacking to zero-cost loads): ``qstate`` is the QTable's
``(data, row_max, visited, q_offsets, rm_offsets, num_actions)``,
``pricing`` the engine's flat views, ``ring`` the replay ring's five
parallel arrays.

Every kernel is compiled without ``fastmath``: numba then emits plain
IEEE-754 double operations in source order, which is what makes the
results bit-identical to the pure-Python reference backend (the same
arithmetic expressions, evaluated in the same sequence).

When numba is missing the ``njit`` decorator degrades to a no-op and
the kernels run as plain Python over the same flat arrays — far too
slow to dispatch to (``make_runner`` never selects this backend
without numba installed), but it lets the equivalence tests pin the
kernel *algorithms* against the reference backend bit-for-bit even in
environments without a JIT.
"""

from __future__ import annotations

import numpy as np

try:
    from numba import njit
except ImportError:  # pragma: no cover - exercised in no-numba installs

    def njit(**_kwargs):
        def passthrough(func):
            return func

        return passthrough


_EMPTY_BOOL = np.empty(0, dtype=np.bool_)
_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)

#: Decision modes of the rollout walk.
_MODE_GREEDY = 0
_MODE_EXPLORE = 1
_MODE_MIXED = 2


@njit(cache=True)
def _rollout(qstate, q_parent, fvb, mode, explore, explored, choices, rows):
    data, row_max, visited, q_off, rm_off, n_act = qstate
    num_layers = q_parent.shape[0]
    for i in range(num_layers):
        parent = q_parent[i]
        row = 0 if parent < 0 else choices[parent]
        rows[i] = row
        if mode == _MODE_EXPLORE or (mode == _MODE_MIXED and explore[i]):
            choices[i] = explored[i]
            continue
        n = n_act[i]
        base = q_off[i] + row * n
        if fvb:
            best = -np.inf
            pick = -1
            for a in range(n):
                if visited[base + a] and data[base + a] > best:
                    best = data[base + a]
                    pick = a
            if pick < 0:
                best = data[base]
                pick = 0
                for a in range(1, n):
                    if data[base + a] > best:
                        best = data[base + a]
                        pick = a
            choices[i] = pick
        else:
            target = row_max[rm_off[i] + row]
            pick = 0
            for a in range(n):
                if data[base + a] == target:
                    pick = a
                    break
            choices[i] = pick


@njit(cache=True)
def _price(pricing, max_actions, choices, costs):
    times_flat, times_off, edge_flat, edge_off, edge_src, edge_dst = pricing
    num_layers = choices.shape[0]
    for i in range(num_layers):
        costs[i] = times_flat[times_off[i] + choices[i]]
    num_edges = edge_src.shape[0]
    # Consumer-charged penalties, accumulated in edge order — the same
    # element order np.add.at applies, hence bit-identical totals.
    for e in range(num_edges):
        src = choices[edge_src[e]]
        dst = choices[edge_dst[e]]
        costs[edge_dst[e]] += edge_flat[edge_off[e] + src * max_actions + dst]


@njit(cache=True)
def _apply_update(qstate, num_layers, layer, row, action, reward, next_row, eq2, fvb):
    data, row_max, visited, q_off, rm_off, n_act = qstate
    lr, keep, gamma = eq2
    n = n_act[layer]
    base = q_off[layer] + row * n
    idx = base + action
    old = data[idx]
    nxt = layer + 1
    if fvb:
        if nxt >= num_layers:
            boot = 0.0
        else:
            nbase = q_off[nxt] + next_row * n_act[nxt]
            best = -np.inf
            seen = False
            for a in range(n_act[nxt]):
                if visited[nbase + a]:
                    value = data[nbase + a]
                    if not seen or value > best:
                        best = value
                        seen = True
            if seen:
                boot = best
            else:
                best = data[nbase]
                for a in range(1, n_act[nxt]):
                    if data[nbase + a] > best:
                        best = data[nbase + a]
                boot = best
        target = reward + gamma * boot
        if visited[idx]:
            new = old * keep + lr * target
        else:
            new = target
        visited[idx] = True
    else:
        boot = 0.0 if nxt >= num_layers else row_max[rm_off[nxt] + next_row]
        new = old * keep + lr * (reward + gamma * boot)
    data[idx] = new
    rm_idx = rm_off[layer] + row
    cur = row_max[rm_idx]
    if new > cur:
        row_max[rm_idx] = new
    elif old == cur and new < old:
        best = data[base]
        for a in range(1, n):
            if data[base + a] > best:
                best = data[base + a]
        row_max[rm_idx] = best


@njit(cache=True)
def _learn(qstate, choices, rows, rewards, eq2, fvb, replay_on, ring, state, perm):
    num_layers = choices.shape[0]
    ring_layer, ring_row, ring_action, ring_next_row, ring_reward = ring
    capacity, fill, pos = state
    last = num_layers - 1
    for i in range(num_layers):
        row = rows[i]
        action = choices[i]
        reward = rewards[i]
        next_row = rows[i + 1] if i < last else 0
        _apply_update(qstate, num_layers, i, row, action, reward, next_row, eq2, fvb)
        if replay_on:
            ring_layer[pos] = i
            ring_row[pos] = row
            ring_action[pos] = action
            ring_next_row[pos] = next_row
            ring_reward[pos] = reward
            if fill < capacity:
                fill += 1
            pos = (pos + 1) % capacity
    if replay_on:
        for k in range(perm.shape[0]):
            t = perm[k]
            _apply_update(
                qstate,
                num_layers,
                ring_layer[t],
                ring_row[t],
                ring_action[t],
                ring_reward[t],
                ring_next_row[t],
                eq2,
                fvb,
            )
    return fill, pos


@njit(cache=True)
def _episode(
    qstate,
    q_parent,
    fvb,
    mode,
    explore,
    explored,
    choices,
    rows,
    pricing,
    max_actions,
    costs,
    rewards,
    eq2,
    replay_on,
    ring,
    state,
    perm,
):
    _rollout(qstate, q_parent, fvb, mode, explore, explored, choices, rows)
    _price(pricing, max_actions, choices, costs)
    num_layers = choices.shape[0]
    for i in range(num_layers):
        rewards[i] = -costs[i]
    return _learn(
        qstate, choices, rows, rewards, eq2, fvb, replay_on, ring, state, perm
    )


@njit(cache=True)
def _replay_ring(qstate, num_layers, ring, perm, eq2, fvb):
    for k in range(perm.shape[0]):
        t = perm[k]
        layer = np.int64(ring[t, 0])
        row = np.int64(ring[t, 1])
        action = np.int64(ring[t, 2])
        reward = ring[t, 3]
        encoded = ring[t, 4]
        next_row = action if encoded < 0 else np.int64(encoded)
        _apply_update(
            qstate, num_layers, layer, row, action, reward, next_row, eq2, fvb
        )


_warmed = False


def ensure_warm() -> None:
    """Compile (or load from cache) every kernel on tiny dummy state.

    Called once per process before the first timed episode so JIT
    compilation never lands inside a recorded search wall clock.
    """
    global _warmed
    if _warmed:
        return
    qstate = (
        np.zeros(2, dtype=np.float64),
        np.zeros(2, dtype=np.float64),
        np.zeros(2, dtype=np.bool_),
        np.array([0, 1], dtype=np.int64),
        np.array([0, 1], dtype=np.int64),
        np.array([1, 1], dtype=np.int64),
    )
    q_parent = np.array([-1, 0], dtype=np.int64)
    choices = np.zeros(2, dtype=np.int64)
    rows = np.zeros(2, dtype=np.int64)
    costs = np.zeros(2, dtype=np.float64)
    rewards = np.zeros(2, dtype=np.float64)
    pricing = (
        np.zeros(2, dtype=np.float64),
        np.array([0, 1], dtype=np.int64),
        _EMPTY_F64,
        _EMPTY_I64,
        _EMPTY_I64,
        _EMPTY_I64,
    )
    ring = tuple(np.zeros(4, dtype=np.int64) for _ in range(4)) + (
        np.zeros(4, dtype=np.float64),
    )
    ring2d = np.zeros((4, 5), dtype=np.float64)
    perm = np.zeros(1, dtype=np.int64)
    eq2 = (0.05, 0.95, 0.9)
    for fvb in (False, True):
        _episode(
            qstate,
            q_parent,
            fvb,
            _MODE_GREEDY,
            _EMPTY_BOOL,
            _EMPTY_I64,
            choices,
            rows,
            pricing,
            1,
            costs,
            rewards,
            eq2,
            True,
            ring,
            (4, 0, 0),
            perm,
        )
        _rollout(
            qstate, q_parent, fvb, _MODE_GREEDY, _EMPTY_BOOL, _EMPTY_I64, choices, rows
        )
        _learn(
            qstate, choices, rows, rewards, eq2, fvb, False, ring, (4, 0, 0), _EMPTY_I64
        )
        _replay_ring(qstate, 2, ring2d, perm, eq2, fvb)
    _price(pricing, 1, choices, costs)
    qstate[0][:] = 0.0
    qstate[1][:] = 0.0
    _warmed = True


def replay_ring(qtable, ring: np.ndarray, perm: np.ndarray) -> None:
    """Apply a :class:`ReplayBuffer`'s ring rows to ``qtable`` in
    ``perm`` order — the compiled path of ``ReplayBuffer.replay``."""
    ensure_warm()
    flat = qtable.flat()
    eq2 = (qtable.learning_rate, 1.0 - qtable.learning_rate, qtable.discount)
    _replay_ring(
        tuple(flat), len(qtable), ring, perm, eq2, qtable.first_visit_bootstrap
    )


class NumbaRunner:
    """Episode runner over the QTable/CostEngine flat arrays, in place."""

    backend = "numba"

    def __init__(self, engine, qtable, q_parent, replay_enabled, replay_capacity):
        ensure_warm()
        self._qtable = qtable
        self._qstate = tuple(qtable.flat())
        views = engine.kernel_views()
        self._pricing = views[:6]
        self._max_actions = views[6]
        num_layers = len(qtable)
        self._num_layers = num_layers
        self._fvb = qtable.first_visit_bootstrap
        self._eq2 = (
            qtable.learning_rate,
            1.0 - qtable.learning_rate,
            qtable.discount,
        )
        self._q_parent = np.asarray(q_parent, dtype=np.int64)
        self._replay_on = replay_enabled
        self._capacity = replay_capacity
        self.choices = np.zeros(num_layers, dtype=np.int64)
        self._rows = np.zeros(num_layers, dtype=np.int64)
        self._costs = np.zeros(num_layers, dtype=np.float64)
        self._rewards = np.zeros(num_layers, dtype=np.float64)
        self._ring = tuple(
            np.zeros(replay_capacity, dtype=np.int64) for _ in range(4)
        ) + (np.zeros(replay_capacity, dtype=np.float64),)
        self._fill = 0
        self._pos = 0
        self._perm_scratch = np.empty(replay_capacity, dtype=np.int64)
        self._iota = np.arange(replay_capacity, dtype=np.int64)

    @staticmethod
    def _decision_args(explore, explored):
        if explored is None:
            return _MODE_GREEDY, _EMPTY_BOOL, _EMPTY_I64
        if explore is None:
            return _MODE_EXPLORE, _EMPTY_BOOL, explored
        return _MODE_MIXED, explore, explored

    def rollout(self, explore, explored) -> None:
        mode, flags, picks = self._decision_args(explore, explored)
        _rollout(
            self._qstate,
            self._q_parent,
            self._fvb,
            mode,
            flags,
            picks,
            self.choices,
            self._rows,
        )

    def rollout_price(self, explore, explored) -> np.ndarray:
        self.rollout(explore, explored)
        _price(self._pricing, self._max_actions, self.choices, self._costs)
        return self._costs

    def draw_replay_order(self, rng) -> np.ndarray | None:
        """The replay order for the ring as it will stand after this
        episode's pushes (None when replay is disabled).

        Shuffles the preallocated scratch in place; the draw consumes
        exactly the stream of ``rng.permutation(n)``.  The view is
        valid until the next call.
        """
        if not self._replay_on:
            return None
        stored = min(self._fill + self._num_layers, self._capacity)
        order = self._perm_scratch[:stored]
        order[:] = self._iota[:stored]
        rng.shuffle(order)
        return order

    def learn(self, rewards: np.ndarray, perm) -> None:
        self._fill, self._pos = _learn(
            self._qstate,
            self.choices,
            self._rows,
            rewards,
            self._eq2,
            self._fvb,
            self._replay_on,
            self._ring,
            (self._capacity, self._fill, self._pos),
            perm if perm is not None else _EMPTY_I64,
        )

    def episode(self, explore, explored, perm) -> np.ndarray:
        mode, flags, picks = self._decision_args(explore, explored)
        self._fill, self._pos = _episode(
            self._qstate,
            self._q_parent,
            self._fvb,
            mode,
            flags,
            picks,
            self.choices,
            self._rows,
            self._pricing,
            self._max_actions,
            self._costs,
            self._rewards,
            self._eq2,
            self._replay_on,
            self._ring,
            (self._capacity, self._fill, self._pos),
            perm if perm is not None else _EMPTY_I64,
        )
        return self._costs

    def snapshot(self) -> np.ndarray:
        """A copy of the current episode's choices."""
        return self.choices.copy()

    def finalize(self) -> None:
        """No-op: the kernels mutate the QTable arrays in place."""

    def export_ring(self) -> dict | None:
        """The replay ring as canonical checkpoint rows (slot order).

        Rows are ``(layer, row, action, next_row, reward)`` for slots
        ``0 .. fill-1``; slots past ``fill`` are never read before
        being overwritten, so they need no capture.  None when replay
        is disabled.
        """
        if not self._replay_on:
            return None
        layer, row, action, next_row, reward = self._ring
        rows = [
            [
                int(layer[t]),
                int(row[t]),
                int(action[t]),
                int(next_row[t]),
                float(reward[t]),
            ]
            for t in range(self._fill)
        ]
        return {"rows": rows, "fill": int(self._fill), "pos": int(self._pos)}

    def import_ring(self, ring: dict | None) -> None:
        """Restore the ring from canonical checkpoint rows."""
        if ring is None or not self._replay_on:
            return
        layer, row, action, next_row, reward = self._ring
        for t, (i, r, a, nr, rw) in enumerate(ring["rows"]):
            layer[t] = i
            row[t] = r
            action[t] = a
            next_row[t] = nr
            reward[t] = rw
        self._fill = int(ring["fill"])
        self._pos = int(ring["pos"])
