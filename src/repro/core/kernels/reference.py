"""The pure-Python reference backend: exact semantics, no dependencies.

This backend is the correctness anchor the numba kernels are property-
tested against, and the production fallback when numba is absent — so
it is written for speed within pure Python: the flat-array
:class:`~repro.core.qtable.QTable` state is mirrored into nested
Python lists once per search (scalar float arithmetic on list entries
is several times faster than numpy element access while computing
bit-identical IEEE-754 results), the replay ring stores tuples holding
direct row references, and the inner loops pre-bind every attribute
they touch.  ``finalize()`` flushes the mirrors back into the flat
arrays.

Pricing delegates to :meth:`CostEngine.layer_costs` (already
vectorized); only decisions and learning run as Python loops.
"""

from __future__ import annotations

from itertools import chain

import numpy as np


class ReferenceRunner:
    """Episode runner over nested-list mirrors of the Q state."""

    backend = "reference"

    def __init__(
        self,
        engine,
        qtable,
        q_parent,
        replay_enabled: bool,
        replay_capacity: int,
    ) -> None:
        self._engine = engine
        self._qtable = qtable
        self._q_parent = [int(p) for p in q_parent]
        self._num_layers = len(qtable)
        self._fvb = qtable.first_visit_bootstrap
        self._lr = qtable.learning_rate
        self._keep = 1.0 - qtable.learning_rate
        self._gamma = qtable.discount
        self._replay_on = replay_enabled
        self._capacity = replay_capacity
        self._items: list[tuple] = []
        self._ring_next = 0
        self._perm_scratch = np.empty(replay_capacity, dtype=np.int64)
        self._iota = np.arange(replay_capacity, dtype=np.int64)
        self.choices: list[int] = [0] * self._num_layers
        self._rows: list[int] = [0] * self._num_layers

        # Nested-list mirrors of the flat arrays: q[i][row] is one
        # action-value row, rm[i] the row-max cache of layer i.
        flat = qtable.flat()
        data = flat.data.tolist()
        vis = flat.visited.tolist() if self._fvb else []
        self._q: list[list[list[float]]] = []
        self._vis: list[list[list[bool]]] = []
        pos = 0
        for r, n in zip(qtable.row_sizes, qtable.num_actions):
            layer_rows = []
            vis_rows = []
            for _ in range(r):
                layer_rows.append(data[pos : pos + n])
                if self._fvb:
                    vis_rows.append(vis[pos : pos + n])
                pos += n
            self._q.append(layer_rows)
            self._vis.append(vis_rows)
        row_max = flat.row_max.tolist()
        self._rm: list[list[float]] = []
        pos = 0
        for r in qtable.row_sizes:
            self._rm.append(row_max[pos : pos + r])
            pos += r

    # -- decisions -----------------------------------------------------------

    def _greedy_fvb(self, layer: int, row: int) -> int:
        """First-index argmax over visited entries (all, if none seen)."""
        values = self._q[layer][row]
        visited = self._vis[layer][row]
        best = -np.inf
        pick = -1
        for a, (value, seen) in enumerate(zip(values, visited)):
            if seen and value > best:
                best = value
                pick = a
        if pick >= 0:
            return pick
        return values.index(max(values))

    def rollout(self, explore, explored) -> None:
        """One epsilon-greedy decision walk; fills ``choices``.

        ``explored is None`` → fully greedy; ``explore is None`` →
        every decision is the pre-drawn uniform action; both arrays
        given → per-layer mix.
        """
        q_parent = self._q_parent
        choices = self.choices
        rows = self._rows
        num_layers = self._num_layers
        if explored is None:
            if self._fvb:
                greedy = self._greedy_fvb
                for i in range(num_layers):
                    parent = q_parent[i]
                    row = 0 if parent < 0 else choices[parent]
                    rows[i] = row
                    choices[i] = greedy(i, row)
            else:
                q = self._q
                rm = self._rm
                for i in range(num_layers):
                    parent = q_parent[i]
                    row = 0 if parent < 0 else choices[parent]
                    rows[i] = row
                    choices[i] = q[i][row].index(rm[i][row])
        elif explore is None:
            picks = explored.tolist()
            for i in range(num_layers):
                parent = q_parent[i]
                rows[i] = 0 if parent < 0 else choices[parent]
                choices[i] = picks[i]
        else:
            flags = explore.tolist()
            picks = explored.tolist()
            if self._fvb:
                greedy = self._greedy_fvb
                for i in range(num_layers):
                    parent = q_parent[i]
                    row = 0 if parent < 0 else choices[parent]
                    rows[i] = row
                    choices[i] = picks[i] if flags[i] else greedy(i, row)
            else:
                q = self._q
                rm = self._rm
                for i in range(num_layers):
                    parent = q_parent[i]
                    row = 0 if parent < 0 else choices[parent]
                    rows[i] = row
                    pick = picks[i] if flags[i] else q[i][row].index(rm[i][row])
                    choices[i] = pick

    def rollout_price(self, explore, explored) -> np.ndarray:
        """Rollout, then the per-layer shaped cost vector."""
        self.rollout(explore, explored)
        return self._engine.layer_costs(self.choices)

    # -- learning ------------------------------------------------------------

    def draw_replay_order(self, rng) -> np.ndarray | None:
        """The replay order for the ring as it will stand after this
        episode's pushes (None when replay is disabled).

        Shuffles the preallocated scratch in place; the draw consumes
        exactly the stream of ``rng.permutation(n)``.  The view is
        valid until the next call.
        """
        if not self._replay_on:
            return None
        stored = min(len(self._items) + self._num_layers, self._capacity)
        order = self._perm_scratch[:stored]
        order[:] = self._iota[:stored]
        rng.shuffle(order)
        return order

    def learn(self, rewards: np.ndarray, perm) -> None:
        """Online eq. (2) sweep + replay-ring pushes + the replay pass.

        ``rewards`` is the episode's per-layer reward vector; ``perm``
        the replay order over the ring's content after this episode's
        pushes (None when replay is disabled).
        """
        if self._fvb:
            self._learn_fvb(rewards.tolist(), perm)
        else:
            self._learn_plain(rewards.tolist(), perm)

    def _learn_plain(self, rewards: list[float], perm) -> None:
        q = self._q
        rm = self._rm
        rows = self._rows
        choices = self.choices
        keep = self._keep
        lr = self._lr
        gamma = self._gamma
        boot_rows: list = rm[1:]
        boot_rows.append(None)
        next_rows = rows[1:]
        next_rows.append(0)
        replay_on = self._replay_on
        capacity = self._capacity
        items = self._items
        ring_next = self._ring_next
        stored = len(items)
        for q_i, mr_i, boot_i, row, choice, reward, nxt_row in zip(
            q, rm, boot_rows, rows, choices, rewards, next_rows
        ):
            q_row = q_i[row]
            old = q_row[choice]
            boot = 0.0 if boot_i is None else boot_i[nxt_row]
            new = old * keep + lr * (reward + gamma * boot)
            q_row[choice] = new
            cur = mr_i[row]
            if new > cur:
                mr_i[row] = new
            elif old == cur and new < old:
                mr_i[row] = max(q_row)
            if replay_on:
                item = (q_row, choice, reward, boot_i, nxt_row, mr_i, row)
                if stored < capacity:
                    items.append(item)
                    stored += 1
                else:
                    items[ring_next] = item
                ring_next = (ring_next + 1) % capacity
        if replay_on:
            self._ring_next = ring_next
            # tolist(): iterating the ndarray view would yield np.int64
            # picks, and list indexing with those is several times
            # slower than with plain ints.
            for pick in perm.tolist():
                q_row, choice, reward, boot_i, nxt_row, mr_i, row = items[pick]
                old = q_row[choice]
                boot = 0.0 if boot_i is None else boot_i[nxt_row]
                new = old * keep + lr * (reward + gamma * boot)
                q_row[choice] = new
                cur = mr_i[row]
                if new > cur:
                    mr_i[row] = new
                elif old == cur and new < old:
                    mr_i[row] = max(q_row)

    def _update_fvb(
        self, q_row, vis_row, mr_row, row, choice, reward, nxt_q, nxt_vis
    ) -> None:
        """One first-visit-bootstrap update (online or replayed)."""
        if nxt_q is None:
            boot = 0.0
        else:
            best = -np.inf
            seen = False
            for value, flag in zip(nxt_q, nxt_vis):
                if flag and (not seen or value > best):
                    best = value
                    seen = True
            boot = best if seen else max(nxt_q)
        target = reward + self._gamma * boot
        old = q_row[choice]
        if vis_row[choice]:
            new = old * self._keep + self._lr * target
        else:
            new = target
        q_row[choice] = new
        vis_row[choice] = True
        cur = mr_row[row]
        if new > cur:
            mr_row[row] = new
        elif old == cur and new < old:
            mr_row[row] = max(q_row)

    def _learn_fvb(self, rewards: list[float], perm) -> None:
        q = self._q
        rm = self._rm
        vis = self._vis
        rows = self._rows
        choices = self.choices
        last = self._num_layers - 1
        replay_on = self._replay_on
        capacity = self._capacity
        items = self._items
        ring_next = self._ring_next
        stored = len(items)
        update = self._update_fvb
        for i in range(self._num_layers):
            row = rows[i]
            choice = choices[i]
            reward = rewards[i]
            if i < last:
                nxt_row = rows[i + 1]
                nxt_q = q[i + 1][nxt_row]
                nxt_vis = vis[i + 1][nxt_row]
            else:
                nxt_q = nxt_vis = None
            update(q[i][row], vis[i][row], rm[i], row, choice, reward, nxt_q, nxt_vis)
            if replay_on:
                item = (
                    q[i][row],
                    vis[i][row],
                    rm[i],
                    row,
                    choice,
                    reward,
                    nxt_q,
                    nxt_vis,
                )
                if stored < capacity:
                    items.append(item)
                    stored += 1
                else:
                    items[ring_next] = item
                ring_next = (ring_next + 1) % capacity
        if replay_on:
            self._ring_next = ring_next
            for pick in perm.tolist():
                update(*items[pick])

    # -- fused episode -------------------------------------------------------

    def episode(self, explore, explored, perm) -> np.ndarray:
        """Rollout + pricing + eq. (2) + replay with shaped rewards."""
        self.rollout(explore, explored)
        costs = self._engine.layer_costs(self.choices)
        self.learn(-costs, perm)
        return costs

    # -- state ---------------------------------------------------------------

    def snapshot(self) -> list[int]:
        """A copy of the current episode's choices."""
        return list(self.choices)

    def finalize(self) -> None:
        """Flush the list mirrors back into the QTable's flat arrays.

        Idempotent, and the mirrors stay live — callable mid-run for a
        checkpoint capture without disturbing the search.
        """
        flat = self._qtable.flat()
        flat.data[:] = list(chain.from_iterable(chain.from_iterable(self._q)))
        flat.row_max[:] = list(chain.from_iterable(self._rm))
        if self._fvb:
            vis_flat = chain.from_iterable(chain.from_iterable(self._vis))
            flat.visited[:] = list(vis_flat)

    def export_ring(self) -> dict | None:
        """The replay ring as canonical checkpoint rows (slot order).

        The ring items hold *live* mirror-row references; the layer of
        an item is recovered through the identity of its row-max list
        (each layer's cache is a distinct list object), and an fvb
        item's next row through the identity of its successor Q row.
        None when replay is disabled.
        """
        if not self._replay_on:
            return None
        layer_of = {id(rm): i for i, rm in enumerate(self._rm)}
        rows: list[list] = []
        if self._fvb:
            row_of = [
                {id(q_row): r for r, q_row in enumerate(layer_rows)}
                for layer_rows in self._q
            ]
            for _q_row, _vis, mr_row, row, choice, reward, nxt_q, _nv in self._items:
                i = layer_of[id(mr_row)]
                nr = 0 if nxt_q is None else row_of[i + 1][id(nxt_q)]
                rows.append([i, row, choice, nr, reward])
        else:
            for _q_row, choice, reward, _boot, nxt_row, mr_i, row in self._items:
                rows.append([layer_of[id(mr_i)], row, choice, nxt_row, reward])
        return {
            "rows": rows,
            "fill": len(self._items),
            "pos": int(self._ring_next),
        }

    def import_ring(self, ring: dict | None) -> None:
        """Restore the ring: rebuild live-reference items from rows."""
        if ring is None or not self._replay_on:
            return
        q, rm, vis = self._q, self._rm, self._vis
        last = self._num_layers - 1
        items: list[tuple] = []
        for i, row, choice, nr, reward in ring["rows"]:
            i, row, choice, nr = int(i), int(row), int(choice), int(nr)
            if self._fvb:
                if i < last:
                    nxt_q = q[i + 1][nr]
                    nxt_vis = vis[i + 1][nr]
                else:
                    nxt_q = nxt_vis = None
                items.append(
                    (q[i][row], vis[i][row], rm[i], row, choice, reward,
                     nxt_q, nxt_vis)
                )
            else:
                boot_i = rm[i + 1] if i < last else None
                items.append(
                    (q[i][row], choice, reward, boot_i, nr, rm[i], row)
                )
        self._items = items
        self._ring_next = int(ring["pos"])
