"""Mega-batch episode kernels: K lockstep seeds per compiled dispatch.

The per-seed kernel backends (:mod:`repro.core.kernels.numba_backend`,
:mod:`repro.core.kernels.reference`) fuse one seed's episode into one
call; a thousand-seed sweep still pays a thousand Python dispatches per
episode.  This module restructures the whole multi-seed state as
structure-of-arrays over the seed axis K —

* ``q``        — ``(K, Q)`` float64, every seed's flat Q data block
  (the same contiguous layout as :meth:`QTable.flat`, one row per
  seed);
* ``row_max``  — ``(K, R)`` float64 per-seed row-max caches;
* ``visited``  — ``(K, Q)`` bool visit flags (``(K, 0)`` unless
  ``first_visit_bootstrap``);
* ``ring``     — ``(K, capacity, 5)`` float64 replay rings (columns
  ``layer, row, action, next_row, reward``; integers stored as exact
  doubles);

— and fuses the *across-seed* loop of each episode phase into a single
``numba.prange`` dispatch.  Inside the parallel region every seed runs
the exact scalar kernels of the per-seed numba backend (``_rollout``,
``_price``, ``_apply_update``) over its own array slices, so each
seed's arithmetic is the same IEEE-754 sequence as an independent
single-seed :class:`~repro.core.search.QSDNNSearch` run — bit-identity
per seed is inherited, not re-proven.

Seeds advance in lockstep, so the replay ring's fill/position counters
are identical across seeds and live as two Python scalars in the
driver (:meth:`MegaState.advance_ring`), not per-seed state.

Without numba the ``njit`` decorator degrades to a no-op and
``prange`` to ``range``: the kernels run as plain Python over the same
arrays — far too slow for real sweeps (auto-routing never selects mega
without numba) but exactly right for pinning the algorithms bit-for-bit
in no-JIT environments.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.numba_backend import (
    _MODE_EXPLORE,
    _MODE_GREEDY,
    _MODE_MIXED,
    _apply_update,
    _price,
    _rollout,
)
from repro.core.qtable import QTable

try:
    from numba import njit, prange
except ImportError:  # pragma: no cover - exercised in no-numba installs
    prange = range

    def njit(**_kwargs):
        def passthrough(func):
            return func

        return passthrough


_EMPTY_BOOL_2D = np.empty((0, 0), dtype=np.bool_)
_EMPTY_I64_2D = np.empty((0, 0), dtype=np.int64)


@njit(cache=True)
def _seed_learn(
    qstate, choices, rows, rewards, eq2, fvb, replay_on, ring, capacity, fill, pos, perm
):
    """One seed's eq. (2) sweep + ring pushes + replay pass.

    ``ring`` is the seed's ``(capacity, 5)`` float slab; transitions
    round-trip through it losslessly (layer/row/action/next_row are
    small integers, exact as doubles).  The update sequence is
    identical to the per-seed backends' ``_learn``.
    """
    num_layers = choices.shape[0]
    last = num_layers - 1
    for i in range(num_layers):
        row = rows[i]
        action = choices[i]
        reward = rewards[i]
        next_row = rows[i + 1] if i < last else 0
        _apply_update(qstate, num_layers, i, row, action, reward, next_row, eq2, fvb)
        if replay_on:
            ring[pos, 0] = i
            ring[pos, 1] = row
            ring[pos, 2] = action
            ring[pos, 3] = next_row
            ring[pos, 4] = reward
            if fill < capacity:
                fill += 1
            pos = (pos + 1) % capacity
    if replay_on:
        for k in range(perm.shape[0]):
            t = perm[k]
            _apply_update(
                qstate,
                num_layers,
                np.int64(ring[t, 0]),
                np.int64(ring[t, 1]),
                np.int64(ring[t, 2]),
                ring[t, 4],
                np.int64(ring[t, 3]),
                eq2,
                fvb,
            )


@njit(cache=True, parallel=True)
def _mega_rollout(
    q2, rm2, vis2, q_off, rm_off, n_act, q_parent, fvb, mode, explore2, explored2,
    choices2, rows2,
):
    for s in prange(q2.shape[0]):
        _rollout(
            (q2[s], rm2[s], vis2[s], q_off, rm_off, n_act),
            q_parent,
            fvb,
            mode,
            explore2[s] if explore2.shape[0] else explore2.reshape(-1),
            explored2[s] if explored2.shape[0] else explored2.reshape(-1),
            choices2[s],
            rows2[s],
        )


@njit(cache=True, parallel=True)
def _mega_rollout_price(
    q2, rm2, vis2, q_off, rm_off, n_act, q_parent, fvb, mode, explore2, explored2,
    choices2, rows2, pricing, max_actions, costs2,
):
    for s in prange(q2.shape[0]):
        _rollout(
            (q2[s], rm2[s], vis2[s], q_off, rm_off, n_act),
            q_parent,
            fvb,
            mode,
            explore2[s] if explore2.shape[0] else explore2.reshape(-1),
            explored2[s] if explored2.shape[0] else explored2.reshape(-1),
            choices2[s],
            rows2[s],
        )
        _price(pricing, max_actions, choices2[s], costs2[s])


@njit(cache=True, parallel=True)
def _mega_learn(
    q2, rm2, vis2, q_off, rm_off, n_act, choices2, rows2, rewards2, eq2, fvb,
    replay_on, ring3, capacity, fill, pos, perm2,
):
    for s in prange(q2.shape[0]):
        _seed_learn(
            (q2[s], rm2[s], vis2[s], q_off, rm_off, n_act),
            choices2[s],
            rows2[s],
            rewards2[s],
            eq2,
            fvb,
            replay_on,
            ring3[s],
            capacity,
            fill,
            pos,
            perm2[s] if perm2.shape[0] else perm2.reshape(-1),
        )


@njit(cache=True, parallel=True)
def _mega_episode(
    q2, rm2, vis2, q_off, rm_off, n_act, q_parent, fvb, mode, explore2, explored2,
    choices2, rows2, pricing, max_actions, costs2, rewards2, eq2, replay_on, ring3,
    capacity, fill, pos, perm2,
):
    num_layers = q_parent.shape[0]
    for s in prange(q2.shape[0]):
        qstate = (q2[s], rm2[s], vis2[s], q_off, rm_off, n_act)
        _rollout(
            qstate,
            q_parent,
            fvb,
            mode,
            explore2[s] if explore2.shape[0] else explore2.reshape(-1),
            explored2[s] if explored2.shape[0] else explored2.reshape(-1),
            choices2[s],
            rows2[s],
        )
        _price(pricing, max_actions, choices2[s], costs2[s])
        for i in range(num_layers):
            rewards2[s, i] = -costs2[s, i]
        _seed_learn(
            qstate,
            choices2[s],
            rows2[s],
            rewards2[s],
            eq2,
            fvb,
            replay_on,
            ring3[s],
            capacity,
            fill,
            pos,
            perm2[s] if perm2.shape[0] else perm2.reshape(-1),
        )


_warmed = False


def ensure_warm() -> None:
    """Compile (or cache-load) every mega kernel on tiny K=2 state."""
    global _warmed
    if _warmed:
        return
    for fvb in (False, True):
        state = MegaState(
            num_seeds=2,
            num_actions=[1, 1],
            row_sizes=[1, 1],
            q_parent=np.array([-1, 0], dtype=np.int64),
            pricing=(
                np.zeros(2, dtype=np.float64),
                np.array([0, 1], dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            ),
            max_actions=1,
            learning_rate=0.05,
            discount=0.9,
            first_visit_bootstrap=fvb,
            replay_enabled=True,
            replay_capacity=4,
        )
        explored = np.zeros((2, 2), dtype=np.int64)
        perm = np.zeros((2, 1), dtype=np.int64)
        state.episode(_MODE_EXPLORE, None, explored, perm)
        state.rollout_price(_MODE_GREEDY, None, None)
        state.learn(np.zeros((2, 2), dtype=np.float64), None)
        state.greedy_choices()
    _warmed = True


class MegaState:
    """The structure-of-arrays state of K lockstep seeds plus the
    dispatch surface of the mega kernels.

    Construction mirrors K independent :class:`QTable` instances: a
    single template table supplies the flat layout (offsets, initial
    zeros), tiled along a leading seed axis.  All dispatch methods
    mutate the arrays in place.
    """

    def __init__(
        self,
        num_seeds: int,
        num_actions: list[int],
        row_sizes: list[int],
        q_parent: np.ndarray,
        pricing: tuple,
        max_actions: int,
        learning_rate: float,
        discount: float,
        first_visit_bootstrap: bool,
        replay_enabled: bool,
        replay_capacity: int,
    ) -> None:
        template = QTable(
            list(num_actions),
            learning_rate,
            discount,
            row_sizes=list(row_sizes),
            first_visit_bootstrap=first_visit_bootstrap,
        ).flat()
        self.num_seeds = num_seeds
        self.num_layers = len(num_actions)
        self.q_offsets = template.q_offsets
        self.rm_offsets = template.rm_offsets
        self.num_actions = template.num_actions
        self.q_parent = np.asarray(q_parent, dtype=np.int64)
        self.fvb = first_visit_bootstrap
        self.eq2 = (learning_rate, 1.0 - learning_rate, discount)
        self.pricing = pricing
        self.max_actions = max_actions
        # One contiguous block per state component, seeds along axis 0.
        self.q = np.zeros((num_seeds, template.data.shape[0]), dtype=np.float64)
        self.row_max = np.zeros(
            (num_seeds, template.row_max.shape[0]), dtype=np.float64
        )
        self.visited = np.zeros(
            (num_seeds, template.visited.shape[0]), dtype=np.bool_
        )
        self.choices = np.zeros((num_seeds, self.num_layers), dtype=np.int64)
        self.rows = np.zeros((num_seeds, self.num_layers), dtype=np.int64)
        self.costs = np.zeros((num_seeds, self.num_layers), dtype=np.float64)
        self._rewards = np.zeros((num_seeds, self.num_layers), dtype=np.float64)
        self.replay_enabled = replay_enabled
        self.capacity = replay_capacity
        # Allocated per seed even with replay off: the kernels slice
        # ``ring[s]`` unconditionally (numba specializes on one type),
        # they just never read or write it when ``replay_on`` is False.
        self.ring = np.zeros(
            (num_seeds, max(replay_capacity, 1), 5), dtype=np.float64
        )
        #: Lockstep ring counters — identical across seeds by
        #: construction, so they live once, not per seed.
        self.fill = 0
        self.pos = 0

    def _decision_args(self, explore2, explored2):
        return (
            explore2 if explore2 is not None else _EMPTY_BOOL_2D,
            explored2 if explored2 is not None else _EMPTY_I64_2D,
        )

    def rollout(self, mode: int, explore2, explored2) -> np.ndarray:
        """One decision walk per seed; fills and returns ``choices``."""
        flags, picks = self._decision_args(explore2, explored2)
        _mega_rollout(
            self.q, self.row_max, self.visited,
            self.q_offsets, self.rm_offsets, self.num_actions,
            self.q_parent, self.fvb, mode, flags, picks,
            self.choices, self.rows,
        )
        return self.choices

    def rollout_price(self, mode: int, explore2, explored2) -> np.ndarray:
        """Rollout plus per-seed shaped cost vectors (``(K, L)``)."""
        flags, picks = self._decision_args(explore2, explored2)
        _mega_rollout_price(
            self.q, self.row_max, self.visited,
            self.q_offsets, self.rm_offsets, self.num_actions,
            self.q_parent, self.fvb, mode, flags, picks,
            self.choices, self.rows, self.pricing, self.max_actions, self.costs,
        )
        return self.costs

    def learn(self, rewards2: np.ndarray, perm2) -> None:
        """Every seed's eq. (2) sweep + ring pushes + replay pass."""
        _mega_learn(
            self.q, self.row_max, self.visited,
            self.q_offsets, self.rm_offsets, self.num_actions,
            self.choices, self.rows, rewards2, self.eq2, self.fvb,
            self.replay_enabled, self.ring, self.capacity, self.fill, self.pos,
            perm2 if perm2 is not None else _EMPTY_I64_2D,
        )
        self.advance_ring()

    def episode(self, mode: int, explore2, explored2, perm2) -> np.ndarray:
        """The fully fused episode (rewards = -costs); returns costs."""
        flags, picks = self._decision_args(explore2, explored2)
        _mega_episode(
            self.q, self.row_max, self.visited,
            self.q_offsets, self.rm_offsets, self.num_actions,
            self.q_parent, self.fvb, mode, flags, picks,
            self.choices, self.rows, self.pricing, self.max_actions,
            self.costs, self._rewards, self.eq2,
            self.replay_enabled, self.ring, self.capacity, self.fill, self.pos,
            perm2 if perm2 is not None else _EMPTY_I64_2D,
        )
        self.advance_ring()
        return self.costs

    def advance_ring(self) -> None:
        """Advance the lockstep fill/position counters by one episode's
        pushes (every seed pushes exactly L transitions)."""
        if not self.replay_enabled:
            return
        self.fill = min(self.fill + self.num_layers, self.capacity)
        self.pos = (self.pos + self.num_layers) % self.capacity

    def stored(self) -> int:
        """Ring occupancy as it will stand *after* the next episode's
        pushes — the length of the replay permutation to draw (the
        mega twin of ``NumbaRunner.draw_replay_order``'s ``stored``)."""
        return min(self.fill + self.num_layers, self.capacity)

    def greedy_choices(self) -> np.ndarray:
        """Every seed's fully-greedy decision walk over the final Q
        state (bitwise ``QTable.greedy_rollout`` per seed)."""
        _mega_rollout(
            self.q, self.row_max, self.visited,
            self.q_offsets, self.rm_offsets, self.num_actions,
            self.q_parent, self.fvb, _MODE_GREEDY, _EMPTY_BOOL_2D, _EMPTY_I64_2D,
            self.choices, self.rows,
        )
        return self.choices


__all__ = [
    "MegaState",
    "ensure_warm",
    "_MODE_GREEDY",
    "_MODE_EXPLORE",
    "_MODE_MIXED",
]
