"""QS-DNN's search phase: Algorithm 1 of the paper.

Per episode the agent walks the network in topological order choosing a
primitive per layer with an epsilon-greedy policy over the Q table.
Rewards are shaped: each layer receives minus its own LUT latency, with
any compatibility penalties on its incoming edges charged to it (paper
§IV-C and §V-B: "If any incompatibility has been found between two
layers, the extra penalty is added to the inference time of the latter
layer").  After the rollout every transition is learned online (eq. 2)
and pushed to the replay buffer, which is then replayed in full.

Branch handling: the Q state chain follows topological order, but the
reward of a layer sums the penalty matrices of *all* its graph
predecessors — so residual joins and inception branches price their
conversions exactly, even though the MDP sees a linear state sequence
(the paper's Fig. 3 "exceptions and branches are handled").

The whole per-episode hot path — rollout walk, pricing, the eq. (2)
sweep and the replay chain — runs inside an episode kernel
(:mod:`repro.core.kernels`): one fused call per episode on the numba
backend, the bit-identical pure-Python reference backend otherwise.
This loop only draws the episode's randomness (same named streams as
ever), dispatches the kernel, and tracks the best configuration.

The search is *anytime*: ``run(checkpoint_every=N, on_checkpoint=f)``
captures a :mod:`repro.core.checkpoint` snapshot at every Nth episode
boundary (drawing no randomness, so the RNG streams are untouched) and
hands it to the callback; a callback returning ``False`` stops the run
with a :class:`~repro.errors.PreemptedError` carrying that snapshot.
``run(resume=ckpt)`` continues from a snapshot and finishes
bitwise-identical — same ``best_ms``, ``curve_ms`` and flat Q state —
to the run that was never interrupted (exactness contract 8,
``docs/architecture.md``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import checkpoint as ckpt_mod
from repro.core.config import SearchConfig
from repro.core.kernels import make_runner, resolve_backend
from repro.core.polish import coordinate_descent
from repro.core.qtable import QTable
from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.engine.pricing import CostEngine
from repro.errors import ConfigError, PreemptedError
from repro.utils.rng import RngStream


class QSDNNSearch:
    """The RL-based search engine over a profiled latency table.

    ``prior`` (any :class:`~repro.core.priors.QPrior`) seeds the Q
    table when ``config.warm_start`` is not ``"off"``; a prior that
    resolves to None leaves the zero init (cold start).  The knob and
    the prior travel together: ``warm_start`` labels the result and
    checkpoints, the prior supplies the values.
    """

    def __init__(
        self,
        lut: LatencyTable,
        config: SearchConfig | None = None,
        prior=None,
    ) -> None:
        self.lut = lut
        self.config = config or SearchConfig()
        self.prior = prior
        self.indexed = lut.indexed()
        self.engine: CostEngine = self.indexed.engine()
        self._num_layers = len(self.indexed)
        self._action_counts = np.asarray(self.indexed.num_actions, dtype=np.int64)

    # -- the search (Algorithm 1) ----------------------------------------------

    def run(
        self,
        checkpoint_every: int | None = None,
        on_checkpoint=None,
        resume: dict | None = None,
    ) -> SearchResult:
        """Run the full epsilon-schedule search; returns the best result.

        ``checkpoint_every=N`` with a callback captures a checkpoint
        after every Nth completed episode (never after the last — the
        run is about to finish anyway) and calls ``on_checkpoint(ckpt)``;
        a ``False`` return preempts the run with
        :class:`~repro.errors.PreemptedError` carrying the snapshot.
        ``resume`` continues from a decoded checkpoint dict.
        """
        cfg = self.config
        idx = self.indexed
        num_layers = self._num_layers
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        row_sizes = [
            1 if parent < 0 else int(idx.num_actions[parent])
            for parent in idx.q_parent
        ]
        qtable = QTable(
            list(idx.num_actions),
            cfg.learning_rate,
            cfg.discount,
            row_sizes=row_sizes,
            first_visit_bootstrap=cfg.first_visit_bootstrap,
        )
        if resume is not None:
            ckpt_mod.check_resume(
                resume,
                kind="search",
                graph=self.lut.graph_name,
                mode=self.lut.mode,
                episodes=cfg.episodes,
                seeds=[cfg.seed],
                warm_start=cfg.warm_start,
            )
            # The flat arrays must hold the checkpointed Q state before
            # the runner mirrors them at construction.
            ckpt_mod.restore_seed_arrays(resume["seeds"][0], qtable)
        elif cfg.warm_start != "off" and self.prior is not None:
            # Warm start: seed the flat arrays before the runner
            # mirrors them (same ordering constraint as resume).  A
            # resumed run never re-applies the prior — the snapshot's
            # Q block already carries it.
            values = self.prior.prior_for(self.lut, cfg.discount)
            if values is not None:
                qtable.load_prior(values)
        runner = make_runner(
            self.engine,
            qtable,
            idx.q_parent,
            replay_enabled=cfg.replay_enabled,
            replay_capacity=cfg.replay_capacity,
            backend=resolve_backend(cfg.kernel),
        )
        stream = RngStream(cfg.seed, "qsdnn", self.lut.graph_name, self.lut.mode)
        policy_rng = stream.child("policy")
        replay_rng = stream.child("replay")

        shaping = cfg.reward_shaping
        track_curve = cfg.track_curve
        epsilon_for = cfg.epsilon.epsilon_for
        action_counts = self._action_counts
        draw_replay_order = runner.draw_replay_order

        best_total = np.inf
        best_choices = None
        curve: list[float] = []
        epsilon_trace: list[float] = []
        start_episode = 0
        elapsed_s = 0.0
        if resume is not None:
            snap = resume["seeds"][0]
            runner.import_ring(snap["ring"])
            ckpt_mod.set_rng_state(policy_rng, snap["policy_rng"])
            ckpt_mod.set_rng_state(replay_rng, snap["replay_rng"])
            best_total = snap["best_total"]
            best_choices = snap["best_choices"]
            curve = list(snap["curve"])
            epsilon_trace = list(resume["epsilon_trace"])
            start_episode = int(resume["episode"])
            elapsed_s = float(resume.get("elapsed_s", 0.0))
        started = time.perf_counter()

        for episode in range(start_episode, cfg.episodes):
            epsilon = epsilon_for(episode)
            # -- the episode's randomness, from the usual named streams
            if epsilon >= 1.0:
                explore = None
                explored = policy_rng.integers(0, action_counts)
            elif epsilon <= 0.0:
                explore = None
                explored = None
            else:
                explore = policy_rng.random(num_layers) < epsilon
                explored = policy_rng.integers(0, action_counts)
            perm = draw_replay_order(replay_rng)
            # -- one kernel-fused episode: rollout + eq. (2) + replay
            if shaping:
                costs = runner.episode(explore, explored, perm)
                total = float(costs.sum())
            else:
                # The terminal reward needs the episode total, so the
                # rollout/pricing and learning halves run as two calls.
                costs = runner.rollout_price(explore, explored)
                total = float(costs.sum())
                rewards = np.zeros(num_layers, dtype=np.float64)
                rewards[num_layers - 1] = -total
                runner.learn(rewards, perm)
            if total < best_total:
                best_total = total
                best_choices = runner.snapshot()
            if track_curve:
                curve.append(total)
                epsilon_trace.append(epsilon)
            # -- anytime checkpoint (episode boundary; draws no RNG)
            if (
                checkpoint_every
                and on_checkpoint is not None
                and (episode + 1) % checkpoint_every == 0
                and episode + 1 < cfg.episodes
            ):
                snapshot = ckpt_mod.build_checkpoint(
                    kind="search",
                    graph=self.lut.graph_name,
                    mode=self.lut.mode,
                    episodes=cfg.episodes,
                    episode=episode + 1,
                    kernel=cfg.kernel,
                    elapsed_s=elapsed_s + (time.perf_counter() - started),
                    epsilon_trace=epsilon_trace,
                    warm_start=cfg.warm_start,
                    seed_snaps=[
                        ckpt_mod.seed_snapshot(
                            cfg.seed,
                            qtable,
                            runner,
                            policy_rng,
                            replay_rng,
                            best_total,
                            best_choices,
                            curve,
                        )
                    ],
                )
                if on_checkpoint(snapshot) is False:
                    raise PreemptedError(snapshot)

        runner.finalize()
        assert best_choices is not None
        best_choices = np.asarray(best_choices, dtype=np.int64)
        if cfg.polish_sweeps > 0:
            best_choices, best_total = coordinate_descent(
                self.engine, best_choices, max_sweeps=cfg.polish_sweeps
            )
        greedy_ms = self.engine.price(qtable.greedy_rollout(parents=idx.q_parent))
        wall = elapsed_s + (time.perf_counter() - started)

        return SearchResult(
            graph_name=self.lut.graph_name,
            method="qs-dnn",
            best_assignments=self.engine.assignments(best_choices),
            best_ms=float(best_total),
            episodes=cfg.episodes,
            curve_ms=curve,
            epsilon_trace=epsilon_trace,
            wall_clock_s=wall,
            config=cfg,
            greedy_ms=float(greedy_ms),
            kernel_backend=runner.backend,
            warm_start=cfg.warm_start,
        )
