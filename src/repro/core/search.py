"""QS-DNN's search phase: Algorithm 1 of the paper.

Per episode the agent walks the network in topological order choosing a
primitive per layer with an epsilon-greedy policy over the Q table.
Rewards are shaped: each layer receives minus its own LUT latency, with
any compatibility penalties on its incoming edges charged to it (paper
§IV-C and §V-B: "If any incompatibility has been found between two
layers, the extra penalty is added to the inference time of the latter
layer").  After the rollout every transition is learned online (eq. 2)
and pushed to the replay buffer, which is then replayed in full.

Branch handling: the Q state chain follows topological order, but the
reward of a layer sums the penalty matrices of *all* its graph
predecessors — so residual joins and inception branches price their
conversions exactly, even though the MDP sees a linear state sequence
(the paper's Fig. 3 "exceptions and branches are handled").
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SearchConfig
from repro.core.polish import coordinate_descent
from repro.core.qtable import QTable
from repro.core.replay import ReplayBuffer, Transition
from repro.core.result import SearchResult
from repro.engine.lut import IndexedLUT, LatencyTable
from repro.utils.rng import RngStream


class QSDNNSearch:
    """The RL-based search engine over a profiled latency table."""

    def __init__(self, lut: LatencyTable, config: SearchConfig | None = None) -> None:
        self.lut = lut
        self.config = config or SearchConfig()
        self.indexed = lut.indexed()
        self._num_layers = len(self.indexed)

    # -- episode mechanics -----------------------------------------------------

    def _rollout(
        self, qtable: QTable, epsilon: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Sample one episode; returns (choices, rows, costs, total).

        ``rows[i]`` is the Q-state row used when deciding layer i: the
        episode's choice at layer i's primary graph predecessor (0 for
        virtual-start layers).
        """
        idx = self.indexed
        choices = np.empty(self._num_layers, dtype=np.int64)
        rows = np.empty(self._num_layers, dtype=np.int64)
        costs = np.empty(self._num_layers, dtype=np.float64)
        for i in range(self._num_layers):
            parent = idx.q_parent[i]
            row = 0 if parent < 0 else int(choices[parent])
            rows[i] = row
            n = idx.num_actions[i]
            if epsilon > 0.0 and rng.random() < epsilon:
                action = int(rng.integers(n))
            else:
                action = qtable.greedy_action(i, row)
            choices[i] = action
            # Layer cost: own time + penalties on incoming edges
            # (predecessors are already decided in topological order).
            cost = idx.times[i][action]
            for pred_layer, edge_idx in idx.incoming[i]:
                cost += idx.edge_matrices[edge_idx][choices[pred_layer], action]
            costs[i] = cost
        return choices, rows, costs, float(costs.sum())

    def _learn_episode(
        self,
        qtable: QTable,
        replay: ReplayBuffer | None,
        choices: np.ndarray,
        rows: np.ndarray,
        costs: np.ndarray,
        total: float,
        rng: np.random.Generator,
    ) -> None:
        """Online eq. 2 updates for the episode, then a full replay pass."""
        shaping = self.config.reward_shaping
        last = self._num_layers - 1
        for i in range(self._num_layers):
            action = int(choices[i])
            row = int(rows[i])
            next_row = int(rows[i + 1]) if i < last else 0
            if shaping:
                reward = -float(costs[i])
            else:
                reward = -total if i == last else 0.0
            qtable.update(i, row, action, reward, next_row)
            if replay is not None:
                replay.push(Transition(i, row, action, reward, next_row))
        if replay is not None:
            replay.replay(qtable, rng)

    # -- the search (Algorithm 1) --------------------------------------------------

    def run(self) -> SearchResult:
        """Run the full epsilon-schedule search; returns the best result."""
        cfg = self.config
        idx = self.indexed
        row_sizes = [
            1 if parent < 0 else int(idx.num_actions[parent])
            for parent in idx.q_parent
        ]
        qtable = QTable(
            list(idx.num_actions),
            cfg.learning_rate,
            cfg.discount,
            row_sizes=row_sizes,
            first_visit_bootstrap=cfg.first_visit_bootstrap,
        )
        replay = ReplayBuffer(cfg.replay_capacity) if cfg.replay_enabled else None
        stream = RngStream(cfg.seed, "qsdnn", self.lut.graph_name, self.lut.mode)
        policy_rng = stream.child("policy")
        replay_rng = stream.child("replay")

        best_total = np.inf
        best_choices: np.ndarray | None = None
        curve: list[float] = []
        epsilon_trace: list[float] = []
        started = time.perf_counter()

        for episode in range(cfg.episodes):
            epsilon = cfg.epsilon.epsilon_for(episode)
            choices, rows, costs, total = self._rollout(qtable, epsilon, policy_rng)
            self._learn_episode(
                qtable, replay, choices, rows, costs, total, replay_rng
            )
            if total < best_total:
                best_total = total
                best_choices = choices.copy()
            if cfg.track_curve:
                curve.append(total)
                epsilon_trace.append(epsilon)

        assert best_choices is not None
        if cfg.polish_sweeps > 0:
            best_choices, best_total = coordinate_descent(
                idx, best_choices, max_sweeps=cfg.polish_sweeps
            )
        greedy_choices = np.array(
            qtable.greedy_rollout(parents=idx.q_parent), dtype=np.int64
        )
        greedy_ms = idx.total_ms(greedy_choices)
        wall = time.perf_counter() - started

        return SearchResult(
            graph_name=self.lut.graph_name,
            method="qs-dnn",
            best_assignments=idx.assignments(best_choices),
            best_ms=float(best_total),
            episodes=cfg.episodes,
            curve_ms=curve,
            epsilon_trace=epsilon_trace,
            wall_clock_s=wall,
            config=cfg,
            greedy_ms=float(greedy_ms),
        )
