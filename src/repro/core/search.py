"""QS-DNN's search phase: Algorithm 1 of the paper.

Per episode the agent walks the network in topological order choosing a
primitive per layer with an epsilon-greedy policy over the Q table.
Rewards are shaped: each layer receives minus its own LUT latency, with
any compatibility penalties on its incoming edges charged to it (paper
§IV-C and §V-B: "If any incompatibility has been found between two
layers, the extra penalty is added to the inference time of the latter
layer").  After the rollout every transition is learned online (eq. 2)
and pushed to the replay buffer, which is then replayed in full.

Branch handling: the Q state chain follows topological order, but the
reward of a layer sums the penalty matrices of *all* its graph
predecessors — so residual joins and inception branches price their
conversions exactly, even though the MDP sees a linear state sequence
(the paper's Fig. 3 "exceptions and branches are handled").

All pricing — episode costs, the shaped rewards, the greedy-policy
total — is delegated to the :class:`~repro.engine.pricing.CostEngine`;
the rollout loop only makes decisions.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SearchConfig
from repro.core.polish import coordinate_descent
from repro.core.qtable import QTable
from repro.core.replay import ReplayBuffer
from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.engine.pricing import CostEngine
from repro.utils.rng import RngStream


class QSDNNSearch:
    """The RL-based search engine over a profiled latency table."""

    def __init__(self, lut: LatencyTable, config: SearchConfig | None = None) -> None:
        self.lut = lut
        self.config = config or SearchConfig()
        self.indexed = lut.indexed()
        self.engine = self.indexed.engine()
        self._num_layers = len(self.indexed)
        self._action_counts = np.asarray(self.indexed.num_actions, dtype=np.int64)

    # -- episode mechanics -----------------------------------------------------

    def _rollout(
        self, qtable: QTable, epsilon: float, rng: np.random.Generator
    ) -> tuple[list[int], list[int], np.ndarray, float]:
        """Sample one episode; returns (choices, rows, costs, total).

        ``rows[i]`` is the Q-state row used when deciding layer i: the
        episode's choice at layer i's primary graph predecessor (0 for
        virtual-start layers).  The decision loop is sequential (each
        epsilon-greedy pick conditions on its parent's choice), but all
        of the episode's random numbers are drawn in two vectorized
        calls up front, and the episode's cost vector is priced in one
        engine call.
        """
        num_layers = self._num_layers
        q_parent = self.indexed.q_parent
        greedy_action = qtable.greedy_action
        choices: list[int] = [0] * num_layers
        rows: list[int] = [0] * num_layers
        if epsilon >= 1.0:
            # Full exploration: every decision is a uniform draw.
            explored = rng.integers(0, self._action_counts).tolist()
            for i in range(num_layers):
                parent = q_parent[i]
                rows[i] = 0 if parent < 0 else choices[parent]
                choices[i] = explored[i]
        elif epsilon <= 0.0:
            # Full exploitation: no randomness at all.
            for i in range(num_layers):
                parent = q_parent[i]
                row = 0 if parent < 0 else choices[parent]
                rows[i] = row
                choices[i] = greedy_action(i, row)
        else:
            explore = (rng.random(num_layers) < epsilon).tolist()
            explored = rng.integers(0, self._action_counts).tolist()
            for i in range(num_layers):
                parent = q_parent[i]
                row = 0 if parent < 0 else choices[parent]
                rows[i] = row
                choices[i] = explored[i] if explore[i] else greedy_action(i, row)
        # Layer cost: own time + penalties on incoming edges, charged
        # to the consumer (paper §V-B) — one vectorized pricing call.
        costs = self.engine.layer_costs(choices)
        return choices, rows, costs, float(costs.sum())

    def _learn_episode(
        self,
        qtable: QTable,
        replay: ReplayBuffer | None,
        choices: list[int],
        rows: list[int],
        costs: np.ndarray,
        total: float,
        rng: np.random.Generator,
    ) -> None:
        """Online eq. 2 updates for the episode, then a full replay pass."""
        last = self._num_layers - 1
        if self.config.reward_shaping:
            rewards = (-costs).tolist()
        else:
            rewards = [0.0] * last + [-total]
        update = qtable.update
        push = replay.push_step if replay is not None else None
        for i in range(self._num_layers):
            row = rows[i]
            next_row = rows[i + 1] if i < last else 0
            reward = rewards[i]
            update(i, row, choices[i], reward, next_row)
            if push is not None:
                push(i, row, choices[i], reward, next_row)
        if replay is not None:
            replay.replay(qtable, rng)

    # -- the search (Algorithm 1) --------------------------------------------------

    def run(self) -> SearchResult:
        """Run the full epsilon-schedule search; returns the best result."""
        cfg = self.config
        idx = self.indexed
        row_sizes = [
            1 if parent < 0 else int(idx.num_actions[parent])
            for parent in idx.q_parent
        ]
        qtable = QTable(
            list(idx.num_actions),
            cfg.learning_rate,
            cfg.discount,
            row_sizes=row_sizes,
            first_visit_bootstrap=cfg.first_visit_bootstrap,
        )
        replay = ReplayBuffer(cfg.replay_capacity) if cfg.replay_enabled else None
        stream = RngStream(cfg.seed, "qsdnn", self.lut.graph_name, self.lut.mode)
        policy_rng = stream.child("policy")
        replay_rng = stream.child("replay")

        best_total = np.inf
        best_choices: list[int] | np.ndarray | None = None
        curve: list[float] = []
        epsilon_trace: list[float] = []
        epsilon_for = cfg.epsilon.epsilon_for
        track_curve = cfg.track_curve
        started = time.perf_counter()

        for episode in range(cfg.episodes):
            epsilon = epsilon_for(episode)
            choices, rows, costs, total = self._rollout(qtable, epsilon, policy_rng)
            self._learn_episode(
                qtable, replay, choices, rows, costs, total, replay_rng
            )
            if total < best_total:
                best_total = total
                best_choices = choices
            if track_curve:
                curve.append(total)
                epsilon_trace.append(epsilon)

        assert best_choices is not None
        best_choices = np.asarray(best_choices, dtype=np.int64)
        if cfg.polish_sweeps > 0:
            best_choices, best_total = coordinate_descent(
                self.engine, best_choices, max_sweeps=cfg.polish_sweeps
            )
        greedy_ms = self.engine.price(qtable.greedy_rollout(parents=idx.q_parent))
        wall = time.perf_counter() - started

        return SearchResult(
            graph_name=self.lut.graph_name,
            method="qs-dnn",
            best_assignments=self.engine.assignments(best_choices),
            best_ms=float(best_total),
            episodes=cfg.episodes,
            curve_ms=curve,
            epsilon_trace=epsilon_trace,
            wall_clock_s=wall,
            config=cfg,
            greedy_ms=float(greedy_ms),
        )
