"""Cross-entropy method over per-layer categorical distributions.

A strong population-based baseline for the primitive-selection space:
maintain one categorical distribution per layer, sample a population of
full schedules, price the whole population with a single
:meth:`~repro.engine.pricing.CostEngine.price_batch` call, and move
each layer's distribution toward the empirical frequencies of the
elite fraction (smoothed, floored so no primitive becomes unreachable).

Like the paper's RS comparison the budget is counted in *schedule
evaluations*, so ``episodes=1000`` is apples-to-apples with a
1000-episode QS-DNN run.  The reported best is the best schedule seen
anywhere in the run, refined by the same coordinate-descent polish the
RL search applies (disable with ``polish_sweeps=0``).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.core.polish import coordinate_descent
from repro.core.population import (
    categorical_sample,
    elite_distribution,
    elite_indices,
    floor_and_renormalize,
    uniform_distribution,
)
from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.utils.rng import derive_rng

#: Called with each priced generation: ``(population, totals_ms)``.
PopulationObserver = Callable[[np.ndarray, np.ndarray], None]


def cross_entropy_method(
    lut: LatencyTable,
    episodes: int = 1000,
    seed: int = 0,
    population: int = 64,
    elite_frac: float = 0.125,
    smoothing: float = 0.7,
    min_prob: float = 1e-3,
    polish_sweeps: int = 2,
    track_curve: bool = True,
    on_population: PopulationObserver | None = None,
) -> SearchResult:
    """Run CEM for ``episodes`` schedule evaluations on one LUT."""
    if episodes < 1:
        raise ConfigError(f"episodes must be >= 1, got {episodes}")
    if population < 2:
        raise ConfigError(f"population must be >= 2, got {population}")
    if not 0.0 < elite_frac <= 1.0:
        raise ConfigError(f"elite_frac must be in (0, 1], got {elite_frac}")
    if not 0.0 < smoothing <= 1.0:
        raise ConfigError(f"smoothing must be in (0, 1], got {smoothing}")
    if min_prob < 0.0:
        raise ConfigError(f"min_prob must be >= 0, got {min_prob}")

    engine = lut.engine()
    counts = engine.num_actions
    rng = derive_rng(seed, "cem", lut.graph_name, lut.mode)
    probs = uniform_distribution(counts)

    best_total = np.inf
    best_choices: np.ndarray | None = None
    curve: list[float] = []
    started = time.perf_counter()

    remaining = episodes
    while remaining > 0:
        batch_size = min(population, remaining)
        batch = categorical_sample(probs, counts, rng, batch_size)
        totals = engine.price_batch(batch)
        if on_population is not None:
            on_population(batch, totals)
        winner = int(np.argmin(totals))
        if totals[winner] < best_total:
            best_total = float(totals[winner])
            best_choices = batch[winner].copy()
        if track_curve:
            curve.extend(totals.tolist())
        # Elite re-estimation on full generations only: a truncated
        # trailing batch still counts toward the budget and the best,
        # but is too small to re-fit the distribution from.
        if batch_size == population:
            elite = elite_indices(totals, max(1, round(population * elite_frac)))
            freq = elite_distribution(batch, counts, elite)
            probs = floor_and_renormalize(
                smoothing * freq + (1.0 - smoothing) * probs, counts, min_prob
            )
        remaining -= batch_size

    assert best_choices is not None
    if polish_sweeps > 0:
        best_choices, best_total = coordinate_descent(
            engine, best_choices, max_sweeps=polish_sweeps
        )
    return SearchResult(
        graph_name=lut.graph_name,
        method="cem",
        best_assignments=engine.assignments(best_choices),
        best_ms=float(best_total),
        episodes=episodes,
        curve_ms=curve,
        wall_clock_s=time.perf_counter() - started,
    )
