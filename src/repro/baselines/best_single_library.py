"""Single-library schedules and the Best Single Library (Table II).

Table II: "Results correspond to most performing libraries employing
their fastest primitive" — for each library, every layer runs the
library's fastest profiled primitive where the library applies and falls
back to Vanilla elsewhere (the same substitution rule as profiling).
The BSL column is the best of these — "usually ... the stakeholders
selecting a single good-performing library" (paper §I).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.lut import LatencyTable
from repro.errors import ConfigError


@dataclass(frozen=True)
class SingleLibraryResult:
    """One library's whole-network result."""

    library: str
    assignments: dict[str, str]
    total_ms: float


def _vanilla_uid(lut: LatencyTable, layer: str) -> str:
    vans = {u for u in lut.candidates[layer] if lut.meta[u].library == "vanilla"}
    if not vans:
        raise ConfigError(f"layer {layer!r} has no vanilla fallback in the LUT")
    return lut.best_uid(layer, within=vans)


def single_library_schedule(lut: LatencyTable, library: str) -> SingleLibraryResult:
    """The fastest-primitive schedule of one library (+ Vanilla fallback)."""
    assignments: dict[str, str] = {}
    for layer in lut.layers:
        lib_uids = {
            u for u in lut.candidates[layer] if lut.meta[u].library == library
        }
        if lib_uids:
            assignments[layer] = lut.best_uid(layer, within=lib_uids)
        else:
            assignments[layer] = _vanilla_uid(lut, layer)
    engine = lut.engine()
    return SingleLibraryResult(
        library=library,
        assignments=assignments,
        total_ms=engine.price(engine.choices_of(assignments)),
    )


def single_library_results(lut: LatencyTable) -> list[SingleLibraryResult]:
    """All per-library results, sorted fastest first."""
    libraries = sorted({m.library for m in lut.meta.values()})
    results = [single_library_schedule(lut, lib) for lib in libraries]
    return sorted(results, key=lambda r: r.total_ms)


def best_single_library(lut: LatencyTable,
                        exclude_vanilla: bool = False) -> SingleLibraryResult:
    """The BSL: fastest single-library schedule.

    ``exclude_vanilla`` removes the all-Vanilla row from contention (it
    never wins in practice, but excluding it keeps the semantics of
    'best *accelerated* library' explicit where needed).
    """
    results = single_library_results(lut)
    if exclude_vanilla:
        results = [r for r in results if r.library != "vanilla"]
    if not results:
        raise ConfigError("no libraries to choose a BSL from")
    return results[0]
