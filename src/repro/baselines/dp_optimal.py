"""Exact optimum for chain networks by dynamic programming.

For a chain, total latency decomposes over consecutive pairs, so the
optimal configuration is a shortest path through the layer/primitive
trellis — computable exactly in O(L * N_I^2).  Chains cover LeNet-5,
AlexNet, VGG, Tiny-YOLO and the Fig. 1 toy net; branchy graphs
(GoogLeNet, ResNet, SqueezeNet) need the PBQP solver instead.

This is the verification oracle: on chains, QS-DNN's converged result
must match this optimum (tests enforce it).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.engine.pricing import CostEngine
from repro.errors import ConfigError


def is_chain(lut: LatencyTable) -> bool:
    """True when every edge connects topologically adjacent layers
    and no layer has more than one predecessor/successor."""
    index = {name: i for i, name in enumerate(lut.layers)}
    seen_producers: set[str] = set()
    seen_consumers: set[str] = set()
    for producer, consumer in lut.edges:
        if index[consumer] != index[producer] + 1:
            return False
        if producer in seen_producers or consumer in seen_consumers:
            return False
        seen_producers.add(producer)
        seen_consumers.add(consumer)
    return True


def chain_dp(lut: LatencyTable) -> SearchResult:
    """Exact minimum-latency configuration of a chain network."""
    if not is_chain(lut):
        raise ConfigError(
            f"{lut.graph_name} is not a chain; use the PBQP solver instead"
        )
    engine: CostEngine = lut.engine()
    num_layers = len(engine)
    started = time.perf_counter()

    # Edge matrix between consecutive layers (zeros where no edge exists,
    # e.g. between the input layer's consumer and an isolated head).
    def pair_matrix(i: int) -> np.ndarray:
        """Penalty matrix between consecutive layers i and i+1."""
        for (producer, consumer), matrix in zip(engine.edges, engine.edge_matrices):
            if (
                engine.layer_index[producer] == i
                and engine.layer_index[consumer] == i + 1
            ):
                return matrix
        return np.zeros(
            (engine.num_actions[i], engine.num_actions[i + 1]), dtype=np.float64
        )

    # Forward pass: cost[i][a] = cheapest way to finish layers 0..i with
    # layer i using primitive a.
    cost = engine.times[0].copy()
    backptr: list[np.ndarray] = []
    for i in range(num_layers - 1):
        trans = cost[:, None] + pair_matrix(i)  # (n_i, n_{i+1})
        best_prev = np.argmin(trans, axis=0)
        backptr.append(best_prev)
        cost = trans[best_prev, np.arange(trans.shape[1])] + engine.times[i + 1]

    # Backward pass.
    choices = np.empty(num_layers, dtype=np.int64)
    choices[-1] = int(np.argmin(cost))
    for i in range(num_layers - 2, -1, -1):
        choices[i] = backptr[i][choices[i + 1]]

    return SearchResult(
        graph_name=lut.graph_name,
        method="chain-dp",
        best_assignments=engine.assignments(choices),
        best_ms=engine.price(choices),
        episodes=1,
        curve_ms=[],
        wall_clock_s=time.perf_counter() - started,
    )
