"""Partitioned Boolean Quadratic Programming solver.

Anderson & Gregg [14] formulate DNN primitive selection as a PBQP
instance: each layer is a node with a cost vector (its primitive times),
each graph edge carries a cost matrix (the compatibility penalties), and
the objective is the minimum total.  The paper positions QS-DNN against
this approach, so we implement it as a baseline.

The solver applies the classic reductions:

* **R0** — isolated node: pick its cheapest option.
* **RI** — degree-1 node: fold its costs into the neighbor's vector.
* **RII** — degree-2 node: fold its costs into a (possibly new) edge
  between its two neighbors.
* **RN** — heuristic for degree >= 3: fix the locally best option and
  propagate (this step makes the solver near-optimal rather than exact
  on branchy graphs; on chains RI alone makes it exact).

Decisions are back-propagated in reverse elimination order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable


@dataclass
class _Elimination:
    """One eliminated node plus how to recover its choice."""

    node: int
    kind: str  # "r0" | "ri" | "rii" | "rn"
    neighbors: tuple[int, ...]
    #: r0/rn: fixed choice.  ri: choice per neighbor option (1-D array).
    #: rii: choice per (first, second) neighbor option pair (2-D array).
    decision: object


class PBQPSolver:
    """Solve one PBQP instance built from a latency table.

    The instance *is* the :class:`~repro.engine.pricing.CostEngine`'s
    representation — per-layer cost vectors plus per-edge cost matrices
    — consumed directly from the compiled engine.
    """

    def __init__(self, lut: LatencyTable) -> None:
        self.lut = lut
        self.engine = lut.engine()

    # -- graph construction -------------------------------------------------

    def _build(self) -> tuple[list[np.ndarray], dict[int, dict[int, np.ndarray]]]:
        """Cost vectors and adjacency; parallel edges are pre-merged."""
        engine = self.engine
        vectors = [t.copy() for t in engine.times]
        adjacency: dict[int, dict[int, np.ndarray]] = {
            i: {} for i in range(len(vectors))
        }
        for (producer, consumer), matrix in zip(engine.edges, engine.edge_matrices):
            u = engine.layer_index[producer]
            v = engine.layer_index[consumer]
            self._add_edge(adjacency, u, v, matrix)
        return vectors, adjacency

    @staticmethod
    def _add_edge(
        adjacency: dict[int, dict[int, np.ndarray]],
        u: int,
        v: int,
        matrix_uv: np.ndarray,
    ) -> None:
        """Insert/merge an edge, keeping both orientations in sync."""
        if v in adjacency[u]:
            adjacency[u][v] = adjacency[u][v] + matrix_uv
            adjacency[v][u] = adjacency[u][v].T
        else:
            adjacency[u][v] = matrix_uv.copy()
            adjacency[v][u] = adjacency[u][v].T

    # -- reductions --------------------------------------------------------------

    def solve(self) -> SearchResult:
        """Run reductions + back-propagation; returns the solution."""
        started = time.perf_counter()
        vectors, adjacency = self._build()
        alive = set(range(len(vectors)))
        eliminations: list[_Elimination] = []

        while alive:
            node = self._pick_node(alive, adjacency)
            degree = len(adjacency[node])
            if degree == 0:
                eliminations.append(self._reduce_r0(node, vectors))
            elif degree == 1:
                eliminations.append(self._reduce_ri(node, vectors, adjacency))
            elif degree == 2:
                eliminations.append(self._reduce_rii(node, vectors, adjacency))
            else:
                eliminations.append(self._reduce_rn(node, vectors, adjacency))
            alive.remove(node)

        choices = self._backpropagate(eliminations, len(vectors))
        return SearchResult(
            graph_name=self.lut.graph_name,
            method="pbqp",
            best_assignments=self.engine.assignments(choices),
            best_ms=self.engine.price(choices),
            episodes=1,
            curve_ms=[],
            wall_clock_s=time.perf_counter() - started,
        )

    @staticmethod
    def _pick_node(alive: set[int], adjacency: dict[int, dict[int, np.ndarray]]) -> int:
        """Prefer the lowest-degree node (R0 < RI < RII < RN)."""
        return min(alive, key=lambda n: (len(adjacency[n]), n))

    @staticmethod
    def _reduce_r0(node: int, vectors: list[np.ndarray]) -> _Elimination:
        return _Elimination(
            node=node,
            kind="r0",
            neighbors=(),
            decision=int(np.argmin(vectors[node])),
        )

    def _reduce_ri(
        self,
        node: int,
        vectors: list[np.ndarray],
        adjacency: dict[int, dict[int, np.ndarray]],
    ) -> _Elimination:
        (neighbor, matrix) = next(iter(adjacency[node].items()))
        # matrix is oriented (node_choice, neighbor_choice).
        combined = vectors[node][:, None] + matrix  # (n_node, n_neighbor)
        decision = np.argmin(combined, axis=0)  # best node choice per neighbor
        vectors[neighbor] = vectors[neighbor] + combined[
            decision, np.arange(combined.shape[1])
        ]
        self._drop_node(node, adjacency)
        return _Elimination(
            node=node, kind="ri", neighbors=(neighbor,), decision=decision
        )

    def _reduce_rii(
        self,
        node: int,
        vectors: list[np.ndarray],
        adjacency: dict[int, dict[int, np.ndarray]],
    ) -> _Elimination:
        (v, matrix_v), (w, matrix_w) = sorted(adjacency[node].items())
        # combined[a, b, c] = c_node[a] + C_nv[a, b] + C_nw[a, c]
        combined = (
            vectors[node][:, None, None]
            + matrix_v[:, :, None]
            + matrix_w[:, None, :]
        )
        decision = np.argmin(combined, axis=0)  # (n_v, n_w)
        delta = np.min(combined, axis=0)  # folded into edge (v, w)
        self._drop_node(node, adjacency)
        self._add_edge(adjacency, v, w, delta)
        return _Elimination(
            node=node, kind="rii", neighbors=(v, w), decision=decision
        )

    def _reduce_rn(
        self,
        node: int,
        vectors: list[np.ndarray],
        adjacency: dict[int, dict[int, np.ndarray]],
    ) -> _Elimination:
        # Heuristic: score each option by its vector cost plus the best
        # reachable cost over every incident edge.
        score = vectors[node].copy()
        for neighbor, matrix in adjacency[node].items():
            score = score + np.min(matrix + vectors[neighbor][None, :], axis=1)
        choice = int(np.argmin(score))
        for neighbor, matrix in list(adjacency[node].items()):
            vectors[neighbor] = vectors[neighbor] + matrix[choice, :]
        self._drop_node(node, adjacency)
        return _Elimination(node=node, kind="rn", neighbors=(), decision=choice)

    @staticmethod
    def _drop_node(node: int, adjacency: dict[int, dict[int, np.ndarray]]) -> None:
        for neighbor in list(adjacency[node]):
            del adjacency[neighbor][node]
        adjacency[node].clear()

    # -- back-propagation -----------------------------------------------------------

    @staticmethod
    def _backpropagate(
        eliminations: list[_Elimination], num_nodes: int
    ) -> np.ndarray:
        choices = np.full(num_nodes, -1, dtype=np.int64)
        for elim in reversed(eliminations):
            if elim.kind in ("r0", "rn"):
                choices[elim.node] = elim.decision  # type: ignore[assignment]
            elif elim.kind == "ri":
                (neighbor,) = elim.neighbors
                choices[elim.node] = elim.decision[choices[neighbor]]  # type: ignore[index]
            else:  # rii
                v, w = elim.neighbors
                choices[elim.node] = elim.decision[  # type: ignore[index]
                    choices[v], choices[w]
                ]
        if (choices < 0).any():
            raise AssertionError("PBQP back-propagation left nodes unassigned")
        return choices


def pbqp_solve(lut: LatencyTable) -> SearchResult:
    """Convenience wrapper: solve a LUT's selection problem with PBQP."""
    return PBQPSolver(lut).solve()
