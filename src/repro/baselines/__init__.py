"""Baselines the paper compares against (or that verify the search).

* :func:`random_search` — the paper's RS comparison (§VI-B, Fig. 5).
* :func:`best_single_library` / :func:`single_library_results` — Table
  II's per-library rows and the BSL column.
* :func:`greedy_per_layer` — the Fig. 1 trap: fastest primitive per
  layer, penalties ignored during selection.
* :func:`brute_force` — exact optimum by enumeration (tiny nets only).
* :func:`chain_dp` — exact optimum for chain networks via dynamic
  programming (a verification oracle for the search).
* :class:`PBQPSolver` — partitioned boolean quadratic programming, the
  approach of Anderson & Gregg [14] the paper positions itself against.
* :func:`simulated_annealing` — a classic non-learning local-search DSE
  baseline at an evaluation-matched budget.
* :func:`cross_entropy_method` / :func:`genetic_search` —
  population-based baselines that price whole generations per
  :meth:`~repro.engine.pricing.CostEngine.price_batch` call.
"""

from repro.baselines.annealing import simulated_annealing
from repro.baselines.cem import cross_entropy_method
from repro.baselines.genetic import genetic_search
from repro.baselines.random_search import random_search
from repro.baselines.best_single_library import (
    SingleLibraryResult,
    best_single_library,
    single_library_results,
)
from repro.baselines.greedy import greedy_per_layer
from repro.baselines.brute_force import brute_force
from repro.baselines.dp_optimal import chain_dp, is_chain
from repro.baselines.pbqp import PBQPSolver, pbqp_solve

__all__ = [
    "random_search",
    "simulated_annealing",
    "cross_entropy_method",
    "genetic_search",
    "SingleLibraryResult",
    "best_single_library",
    "single_library_results",
    "greedy_per_layer",
    "brute_force",
    "chain_dp",
    "is_chain",
    "PBQPSolver",
    "pbqp_solve",
]
