"""Exact optimum by exhaustive enumeration.

Only feasible for tiny design spaces (the Fig. 1 toy network:
~12^3 configurations); used as the ground truth that QS-DNN and the
other exact/near-exact baselines are verified against.
"""

from __future__ import annotations

import itertools
import math
import time

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError

#: Refuse to enumerate spaces larger than this.
MAX_CONFIGURATIONS = 2_000_000

#: Configurations priced per batch call (bounds peak memory).
CHUNK_CONFIGURATIONS = 65_536


def brute_force(lut: LatencyTable, limit: int = MAX_CONFIGURATIONS) -> SearchResult:
    """Enumerate every configuration; returns the global optimum.

    Enumeration is chunked and each chunk priced with one vectorized
    :meth:`~repro.engine.pricing.CostEngine.price_batch` call.  Raises
    :class:`~repro.errors.ConfigError` when the space exceeds
    ``limit`` — use :func:`~repro.baselines.dp_optimal.chain_dp` or the
    PBQP solver for real networks.
    """
    engine = lut.engine()
    size = math.prod(int(n) for n in engine.num_actions)
    if size > limit:
        raise ConfigError(
            f"design space of {lut.graph_name} has {size} configurations, "
            f"exceeding the brute-force limit of {limit}"
        )
    best_total = np.inf
    best_choices: np.ndarray | None = None
    started = time.perf_counter()
    combos = itertools.product(*(range(int(n)) for n in engine.num_actions))
    while True:
        chunk = list(itertools.islice(combos, CHUNK_CONFIGURATIONS))
        if not chunk:
            break
        batch = np.array(chunk, dtype=np.int64)
        totals = engine.price_batch(batch)
        winner = int(np.argmin(totals))
        if totals[winner] < best_total:
            best_total = float(totals[winner])
            best_choices = batch[winner].copy()
    assert best_choices is not None
    return SearchResult(
        graph_name=lut.graph_name,
        method="brute-force",
        best_assignments=engine.assignments(best_choices),
        best_ms=engine.price(best_choices),
        episodes=size,
        curve_ms=[],
        wall_clock_s=time.perf_counter() - started,
    )
