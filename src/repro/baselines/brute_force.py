"""Exact optimum by exhaustive enumeration.

Only feasible for tiny design spaces (the Fig. 1 toy network:
~12^3 configurations); used as the ground truth that QS-DNN and the
other exact/near-exact baselines are verified against.
"""

from __future__ import annotations

import itertools
import math
import time

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError

#: Refuse to enumerate spaces larger than this.
MAX_CONFIGURATIONS = 2_000_000


def brute_force(lut: LatencyTable, limit: int = MAX_CONFIGURATIONS) -> SearchResult:
    """Enumerate every configuration; returns the global optimum.

    Raises :class:`~repro.errors.ConfigError` when the space exceeds
    ``limit`` — use :func:`~repro.baselines.dp_optimal.chain_dp` or the
    PBQP solver for real networks.
    """
    idx = lut.indexed()
    size = math.prod(int(n) for n in idx.num_actions)
    if size > limit:
        raise ConfigError(
            f"design space of {lut.graph_name} has {size} configurations, "
            f"exceeding the brute-force limit of {limit}"
        )
    best_total = np.inf
    best_choices: tuple[int, ...] | None = None
    started = time.perf_counter()
    for combo in itertools.product(*(range(n) for n in idx.num_actions)):
        total = idx.total_ms(np.array(combo, dtype=np.int64))
        if total < best_total:
            best_total = total
            best_choices = combo
    assert best_choices is not None
    return SearchResult(
        graph_name=lut.graph_name,
        method="brute-force",
        best_assignments=idx.assignments(np.array(best_choices, dtype=np.int64)),
        best_ms=float(best_total),
        episodes=size,
        curve_ms=[],
        wall_clock_s=time.perf_counter() - started,
    )
