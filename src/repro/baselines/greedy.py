"""Greedy per-layer selection — the local-minimum trap of Fig. 1.

"The problem is not as trivial as to benchmark all primitives
individually and select the fastest for each layer" (paper §IV-A): this
baseline does exactly that, ignoring compatibility penalties while
choosing.  The returned total *includes* the penalties its choices
incur, which is how it lands in Fig. 1's red path.
"""

from __future__ import annotations

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable


def greedy_per_layer(lut: LatencyTable) -> SearchResult:
    """Pick each layer's fastest primitive; pay the penalties afterwards."""
    engine = lut.engine()
    choices = engine.greedy_choices()
    total = engine.price(choices)
    return SearchResult(
        graph_name=lut.graph_name,
        method="greedy-per-layer",
        best_assignments=engine.assignments(choices),
        best_ms=total,
        episodes=1,
        curve_ms=[total],
    )
