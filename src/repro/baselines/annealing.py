"""Simulated annealing over the same LUT objective.

A classic design-space-exploration baseline (widely used in autotuners)
to position QS-DNN against a non-learning local-search method: start
from a random configuration, propose single-layer mutations, accept
worsening moves with probability ``exp(-delta / T)`` under a geometric
cooling schedule.  Each proposal costs one incremental objective
evaluation — the budget is counted in *evaluations* so comparisons
against episode-based searches are apples-to-apples (one episode = one
full-configuration evaluation = L layer evaluations; we grant SA
``episodes * num_layers`` single-layer proposals).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.utils.rng import derive_rng


def _delta_for_move(idx, choices: np.ndarray, layer: int, new_choice: int,
                    touching) -> float:
    """Objective change of flipping one layer's primitive."""
    old_choice = choices[layer]
    delta = idx.times[layer][new_choice] - idx.times[layer][old_choice]
    for edge_idx, other, is_consumer in touching[layer]:
        matrix = idx.edge_matrices[edge_idx]
        if is_consumer:
            delta += matrix[choices[other], new_choice]
            delta -= matrix[choices[other], old_choice]
        else:
            delta += matrix[new_choice, choices[other]]
            delta -= matrix[old_choice, choices[other]]
    return float(delta)


def simulated_annealing(
    lut: LatencyTable,
    episodes: int = 1000,
    seed: int = 0,
    initial_temperature_fraction: float = 0.05,
    final_temperature_fraction: float = 1e-4,
) -> SearchResult:
    """Anneal for an evaluation budget equivalent to ``episodes``."""
    if episodes < 1:
        raise ConfigError(f"episodes must be >= 1, got {episodes}")
    from repro.core.polish import _incident_edges

    idx = lut.indexed()
    rng = derive_rng(seed, "annealing", lut.graph_name, lut.mode)
    num_layers = len(idx)
    touching = _incident_edges(idx)
    started = time.perf_counter()

    choices = np.array(
        [rng.integers(n) for n in idx.num_actions], dtype=np.int64
    )
    current = idx.total_ms(choices)
    best = current
    best_choices = choices.copy()

    steps = episodes * num_layers
    t_start = current * initial_temperature_fraction
    t_end = max(current * final_temperature_fraction, 1e-9)
    cooling = (t_end / t_start) ** (1.0 / max(steps - 1, 1))
    temperature = t_start
    curve: list[float] = []

    for step in range(steps):
        layer = int(rng.integers(num_layers))
        n = idx.num_actions[layer]
        if n > 1:
            new_choice = int(rng.integers(n - 1))
            if new_choice >= choices[layer]:
                new_choice += 1
            delta = _delta_for_move(idx, choices, layer, new_choice, touching)
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                choices[layer] = new_choice
                current += delta
                if current < best:
                    best = current
                    best_choices = choices.copy()
        temperature *= cooling
        if (step + 1) % num_layers == 0:
            curve.append(current)

    # Guard against floating-point drift in the incremental objective.
    best = idx.total_ms(best_choices)
    return SearchResult(
        graph_name=lut.graph_name,
        method="simulated-annealing",
        best_assignments=idx.assignments(best_choices),
        best_ms=float(best),
        episodes=episodes,
        curve_ms=curve,
        wall_clock_s=time.perf_counter() - started,
    )
