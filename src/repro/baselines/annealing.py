"""Simulated annealing over the same LUT objective.

A classic design-space-exploration baseline (widely used in autotuners)
to position QS-DNN against a non-learning local-search method: start
from a random configuration, propose single-layer mutations, accept
worsening moves with probability ``exp(-delta / T)`` under a geometric
cooling schedule.  Each proposal costs one incremental objective
evaluation — the budget is counted in *evaluations* so comparisons
against episode-based searches are apples-to-apples (one episode = one
full-configuration evaluation = L layer evaluations; we grant SA
``episodes * num_layers`` single-layer proposals).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.utils.rng import derive_rng


def simulated_annealing(
    lut: LatencyTable,
    episodes: int = 1000,
    seed: int = 0,
    initial_temperature_fraction: float = 0.05,
    final_temperature_fraction: float = 1e-4,
) -> SearchResult:
    """Anneal for an evaluation budget equivalent to ``episodes``."""
    if episodes < 1:
        raise ConfigError(f"episodes must be >= 1, got {episodes}")
    engine = lut.engine()
    rng = derive_rng(seed, "annealing", lut.graph_name, lut.mode)
    num_layers = len(engine)
    num_actions = [int(n) for n in engine.num_actions]
    delta_ms = engine.delta_ms
    started = time.perf_counter()

    choices = np.array([rng.integers(n) for n in num_actions], dtype=np.int64)
    current = engine.price(choices)
    best = current
    best_choices = choices.copy()

    steps = episodes * num_layers
    t_start = current * initial_temperature_fraction
    t_end = max(current * final_temperature_fraction, 1e-9)
    cooling = (t_end / t_start) ** (1.0 / max(steps - 1, 1))
    temperature = t_start
    curve: list[float] = []

    for step in range(steps):
        layer = int(rng.integers(num_layers))
        n = num_actions[layer]
        if n > 1:
            new_choice = int(rng.integers(n - 1))
            if new_choice >= choices[layer]:
                new_choice += 1
            delta = delta_ms(choices, layer, new_choice)
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                choices[layer] = new_choice
                current += delta
                if current < best:
                    best = current
                    best_choices = choices.copy()
        temperature *= cooling
        if (step + 1) % num_layers == 0:
            curve.append(current)

    # Guard against floating-point drift in the incremental objective.
    best = engine.price(best_choices)
    return SearchResult(
        graph_name=lut.graph_name,
        method="simulated-annealing",
        best_assignments=engine.assignments(best_choices),
        best_ms=float(best),
        episodes=episodes,
        curve_ms=curve,
        wall_clock_s=time.perf_counter() - started,
    )
