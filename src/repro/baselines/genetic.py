"""Genetic algorithm with tournament selection over the LUT objective.

The classic population-based DSE baseline: a population of full
schedules evolves by elitism, tournament selection, uniform crossover
and per-gene resampling mutation.  Every generation is priced with one
:meth:`~repro.engine.pricing.CostEngine.price_batch` call — the GA has
no Python-level per-individual loop anywhere.

The budget is counted in *schedule evaluations* (initial population
included) so ``episodes=1000`` matches a 1000-episode QS-DNN or RS run.
The reported best is the best individual ever priced, refined by the
same coordinate-descent polish the RL search applies.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.cem import PopulationObserver
from repro.core.polish import coordinate_descent
from repro.core.population import (
    elite_indices,
    mutate,
    random_population,
    tournament_select,
    uniform_crossover,
)
from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.utils.rng import derive_rng


def genetic_search(
    lut: LatencyTable,
    episodes: int = 1000,
    seed: int = 0,
    population: int = 64,
    elite: int | None = None,
    tournament: int = 3,
    mutation_rate: float | None = None,
    polish_sweeps: int = 2,
    track_curve: bool = True,
    on_population: PopulationObserver | None = None,
) -> SearchResult:
    """Evolve schedules for ``episodes`` evaluations on one LUT."""
    if episodes < 1:
        raise ConfigError(f"episodes must be >= 1, got {episodes}")
    if population < 2:
        raise ConfigError(f"population must be >= 2, got {population}")
    if elite is None:
        # 1/16th of the population survives unchanged (>= 1).
        elite = max(1, population // 16)
    if not 0 <= elite < population:
        raise ConfigError(
            f"elite must be in [0, {population}), got {elite}"
        )
    if tournament < 1:
        raise ConfigError(f"tournament size must be >= 1, got {tournament}")

    engine = lut.engine()
    counts = engine.num_actions
    num_layers = engine.num_layers
    if mutation_rate is None:
        # ~1.5 resampled genes per offspring, independent of depth.
        mutation_rate = min(1.0, 1.5 / num_layers)
    rng = derive_rng(seed, "genetic", lut.graph_name, lut.mode)

    best_total = np.inf
    best_choices: np.ndarray | None = None
    curve: list[float] = []
    started = time.perf_counter()

    size = min(population, episodes)
    pop = random_population(counts, rng, size)
    fitness = engine.price_batch(pop)
    remaining = episodes - size

    def observe(batch: np.ndarray, totals: np.ndarray) -> None:
        """Track the best schedule seen across priced generations."""
        nonlocal best_total, best_choices
        if on_population is not None:
            on_population(batch, totals)
        winner = int(np.argmin(totals))
        if totals[winner] < best_total:
            best_total = float(totals[winner])
            best_choices = batch[winner].copy()
        if track_curve:
            curve.extend(totals.tolist())

    observe(pop, fitness)
    while remaining > 0:
        offspring_count = min(max(population - elite, 1), remaining)
        mothers = tournament_select(fitness, rng, offspring_count, tournament)
        fathers = tournament_select(fitness, rng, offspring_count, tournament)
        offspring = uniform_crossover(pop[mothers], pop[fathers], rng)
        offspring = mutate(offspring, counts, rng, mutation_rate)
        offspring_fitness = engine.price_batch(offspring)
        observe(offspring, offspring_fitness)
        if elite > 0:
            keep = elite_indices(fitness, min(elite, len(pop)))
            pop = np.concatenate([pop[keep], offspring])
            fitness = np.concatenate([fitness[keep], offspring_fitness])
        else:
            pop, fitness = offspring, offspring_fitness
        remaining -= offspring_count

    assert best_choices is not None
    if polish_sweeps > 0:
        best_choices, best_total = coordinate_descent(
            engine, best_choices, max_sweeps=polish_sweeps
        )
    return SearchResult(
        graph_name=lut.graph_name,
        method="genetic",
        best_assignments=engine.assignments(best_choices),
        best_ms=float(best_total),
        episodes=episodes,
        curve_ms=curve,
        wall_clock_s=time.perf_counter() - started,
    )
