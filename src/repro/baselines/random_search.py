"""Random Search over the same LUT and episode budget as QS-DNN.

The paper's §VI-B comparison: per episode, draw one uniformly random
primitive per layer, score the full configuration (penalties included)
and keep the best seen.  "RS's implementations decrease inference time
after seeing more options as it discards naive implementations, but it
only converges towards the infinite."

The whole budget is drawn as one ``(episodes, L)`` matrix and priced
with a single :meth:`~repro.engine.pricing.CostEngine.price_batch`
call per chunk — no Python-level per-episode loop.  Draws are
generated row-major, so a longer budget strictly extends a shorter one
(more episodes can never be worse at the same seed).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.utils.rng import derive_rng

#: Episodes priced per batch call (bounds peak memory on huge budgets).
CHUNK_EPISODES = 16_384


def random_search(
    lut: LatencyTable,
    episodes: int = 1000,
    seed: int = 0,
    track_curve: bool = True,
) -> SearchResult:
    """Run RS for ``episodes`` draws; returns the best configuration."""
    if episodes < 1:
        raise ConfigError(f"episodes must be >= 1, got {episodes}")
    engine = lut.engine()
    rng = derive_rng(seed, "random-search", lut.graph_name, lut.mode)

    best_total = np.inf
    best_choices: np.ndarray | None = None
    curve: list[float] = []
    started = time.perf_counter()

    remaining = episodes
    while remaining > 0:
        batch = engine.sample_batch(rng, min(remaining, CHUNK_EPISODES))
        totals = engine.price_batch(batch)
        winner = int(np.argmin(totals))
        if totals[winner] < best_total:
            best_total = float(totals[winner])
            best_choices = batch[winner].copy()
        if track_curve:
            curve.extend(totals.tolist())
        remaining -= len(batch)

    assert best_choices is not None
    return SearchResult(
        graph_name=lut.graph_name,
        method="random-search",
        best_assignments=engine.assignments(best_choices),
        best_ms=float(best_total),
        episodes=episodes,
        curve_ms=curve,
        wall_clock_s=time.perf_counter() - started,
    )
