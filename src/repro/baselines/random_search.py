"""Random Search over the same LUT and episode budget as QS-DNN.

The paper's §VI-B comparison: per episode, draw one uniformly random
primitive per layer, score the full configuration (penalties included)
and keep the best seen.  "RS's implementations decrease inference time
after seeing more options as it discards naive implementations, but it
only converges towards the infinite."
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.utils.rng import derive_rng


def random_search(
    lut: LatencyTable,
    episodes: int = 1000,
    seed: int = 0,
    track_curve: bool = True,
) -> SearchResult:
    """Run RS for ``episodes`` draws; returns the best configuration."""
    if episodes < 1:
        raise ConfigError(f"episodes must be >= 1, got {episodes}")
    idx = lut.indexed()
    rng = derive_rng(seed, "random-search", lut.graph_name, lut.mode)
    num_layers = len(idx)

    best_total = np.inf
    best_choices: np.ndarray | None = None
    curve: list[float] = []
    started = time.perf_counter()

    for _ in range(episodes):
        choices = np.array(
            [rng.integers(idx.num_actions[i]) for i in range(num_layers)],
            dtype=np.int64,
        )
        total = idx.total_ms(choices)
        if total < best_total:
            best_total = total
            best_choices = choices
        if track_curve:
            curve.append(total)

    assert best_choices is not None
    return SearchResult(
        graph_name=lut.graph_name,
        method="random-search",
        best_assignments=idx.assignments(best_choices),
        best_ms=float(best_total),
        episodes=episodes,
        curve_ms=curve,
        wall_clock_s=time.perf_counter() - started,
    )
