"""Q-learning with a small neural value-function (paper §VII: "Deep RL").

One hidden tanh layer on top of the same features as
:mod:`repro.ext.linear_q`::

    Q(s, a) = w2 . tanh(W1 phi(s, a) + b1) + b2

trained by plain SGD on the eq. (2) targets.  The non-linear hidden
layer can represent interactions a linear model cannot (e.g. "GPU
primitives are only fast when the *parent* is also on the GPU"), at the
cost of slower, noisier training — the classic deep-RL trade-off, here
at embedded scale so the benchmark suite can quantify it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import SearchConfig
from repro.core.polish import coordinate_descent
from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.ext.linear_q import LinearQSearch
from repro.utils.rng import RngStream


@dataclass
class MLPQConfig:
    """Hyper-parameters of the MLP agent."""

    episodes: int = 1000
    hidden_units: int = 32
    learning_rate: float = 0.005
    discount: float = 0.9
    seed: int = 0
    polish_sweeps: int = 2

    def __post_init__(self) -> None:
        if self.episodes < 1:
            raise ConfigError("episodes must be >= 1")
        if self.hidden_units < 1:
            raise ConfigError("hidden_units must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.discount <= 1.0:
            raise ConfigError("discount must be in [0, 1]")
        if self.polish_sweeps < 0:
            raise ConfigError("polish_sweeps must be >= 0")


class _MLP:
    """Tiny tanh MLP with manual SGD, seeded initialization."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator) -> None:
        scale = 1.0 / math.sqrt(dim)
        self.w1 = rng.normal(0.0, scale, size=(hidden, dim))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, 1.0 / math.sqrt(hidden), size=hidden)
        self.b2 = 0.0

    def forward(self, phi: np.ndarray) -> tuple[float, np.ndarray]:
        """Q estimate plus the hidden activations (for the backward pass)."""
        hidden = np.tanh(self.w1 @ phi + self.b1)
        return float(self.w2 @ hidden + self.b2), hidden

    def predict(self, phi: np.ndarray) -> float:
        """Q estimate of one feature vector."""
        return self.forward(phi)[0]

    def sgd_step(self, phi: np.ndarray, target: float, lr: float) -> None:
        """One TD step: backprop the squared error to ``target``."""
        prediction, hidden = self.forward(phi)
        delta = target - prediction
        grad_hidden = delta * self.w2 * (1.0 - hidden**2)
        self.w2 += lr * delta * hidden
        self.b2 += lr * delta
        self.w1 += lr * np.outer(grad_hidden, phi)
        self.b1 += lr * grad_hidden


class MLPQSearch:
    """Neural-value-function variant of the QS-DNN search."""

    def __init__(self, lut: LatencyTable, config: MLPQConfig | None = None) -> None:
        self.lut = lut
        self.config = config or MLPQConfig()
        self.idx = lut.indexed()
        self._num_layers = len(self.idx)
        # Reuse the linear agent's feature pipeline.
        self._featurizer = LinearQSearch(lut)

    def run(self) -> SearchResult:
        """Run the full search; mirrors :class:`QSDNNSearch.run`."""
        cfg = self.config
        idx = self.idx
        epsilon = SearchConfig(episodes=cfg.episodes, seed=cfg.seed).epsilon
        stream = RngStream(cfg.seed, "mlp-q", self.lut.graph_name, self.lut.mode)
        rng = stream.child("policy")
        dim = self._featurizer._dim + 2
        net = _MLP(dim, cfg.hidden_units, stream.child("init"))

        best_total = np.inf
        best_choices: np.ndarray | None = None
        curve: list[float] = []
        started = time.perf_counter()
        phi = self._featurizer._phi

        for episode in range(cfg.episodes):
            eps = epsilon.epsilon_for(episode)
            choices = np.empty(self._num_layers, dtype=np.int64)
            phis: list[np.ndarray] = []
            costs = np.empty(self._num_layers, dtype=np.float64)
            for i in range(self._num_layers):
                n = idx.num_actions[i]
                penalties = np.zeros(n, dtype=np.float64)
                for pred_layer, edge_idx in idx.incoming[i]:
                    penalties += idx.edge_matrices[edge_idx][choices[pred_layer], :]
                if eps > 0.0 and rng.random() < eps:
                    action = int(rng.integers(n))
                else:
                    values = [
                        net.predict(phi(i, a, penalties[a])) for a in range(n)
                    ]
                    action = int(np.argmax(values))
                choices[i] = action
                phis.append(phi(i, action, penalties[action]))
                costs[i] = idx.times[i][action] + penalties[action]
            total = float(costs.sum())
            next_best = 0.0
            for i in range(self._num_layers - 1, -1, -1):
                target = -float(costs[i]) + cfg.discount * next_best
                net.sgd_step(phis[i], target, cfg.learning_rate)
                next_best = net.predict(phis[i])
            if total < best_total:
                best_total = total
                best_choices = choices.copy()
            curve.append(total)

        assert best_choices is not None
        if cfg.polish_sweeps > 0:
            best_choices, best_total = coordinate_descent(
                idx, best_choices, max_sweeps=cfg.polish_sweeps
            )
        return SearchResult(
            graph_name=self.lut.graph_name,
            method="mlp-q",
            best_assignments=idx.assignments(best_choices),
            best_ms=float(best_total),
            episodes=cfg.episodes,
            curve_ms=curve,
            wall_clock_s=time.perf_counter() - started,
        )
