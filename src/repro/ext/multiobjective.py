"""Multi-objective search (paper §VII future work).

The scalarized objective ``latency + lam * energy`` factors per layer and
per edge exactly like latency alone does::

    t'(layer, prim)  = t * (1 + lam * watts(prim.processor))
    conv'(edge, p)   = conv * (1 + lam * watts(p))
    transfer'(edge)  = transfer * (1 + lam * transfer_watts)

so a *transformed latency table* turns the unmodified Q-learning engine
into a multi-objective searcher.  ``lam`` has units of 1/W: lam = 0.1
means 1 mJ costs as much as 0.1 ms.

A sweep over lam values traces the latency/energy Pareto front — e.g.
on MobileNet the energy-weighted schedules progressively abandon the
GPU's fast-but-hungry convolutions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SearchConfig
from repro.core.search import QSDNNSearch
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.ext.energy import EnergyModel, schedule_energy_mj
from repro.utils.rng import spawn_seed


def weighted_objective_lut(
    lut: LatencyTable,
    lam: float,
    model: EnergyModel | None = None,
) -> LatencyTable:
    """A LUT whose 'times' encode ``latency + lam * energy``."""
    if lam < 0:
        raise ConfigError(f"lam must be >= 0, got {lam}")
    model = model or EnergyModel()
    times = {
        layer: {
            uid: ms * (1.0 + lam * model.watts(lut.meta[uid].processor))
            for uid, ms in entries.items()
        }
        for layer, entries in lut.times_ms.items()
    }
    conversion = {
        edge: {
            proc: ms * (1.0 + lam * model.watts(proc))
            for proc, ms in per_proc.items()
        }
        for edge, per_proc in lut.conversion_ms.items()
    }
    transfer = {
        edge: ms * (1.0 + lam * model.transfer_watts)
        for edge, ms in lut.transfer_ms.items()
    }
    return LatencyTable(
        graph_name=lut.graph_name,
        mode=f"{lut.mode}+energy(lam={lam:g})",
        platform_name=lut.platform_name,
        layers=list(lut.layers),
        candidates={k: list(v) for k, v in lut.candidates.items()},
        times_ms=times,
        edges=list(lut.edges),
        conversion_ms=conversion,
        transfer_ms=transfer,
        meta=dict(lut.meta),
        profiling_inferences=lut.profiling_inferences,
    )


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the latency/energy trade-off curve."""

    lam: float
    latency_ms: float
    energy_mj: float
    assignments: dict[str, str]

    def gpu_layers(self, lut: LatencyTable) -> int:
        """How many layers the schedule places on the GPU (for reports)."""
        from repro.hw.processor import ProcessorKind

        return sum(
            1
            for uid in self.assignments.values()
            if lut.meta[uid].processor is ProcessorKind.GPU
        )


def pareto_sweep(
    lut: LatencyTable,
    lams: list[float] | None = None,
    episodes: int | None = None,
    seed: int = 0,
    model: EnergyModel | None = None,
) -> list[ParetoPoint]:
    """Search once per lam; returns (latency, energy) of each solution.

    Latency and energy are always evaluated on the *original* LUT — the
    transformed one exists only as the search objective.
    """
    if lams is None:
        lams = [0.0, 0.05, 0.1, 0.2, 0.5, 1.0]
    model = model or EnergyModel()
    if episodes is None:
        episodes = max(1000, 25 * len(lut.layers))
    points = []
    for lam in lams:
        objective = weighted_objective_lut(lut, lam, model) if lam else lut
        config = SearchConfig(
            episodes=episodes,
            seed=spawn_seed(seed, "pareto", f"{lam:g}"),
            track_curve=False,
        )
        result = QSDNNSearch(objective, config).run()
        points.append(
            ParetoPoint(
                lam=lam,
                latency_ms=lut.schedule_time(result.best_assignments),
                energy_mj=schedule_energy_mj(lut, result.best_assignments, model),
                assignments=result.best_assignments,
            )
        )
    return points


def pareto_front(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by latency."""
    ordered = sorted(points, key=lambda p: (p.latency_ms, p.energy_mj))
    front: list[ParetoPoint] = []
    best_energy = float("inf")
    for point in ordered:
        if point.energy_mj < best_energy - 1e-12:
            front.append(point)
            best_energy = point.energy_mj
    return front
