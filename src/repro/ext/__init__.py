"""Extensions implementing the paper's future-work directions (§VII).

* :mod:`repro.ext.energy` — per-processor power model and per-schedule
  energy accounting ("problems related to inference of DNNs on
  constrained environments").
* :mod:`repro.ext.multiobjective` — "different reward choices or ...
  multi-objective search": scalarized latency/energy objectives and
  Pareto-front sweeps, reusing the unmodified Q-learning engine.
* :mod:`repro.ext.linear_q` — "Deep RL to approximate the value function
  for better scalability": a linear function-approximation Q agent whose
  features generalize across layers.
"""

from repro.ext.energy import EnergyModel, schedule_energy_mj
from repro.ext.multiobjective import (
    ParetoPoint,
    pareto_front,
    pareto_sweep,
    weighted_objective_lut,
)
from repro.ext.linear_q import LinearQConfig, LinearQSearch
from repro.ext.mlp_q import MLPQConfig, MLPQSearch

__all__ = [
    "MLPQConfig",
    "MLPQSearch",
    "EnergyModel",
    "schedule_energy_mj",
    "ParetoPoint",
    "pareto_front",
    "pareto_sweep",
    "weighted_objective_lut",
    "LinearQConfig",
    "LinearQSearch",
]
