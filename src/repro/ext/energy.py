"""Energy accounting for schedules (paper §VII: constrained environments).

A simple busy-power model: each processor draws a constant power while
executing, so a layer's energy is its latency times its processor's busy
power (1 ms at 1 W = 1 mJ).  Compatibility penalties are charged at the
power of the processor doing the work (conversions) or the memory
system (transfers).

TX-2 calibration: a single busy A57 core draws ~1.8 W; the Pascal GPU
~7 W under load; DMA/copy engines ~2.5 W.  As with latency, the absolute
numbers are approximations — the *ratio* is what shapes the trade-off:
the GPU is faster but hungrier, so energy-weighted searches pull layers
back to the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.hw.processor import ProcessorKind

CPU_BUSY_WATTS = 1.8
GPU_BUSY_WATTS = 7.0
TRANSFER_WATTS = 2.5


@dataclass(frozen=True)
class EnergyModel:
    """Busy power per processor kind, in watts."""

    cpu_watts: float = CPU_BUSY_WATTS
    gpu_watts: float = GPU_BUSY_WATTS
    transfer_watts: float = TRANSFER_WATTS

    def __post_init__(self) -> None:
        for field_name in ("cpu_watts", "gpu_watts", "transfer_watts"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")

    def watts(self, kind: ProcessorKind) -> float:
        """Busy power of one processor kind."""
        if kind is ProcessorKind.GPU:
            return self.gpu_watts
        return self.cpu_watts


def schedule_energy_mj(
    lut: LatencyTable,
    assignments: dict[str, str],
    model: EnergyModel | None = None,
) -> float:
    """Energy of one schedule in millijoules (latency x busy power).

    Penalties: layout conversions run on the consumer's processor;
    transfers are charged at the copy-engine power.
    """
    model = model or EnergyModel()
    total = 0.0
    for layer in lut.layers:
        uid = assignments[layer]
        total += lut.layer_time(layer, uid) * model.watts(lut.meta[uid].processor)
    for edge in lut.edges:
        producer, consumer = edge
        prod = lut.meta[assignments[producer]]
        cons = lut.meta[assignments[consumer]]
        if prod.processor is not cons.processor:
            total += lut.transfer_ms[edge] * model.transfer_watts
        if prod.layout is not cons.layout:
            total += (
                lut.conversion_ms[edge][cons.processor]
                * model.watts(cons.processor)
            )
    return total
