"""Q-learning with a linear value-function approximation.

The paper's §VII: "we also aim to look into Deep RL to approximate the
value function for better scalability towards larger networks and more
dimensions in the search space."  This module implements the first rung
of that ladder: ``Q(s, a) = w . phi(s, a)`` with hand-crafted features
and SGD on the eq. (2) targets.

Features generalize across layers — the agent that learned "cuDNN
winograd is great on big 3x3 convs" at depth 4 applies it at depth 40
without ever visiting that state, which is exactly the scalability
argument.  The trade-off is bias: a linear model cannot represent every
penalty interaction, so tabular QS-DNN still wins given enough episodes
(the ablation benchmark quantifies this).

Features per (state, action):

* bias, normalized depth,
* one-hot library of the candidate primitive,
* processor / layout flags and parent-compatibility indicators,
* log latency of the candidate on this layer (the LUT measurement),
* log of the penalty implied by the parent's current choice.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.backends.registry import registered_libraries
from repro.core.config import SearchConfig
from repro.core.polish import coordinate_descent
from repro.core.priors import static_features
from repro.core.result import SearchResult
from repro.engine.lut import LatencyTable
from repro.errors import ConfigError
from repro.utils.rng import RngStream

#: Library order for the one-hot block, derived from the backend
#: registry so new backend modules extend the encoding instead of
#: misaligning it against a stale hardcoded tuple.
_LIBRARIES = registered_libraries()


@dataclass
class LinearQConfig:
    """Hyper-parameters of the linear agent."""

    episodes: int = 1000
    learning_rate: float = 0.01
    discount: float = 0.9
    seed: int = 0
    polish_sweeps: int = 2

    def __post_init__(self) -> None:
        if self.episodes < 1:
            raise ConfigError("episodes must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.discount <= 1.0:
            raise ConfigError("discount must be in [0, 1]")
        if self.polish_sweeps < 0:
            raise ConfigError("polish_sweeps must be >= 0")


class LinearQSearch:
    """Function-approximation variant of the QS-DNN search."""

    def __init__(self, lut: LatencyTable, config: LinearQConfig | None = None) -> None:
        self.lut = lut
        self.config = config or LinearQConfig()
        self.idx = lut.indexed()
        self._num_layers = len(self.idx)
        self._features = self._build_features()
        self._dim = self._features[0].shape[1]

    # -- feature construction -------------------------------------------------

    def _build_features(self) -> list[np.ndarray]:
        """Per layer: (num_candidates, dim) static feature rows.

        Parent-dependent features (compatibility indicators, penalty
        magnitude) are appended at rollout time; here we precompute the
        static block.
        """
        return static_features(self.idx, self.lut.meta, _LIBRARIES)

    def _phi(self, layer: int, action: int, penalty_ms: float) -> np.ndarray:
        """Full feature vector: static block + dynamic penalty features."""
        static = self._features[layer][action]
        dynamic = np.array(
            [
                1.0 if penalty_ms > 0 else 0.0,
                math.log10(penalty_ms + 1e-6) if penalty_ms > 0 else 0.0,
            ]
        )
        return np.concatenate([static, dynamic])

    # -- the search -------------------------------------------------------------

    def run(self) -> SearchResult:
        """Run the full search; mirrors :class:`QSDNNSearch.run`."""
        cfg = self.config
        idx = self.idx
        # Reuse the paper's epsilon schedule via a SearchConfig.
        epsilon = SearchConfig(episodes=cfg.episodes, seed=cfg.seed).epsilon
        stream = RngStream(cfg.seed, "linear-q", self.lut.graph_name, self.lut.mode)
        rng = stream.child("policy")
        dim = self._dim + 2
        weights = np.zeros(dim, dtype=np.float64)

        best_total = np.inf
        best_choices: np.ndarray | None = None
        curve: list[float] = []
        started = time.perf_counter()

        for episode in range(cfg.episodes):
            eps = epsilon.epsilon_for(episode)
            choices = np.empty(self._num_layers, dtype=np.int64)
            phis: list[np.ndarray] = []
            costs = np.empty(self._num_layers, dtype=np.float64)
            # Rollout.
            for i in range(self._num_layers):
                n = idx.num_actions[i]
                penalties = np.zeros(n, dtype=np.float64)
                for pred_layer, edge_idx in idx.incoming[i]:
                    penalties += idx.edge_matrices[edge_idx][choices[pred_layer], :]
                if eps > 0.0 and rng.random() < eps:
                    action = int(rng.integers(n))
                else:
                    values = np.array(
                        [
                            weights @ self._phi(i, a, penalties[a])
                            for a in range(n)
                        ]
                    )
                    action = int(np.argmax(values))
                choices[i] = action
                phis.append(self._phi(i, action, penalties[action]))
                costs[i] = idx.times[i][action] + penalties[action]
            total = float(costs.sum())
            # SGD on eq. (2) targets, backwards for faster credit flow.
            next_best = 0.0
            for i in range(self._num_layers - 1, -1, -1):
                reward = -float(costs[i])
                target = reward + cfg.discount * next_best
                prediction = float(weights @ phis[i])
                weights += cfg.learning_rate * (target - prediction) * phis[i]
                next_best = float(weights @ phis[i])
            if total < best_total:
                best_total = total
                best_choices = choices.copy()
            curve.append(total)

        assert best_choices is not None
        if cfg.polish_sweeps > 0:
            best_choices, best_total = coordinate_descent(
                idx, best_choices, max_sweeps=cfg.polish_sweeps
            )
        return SearchResult(
            graph_name=self.lut.graph_name,
            method="linear-q",
            best_assignments=idx.assignments(best_choices),
            best_ms=float(best_total),
            episodes=cfg.episodes,
            curve_ms=curve,
            wall_clock_s=time.perf_counter() - started,
        )
