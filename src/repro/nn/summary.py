"""Human-readable network summaries."""

from __future__ import annotations

from repro.nn.flops import layer_flops, layer_weight_bytes
from repro.nn.graph import NetworkGraph
from repro.utils.tables import AsciiTable
from repro.utils.units import gflops, mbytes


def summarize(graph: NetworkGraph) -> str:
    """Render a per-layer table plus whole-network totals.

    The format mirrors a framework's ``model.summary()``: one row per
    layer with its description, output shape and cost.
    """
    table = AsciiTable(
        ["#", "layer", "spec", "inputs", "output", "MFLOPs", "params(KiB)"],
        title=f"{graph.name}  (input {graph.input_shape})",
    )
    for i, layer in enumerate(graph.layers()):
        flops = layer_flops(layer, graph)
        weights = layer_weight_bytes(layer, graph)
        table.add_row(
            [
                i,
                layer.name,
                layer.describe(),
                ",".join(layer.inputs),
                str(graph.output_shape(layer.name)),
                f"{flops / 1e6:.2f}",
                f"{weights / 1024:.1f}",
            ]
        )
    totals = (
        f"total: {len(graph.layers())} layers, "
        f"{gflops(graph.total_flops()):.3f} GFLOPs, "
        f"{mbytes(graph.total_weight_bytes()):.2f} MiB params"
    )
    return table.render() + "\n" + totals
