"""FLOP and byte accounting per layer.

These numbers feed the hardware cost models: compute-bound primitives are
priced from FLOPs, memory-bound ones from activation + weight traffic.
Conventions: one multiply-accumulate = 2 FLOPs; comparisons and pointwise
ops count 1 FLOP per output element.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.tensor import DTYPE_BYTES
from repro.nn.types import LayerKind

#: LRN cross-channel window (AlexNet's local_size), fixed across the zoo.
LRN_LOCAL_SIZE = 5


def layer_flops(layer: Layer, graph: NetworkGraph) -> float:
    """Forward-pass FLOPs of ``layer`` inside ``graph``."""
    kind = layer.kind
    if kind is LayerKind.INPUT:
        return 0.0
    out = graph.output_shape(layer.name)
    ins = graph.input_shapes(layer.name)

    if kind is LayerKind.CONV:
        cin = ins[0].channels
        return 2.0 * layer.kernel * layer.kernel * cin * out.numel

    if kind is LayerKind.DEPTHWISE_CONV:
        return 2.0 * layer.kernel * layer.kernel * out.numel

    if kind is LayerKind.FULLY_CONNECTED:
        return 2.0 * ins[0].numel * out.channels

    if kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG):
        if layer.variant == "global":
            return float(ins[0].numel)
        return float(layer.kernel * layer.kernel * out.numel)

    if kind is LayerKind.RELU:
        return float(out.numel)

    if kind is LayerKind.BATCH_NORM:
        # Folded at inference: one multiply + one add per element.
        return 2.0 * out.numel

    if kind is LayerKind.LRN:
        # Square, window sum, power, divide per element.
        return float((LRN_LOCAL_SIZE + 3) * out.numel)

    if kind is LayerKind.SOFTMAX:
        # exp + max-subtract + sum + divide.
        return 4.0 * out.numel

    if kind is LayerKind.ELTWISE_ADD:
        return float((len(ins) - 1) * out.numel)

    if kind in (LayerKind.CONCAT, LayerKind.FLATTEN):
        return 0.0

    raise ShapeError(f"no FLOP rule for layer kind {kind}")


def layer_weight_bytes(layer: Layer, graph: NetworkGraph) -> float:
    """Parameter bytes (weights + bias) of ``layer``."""
    kind = layer.kind
    if kind is LayerKind.CONV:
        cin = graph.input_shapes(layer.name)[0].channels
        weights = layer.kernel * layer.kernel * cin * layer.out_channels
        return float((weights + layer.out_channels) * DTYPE_BYTES)
    if kind is LayerKind.DEPTHWISE_CONV:
        c = graph.output_shape(layer.name).channels
        return float((layer.kernel * layer.kernel * c + c) * DTYPE_BYTES)
    if kind is LayerKind.FULLY_CONNECTED:
        cin = graph.input_shapes(layer.name)[0].numel
        return float((cin * layer.out_channels + layer.out_channels) * DTYPE_BYTES)
    if kind is LayerKind.BATCH_NORM:
        c = graph.output_shape(layer.name).channels
        return float(2 * c * DTYPE_BYTES)  # folded scale + shift
    return 0.0


def layer_io_bytes(layer: Layer, graph: NetworkGraph) -> float:
    """Activation traffic: bytes read from producers plus bytes written."""
    if layer.kind is LayerKind.INPUT:
        return 0.0
    read = sum(s.nbytes for s in graph.input_shapes(layer.name))
    written = graph.output_shape(layer.name).nbytes
    if layer.kind is LayerKind.FLATTEN:
        return 0.0  # pure metadata view, no data movement
    return float(read + written)


def layer_arithmetic_intensity(layer: Layer, graph: NetworkGraph) -> float:
    """FLOPs per byte of total traffic — the roofline x-axis."""
    flops = layer_flops(layer, graph)
    traffic = layer_io_bytes(layer, graph) + layer_weight_bytes(layer, graph)
    if traffic == 0:
        return 0.0
    return flops / traffic
