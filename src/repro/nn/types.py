"""Layer taxonomy.

The kinds mirror what the paper's inference engine distinguishes: the
acceleration libraries advertise coverage *per layer kind* (e.g. cuDNN
implements convolutions but not fully-connected layers; ArmCL has a
dedicated depth-wise convolution routine).
"""

from __future__ import annotations

import enum


class LayerKind(enum.Enum):
    """Every layer kind the zoo networks use."""

    INPUT = "input"
    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    FULLY_CONNECTED = "fully_connected"
    POOL_MAX = "pool_max"
    POOL_AVG = "pool_avg"
    RELU = "relu"
    BATCH_NORM = "batch_norm"
    LRN = "lrn"
    SOFTMAX = "softmax"
    CONCAT = "concat"
    ELTWISE_ADD = "eltwise_add"
    FLATTEN = "flatten"

    def __str__(self) -> str:  # compact rendering in tables/logs
        return self.value


#: Kinds that are pure element-wise / normalization operators.  These are
#: memory-bound and every library prices them from tensor traffic.
ACTIVATION_KINDS = frozenset(
    {
        LayerKind.RELU,
        LayerKind.BATCH_NORM,
        LayerKind.LRN,
        LayerKind.SOFTMAX,
        LayerKind.ELTWISE_ADD,
    }
)

#: Kinds that carry trainable weights (and therefore weight traffic).
WEIGHT_KINDS = frozenset(
    {
        LayerKind.CONV,
        LayerKind.DEPTHWISE_CONV,
        LayerKind.FULLY_CONNECTED,
        LayerKind.BATCH_NORM,
    }
)

#: Kinds with spatial kernels / windows.
WINDOWED_KINDS = frozenset(
    {
        LayerKind.CONV,
        LayerKind.DEPTHWISE_CONV,
        LayerKind.POOL_MAX,
        LayerKind.POOL_AVG,
    }
)
