"""Layer specifications.

A :class:`Layer` is an immutable record of one node in a network graph:
its kind, hyper-parameters and the names of the layers feeding it.  The
fields are a superset over all kinds; :meth:`Layer.validate_params`
enforces that each kind carries exactly the parameters it needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import GraphError, ShapeError
from repro.nn.types import LayerKind, WINDOWED_KINDS


@dataclass(frozen=True)
class Layer:
    """One node of a network DAG.

    Parameters
    ----------
    name:
        Graph-unique identifier.
    kind:
        The :class:`~repro.nn.types.LayerKind`.
    inputs:
        Names of producer layers.  ``INPUT`` layers have none; ``CONCAT``
        and ``ELTWISE_ADD`` take two or more; everything else exactly one.
    out_channels:
        Output channel count for CONV / FULLY_CONNECTED.  Derived for
        other kinds.
    kernel / stride / padding:
        Square window hyper-parameters for windowed kinds.
    variant:
        Free-form tag for activation flavours (``"relu6"``, ``"leaky"``)
        or pooling globality (``"global"``).
    """

    name: str
    kind: LayerKind
    inputs: tuple[str, ...] = field(default=())
    out_channels: int | None = None
    kernel: int | None = None
    stride: int = 1
    padding: int = 0
    variant: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise GraphError(f"layer name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        self.validate_params()

    # -- arity ------------------------------------------------------------

    @property
    def is_multi_input(self) -> bool:
        """True for kinds that merge several producers."""
        return self.kind in (LayerKind.CONCAT, LayerKind.ELTWISE_ADD)

    def _check_arity(self) -> None:
        n = len(self.inputs)
        if self.kind is LayerKind.INPUT:
            if n != 0:
                raise GraphError(f"INPUT layer {self.name!r} cannot have inputs")
        elif self.is_multi_input:
            if n < 2:
                raise GraphError(
                    f"{self.kind} layer {self.name!r} needs >=2 inputs, got {n}"
                )
        elif n != 1:
            raise GraphError(
                f"{self.kind} layer {self.name!r} needs exactly 1 input, got {n}"
            )

    # -- parameter validation ----------------------------------------------

    def validate_params(self) -> None:
        """Raise if the hyper-parameters are inconsistent with the kind."""
        self._check_arity()
        if self.kind in WINDOWED_KINDS:
            if self.variant == "global":
                if self.kernel is not None:
                    raise ShapeError(
                        f"global pooling layer {self.name!r} must not set kernel"
                    )
            elif self.kernel is None or self.kernel < 1:
                raise ShapeError(
                    f"{self.kind} layer {self.name!r} needs a positive kernel"
                )
            if self.stride < 1:
                raise ShapeError(f"{self.kind} layer {self.name!r} needs stride >= 1")
            if self.padding < 0:
                raise ShapeError(f"{self.kind} layer {self.name!r} needs padding >= 0")
        if self.kind in (LayerKind.CONV, LayerKind.FULLY_CONNECTED):
            if self.out_channels is None or self.out_channels < 1:
                raise ShapeError(
                    f"{self.kind} layer {self.name!r} needs positive out_channels"
                )
        if self.kind is LayerKind.DEPTHWISE_CONV and self.out_channels is not None:
            raise ShapeError(
                f"depthwise layer {self.name!r} derives out_channels from its input"
            )

    # -- convenience --------------------------------------------------------

    def with_inputs(self, inputs: tuple[str, ...]) -> "Layer":
        """A copy of this layer fed by different producers."""
        return replace(self, inputs=tuple(inputs))

    def describe(self) -> str:
        """Compact one-line description used by summaries."""
        bits = [f"{self.kind}"]
        if self.kernel is not None:
            bits.append(f"k{self.kernel}s{self.stride}p{self.padding}")
        if self.variant == "global":
            bits.append("global")
        if self.out_channels is not None:
            bits.append(f"->{self.out_channels}")
        if self.variant and self.variant != "global":
            bits.append(self.variant)
        return " ".join(bits)
