"""Network representation substrate.

A :class:`~repro.nn.graph.NetworkGraph` is a named DAG of
:class:`~repro.nn.layers.Layer` nodes with shape inference, FLOP/byte
accounting and validation.  It carries *architecture only* — primitive
selection never depends on weight values, so no tensors are stored.
"""

from repro.nn.types import LayerKind, ACTIVATION_KINDS, WEIGHT_KINDS
from repro.nn.tensor import TensorShape
from repro.nn.layers import Layer
from repro.nn.graph import NetworkGraph
from repro.nn.builder import NetworkBuilder
from repro.nn.shapes import infer_output_shape
from repro.nn.flops import layer_flops, layer_weight_bytes, layer_io_bytes
from repro.nn.summary import summarize

__all__ = [
    "LayerKind",
    "ACTIVATION_KINDS",
    "WEIGHT_KINDS",
    "TensorShape",
    "Layer",
    "NetworkGraph",
    "NetworkBuilder",
    "infer_output_shape",
    "layer_flops",
    "layer_weight_bytes",
    "layer_io_bytes",
    "summarize",
]
