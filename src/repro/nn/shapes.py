"""Shape inference for every layer kind."""

from __future__ import annotations

from repro.errors import ShapeError
from repro.nn.layers import Layer
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind


def _window_output(extent: int, kernel: int, stride: int, padding: int) -> int:
    out = (extent + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ShapeError(
            f"window (k={kernel}, s={stride}, p={padding}) does not fit extent {extent}"
        )
    return out


def infer_output_shape(layer: Layer, input_shapes: list[TensorShape]) -> TensorShape:
    """Compute the output shape of ``layer`` given its producers' shapes.

    Raises :class:`~repro.errors.ShapeError` on any inconsistency (window
    larger than the padded input, mismatched concat spatial dims, ...).
    """
    kind = layer.kind
    if kind is LayerKind.INPUT:
        raise ShapeError("INPUT layers carry their own shape; nothing to infer")

    if layer.is_multi_input:
        if len(input_shapes) < 2:
            raise ShapeError(f"{layer.name!r} needs >=2 input shapes")
    elif len(input_shapes) != 1:
        raise ShapeError(f"{layer.name!r} needs exactly 1 input shape")

    if kind is LayerKind.CONV:
        x = input_shapes[0]
        h = _window_output(x.height, layer.kernel, layer.stride, layer.padding)
        w = _window_output(x.width, layer.kernel, layer.stride, layer.padding)
        return TensorShape(layer.out_channels, h, w)

    if kind is LayerKind.DEPTHWISE_CONV:
        x = input_shapes[0]
        h = _window_output(x.height, layer.kernel, layer.stride, layer.padding)
        w = _window_output(x.width, layer.kernel, layer.stride, layer.padding)
        return TensorShape(x.channels, h, w)

    if kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG):
        x = input_shapes[0]
        if layer.variant == "global":
            return TensorShape(x.channels, 1, 1)
        h = _window_output(x.height, layer.kernel, layer.stride, layer.padding)
        w = _window_output(x.width, layer.kernel, layer.stride, layer.padding)
        return TensorShape(x.channels, h, w)

    if kind is LayerKind.FULLY_CONNECTED:
        return TensorShape(layer.out_channels, 1, 1)

    if kind is LayerKind.FLATTEN:
        return input_shapes[0].flattened()

    if kind is LayerKind.CONCAT:
        spatial = input_shapes[0].spatial
        for s in input_shapes[1:]:
            if s.spatial != spatial:
                raise ShapeError(
                    f"concat {layer.name!r}: spatial mismatch {s.spatial} vs {spatial}"
                )
        return TensorShape(sum(s.channels for s in input_shapes), *spatial)

    if kind is LayerKind.ELTWISE_ADD:
        first = input_shapes[0]
        for s in input_shapes[1:]:
            if s != first:
                raise ShapeError(
                    f"eltwise {layer.name!r}: shape mismatch {s} vs {first}"
                )
        return first

    if kind in (LayerKind.RELU, LayerKind.BATCH_NORM, LayerKind.LRN, LayerKind.SOFTMAX):
        return input_shapes[0]

    raise ShapeError(f"no shape rule for layer kind {kind}")
