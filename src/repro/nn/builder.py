"""Fluent construction of network graphs.

The builder tracks a *cursor* (the most recently added layer), so linear
chains read top-to-bottom like a prototxt, while branches are expressed by
naming split points:

>>> b = NetworkBuilder("tiny", TensorShape(3, 32, 32))
>>> trunk = b.conv("conv1", out_channels=16, kernel=3, padding=1)
>>> left = b.conv("branch_a", out_channels=8, kernel=1, after=trunk)
>>> right = b.conv("branch_b", out_channels=8, kernel=3, padding=1, after=trunk)
>>> _ = b.concat("merge", inputs=[left, right])
>>> net = b.build()
>>> net.output_shape("merge")
TensorShape(channels=16, height=32, width=32)
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GraphError
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind


class NetworkBuilder:
    """Incrementally build a :class:`~repro.nn.graph.NetworkGraph`."""

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        self._graph = NetworkGraph(name, input_shape)
        self._cursor = "input"
        self._built = False

    # -- internals ------------------------------------------------------------

    def _add(self, layer: Layer) -> str:
        if self._built:
            raise GraphError("builder already produced its graph; create a new one")
        self._graph.add_layer(layer)
        self._cursor = layer.name
        return layer.name

    def _resolve(self, after: str | None) -> str:
        return self._cursor if after is None else after

    # -- single-input layers ----------------------------------------------------

    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        after: str | None = None,
    ) -> str:
        """Add a standard convolution."""
        return self._add(
            Layer(
                name=name,
                kind=LayerKind.CONV,
                inputs=(self._resolve(after),),
                out_channels=out_channels,
                kernel=kernel,
                stride=stride,
                padding=padding,
            )
        )

    def depthwise(
        self,
        name: str,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        after: str | None = None,
    ) -> str:
        """Add a depth-wise convolution (channel multiplier 1)."""
        return self._add(
            Layer(
                name=name,
                kind=LayerKind.DEPTHWISE_CONV,
                inputs=(self._resolve(after),),
                kernel=kernel,
                stride=stride,
                padding=padding,
            )
        )

    def fc(self, name: str, out_channels: int, after: str | None = None) -> str:
        """Add a fully-connected layer."""
        return self._add(
            Layer(
                name=name,
                kind=LayerKind.FULLY_CONNECTED,
                inputs=(self._resolve(after),),
                out_channels=out_channels,
            )
        )

    def pool_max(
        self,
        name: str,
        kernel: int,
        stride: int | None = None,
        padding: int = 0,
        after: str | None = None,
    ) -> str:
        """Add a max-pooling layer (stride defaults to the kernel)."""
        return self._add(
            Layer(
                name=name,
                kind=LayerKind.POOL_MAX,
                inputs=(self._resolve(after),),
                kernel=kernel,
                stride=kernel if stride is None else stride,
                padding=padding,
            )
        )

    def pool_avg(
        self,
        name: str,
        kernel: int,
        stride: int | None = None,
        padding: int = 0,
        after: str | None = None,
    ) -> str:
        """Add an average-pooling layer (stride defaults to the kernel)."""
        return self._add(
            Layer(
                name=name,
                kind=LayerKind.POOL_AVG,
                inputs=(self._resolve(after),),
                kernel=kernel,
                stride=kernel if stride is None else stride,
                padding=padding,
            )
        )

    def global_pool_avg(self, name: str, after: str | None = None) -> str:
        """Add a global average pool (spatial dims collapse to 1x1)."""
        return self._add(
            Layer(
                name=name,
                kind=LayerKind.POOL_AVG,
                inputs=(self._resolve(after),),
                variant="global",
            )
        )

    def relu(self, name: str, after: str | None = None, variant: str | None = None) -> str:
        """Add a ReLU (``variant`` may be ``"relu6"`` or ``"leaky"``)."""
        return self._add(
            Layer(
                name=name,
                kind=LayerKind.RELU,
                inputs=(self._resolve(after),),
                variant=variant,
            )
        )

    def batch_norm(self, name: str, after: str | None = None) -> str:
        """Add an (inference-folded) batch normalization layer."""
        return self._add(
            Layer(name=name, kind=LayerKind.BATCH_NORM, inputs=(self._resolve(after),))
        )

    def lrn(self, name: str, after: str | None = None) -> str:
        """Add a local response normalization layer (AlexNet/GoogLeNet era)."""
        return self._add(
            Layer(name=name, kind=LayerKind.LRN, inputs=(self._resolve(after),))
        )

    def softmax(self, name: str, after: str | None = None) -> str:
        """Add a softmax layer."""
        return self._add(
            Layer(name=name, kind=LayerKind.SOFTMAX, inputs=(self._resolve(after),))
        )

    def flatten(self, name: str, after: str | None = None) -> str:
        """Add an explicit flatten (pure view change, zero compute)."""
        return self._add(
            Layer(name=name, kind=LayerKind.FLATTEN, inputs=(self._resolve(after),))
        )

    # -- multi-input layers -------------------------------------------------------

    def concat(self, name: str, inputs: Sequence[str]) -> str:
        """Concatenate two or more producers along channels."""
        return self._add(
            Layer(name=name, kind=LayerKind.CONCAT, inputs=tuple(inputs))
        )

    def add(self, name: str, inputs: Sequence[str]) -> str:
        """Element-wise sum of two or more producers (residual joins)."""
        return self._add(
            Layer(name=name, kind=LayerKind.ELTWISE_ADD, inputs=tuple(inputs))
        )

    # -- composite blocks -----------------------------------------------------------

    def conv_bn_relu(
        self,
        prefix: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        after: str | None = None,
    ) -> str:
        """Conv -> BatchNorm -> ReLU, the standard MobileNet/ResNet block."""
        c = self.conv(
            f"{prefix}", out_channels, kernel, stride=stride, padding=padding, after=after
        )
        b = self.batch_norm(f"{prefix}/bn", after=c)
        return self.relu(f"{prefix}/relu", after=b)

    def dw_bn_relu(
        self,
        prefix: str,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        after: str | None = None,
    ) -> str:
        """DepthwiseConv -> BatchNorm -> ReLU (MobileNet separable half)."""
        d = self.depthwise(f"{prefix}", kernel, stride=stride, padding=padding, after=after)
        b = self.batch_norm(f"{prefix}/bn", after=d)
        return self.relu(f"{prefix}/relu", after=b)

    # -- finalization ------------------------------------------------------------------

    @property
    def cursor(self) -> str:
        """Name of the most recently added layer."""
        return self._cursor

    def output_shape(self, name: str) -> TensorShape:
        """Shape of an already-added layer (for stride/projection decisions)."""
        return self._graph.output_shape(name)

    def build(self, check_single_output: bool = True) -> NetworkGraph:
        """Validate and return the finished graph; the builder is spent.

        ``check_single_output=False`` skips the unique-sink check — every
        zoo network has one head, but test/analysis graphs may fan out.
        """
        if check_single_output:
            self._graph.validate()
        self._built = True
        return self._graph
