"""The network DAG.

Layers are stored in insertion order, which the builder guarantees to be a
topological order (a layer may only consume already-inserted producers).
All shape inference happens eagerly at insertion, so a fully constructed
graph is always shape-consistent.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import GraphError, UnknownLayerError
from repro.nn.layers import Layer
from repro.nn.shapes import infer_output_shape
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind


class NetworkGraph:
    """A validated DAG of layers with per-layer output shapes.

    Use :class:`~repro.nn.builder.NetworkBuilder` to construct one; the
    raw :meth:`add_layer` API is available for tests and tooling.
    """

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        if not name:
            raise GraphError("network name must be non-empty")
        self.name = name
        self._layers: dict[str, Layer] = {}
        self._shapes: dict[str, TensorShape] = {}
        self._successors: dict[str, list[str]] = {}
        input_layer = Layer(name="input", kind=LayerKind.INPUT)
        self._layers[input_layer.name] = input_layer
        self._shapes[input_layer.name] = input_shape
        self._successors[input_layer.name] = []

    # -- construction -------------------------------------------------------

    def add_layer(self, layer: Layer) -> Layer:
        """Insert ``layer``; all its inputs must already be present."""
        if layer.name in self._layers:
            raise GraphError(f"duplicate layer name {layer.name!r}")
        if layer.kind is LayerKind.INPUT:
            raise GraphError("a graph has exactly one input layer, added implicitly")
        input_shapes = []
        for producer in layer.inputs:
            if producer not in self._layers:
                raise UnknownLayerError(
                    f"layer {layer.name!r} consumes unknown producer {producer!r}"
                )
            input_shapes.append(self._shapes[producer])
        shape = infer_output_shape(layer, input_shapes)
        self._layers[layer.name] = layer
        self._shapes[layer.name] = shape
        self._successors[layer.name] = []
        for producer in layer.inputs:
            self._successors[producer].append(layer.name)
        return layer

    # -- inspection ----------------------------------------------------------

    @property
    def input_shape(self) -> TensorShape:
        """Shape of the single input tensor."""
        return self._shapes["input"]

    def __len__(self) -> int:
        """Number of layers, input included."""
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __iter__(self) -> Iterator[Layer]:
        """Iterate layers in topological (insertion) order."""
        return iter(self._layers.values())

    def layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        try:
            return self._layers[name]
        except KeyError:
            raise UnknownLayerError(f"no layer named {name!r} in {self.name}") from None

    def output_shape(self, name: str) -> TensorShape:
        """The output shape of layer ``name``."""
        if name not in self._shapes:
            raise UnknownLayerError(f"no layer named {name!r} in {self.name}")
        return self._shapes[name]

    def input_shapes(self, name: str) -> list[TensorShape]:
        """Shapes of the tensors feeding layer ``name``."""
        return [self._shapes[p] for p in self.layer(name).inputs]

    def layers(self, include_input: bool = False) -> list[Layer]:
        """Layers in topological order; the INPUT node is skipped by default.

        The schedulable layers (everything except INPUT) are what the
        search assigns primitives to.
        """
        out = list(self._layers.values())
        if include_input:
            return out
        return [l for l in out if l.kind is not LayerKind.INPUT]

    def predecessors(self, name: str) -> list[Layer]:
        """Producer layers of ``name``."""
        return [self._layers[p] for p in self.layer(name).inputs]

    def successors(self, name: str) -> list[Layer]:
        """Consumer layers of ``name``."""
        self.layer(name)
        return [self._layers[s] for s in self._successors[name]]

    def edges(self, include_input: bool = False) -> list[tuple[str, str]]:
        """All ``(producer, consumer)`` pairs in topological order.

        These are exactly the sites where a compatibility layer (layout
        conversion and/or processor transfer) may be inserted (Fig. 3).
        """
        out: list[tuple[str, str]] = []
        for layer in self._layers.values():
            for producer in layer.inputs:
                if producer == "input" and not include_input:
                    continue
                out.append((producer, layer.name))
        return out

    @property
    def output_layer(self) -> Layer:
        """The unique sink of the graph.

        Raises :class:`~repro.errors.GraphError` if the graph has zero or
        several sinks — all zoo networks end in a single classifier /
        detector head.
        """
        sinks = [
            l
            for l in self._layers.values()
            if not self._successors[l.name] and l.kind is not LayerKind.INPUT
        ]
        if len(sinks) != 1:
            raise GraphError(
                f"{self.name} has {len(sinks)} output layers, expected exactly 1"
            )
        return sinks[0]

    # -- whole-network accounting --------------------------------------------

    def total_flops(self) -> float:
        """Total forward-pass FLOPs across all layers."""
        from repro.nn.flops import layer_flops

        return sum(layer_flops(l, self) for l in self.layers())

    def total_weight_bytes(self) -> float:
        """Total parameter bytes across all layers."""
        from repro.nn.flops import layer_weight_bytes

        return sum(layer_weight_bytes(l, self) for l in self.layers())

    def validate(self) -> None:
        """Re-check global structural invariants.

        Construction already enforces acyclicity (consume-before-produce),
        shape consistency and name uniqueness; this re-validates edge
        symmetry and that exactly one sink exists.  Cheap enough to run in
        tests after any graph surgery.
        """
        for layer in self._layers.values():
            for producer in layer.inputs:
                if layer.name not in self._successors.get(producer, []):
                    raise GraphError(
                        f"edge {producer!r}->{layer.name!r} missing successor record"
                    )
        _ = self.output_layer

    def __repr__(self) -> str:
        return (
            f"NetworkGraph({self.name!r}, layers={len(self.layers())}, "
            f"input={self.input_shape})"
        )
