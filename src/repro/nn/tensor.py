"""Logical tensor shapes.

Shapes are *logical* ``(channels, height, width)`` triples for a batch of
one image — the paper measures single-image latency.  The physical memory
layout (NCHW, NHWC, lowered buffers, ...) is a property of the *primitive*
executing a layer, not of the tensor itself; see
:mod:`repro.backends.layout`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError

#: All zoo networks and all Table II measurements use fp32 (paper §VI-A).
DTYPE_BYTES = 4


@dataclass(frozen=True, order=True)
class TensorShape:
    """A ``(channels, height, width)`` logical activation shape."""

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        for field_name in ("channels", "height", "width"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise ShapeError(
                    f"TensorShape.{field_name} must be a positive int, got {value!r}"
                )

    @property
    def numel(self) -> int:
        """Number of scalar elements."""
        return self.channels * self.height * self.width

    @property
    def nbytes(self) -> int:
        """Size in bytes at fp32."""
        return self.numel * DTYPE_BYTES

    @property
    def spatial(self) -> tuple[int, int]:
        """The ``(height, width)`` pair."""
        return (self.height, self.width)

    def flattened(self) -> "TensorShape":
        """The shape after a flatten layer: all elements in channels."""
        return TensorShape(self.numel, 1, 1)

    def with_channels(self, channels: int) -> "TensorShape":
        """Same spatial extent, different channel count."""
        return TensorShape(channels, self.height, self.width)

    def __str__(self) -> str:
        return f"{self.channels}x{self.height}x{self.width}"
