"""The primitive abstraction.

A primitive is one concrete way to execute one layer kind: a (library,
algorithm, implementation, BLAS backend) tuple bound to a processor and a
layout — exactly the state parameters of the paper's Table I.  Libraries
instantiate subclasses; the engine and the search only ever use this
interface.
"""

from __future__ import annotations

import abc

from repro.backends.layout import Layout
from repro.errors import UnsupportedLayerError
from repro.hw.platform import Platform
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer


class Primitive(abc.ABC):
    """One executable implementation of a family of layer kinds.

    Subclasses set the identification attributes and implement
    :meth:`supports` / :meth:`_model_ms`.  Instances are stateless and
    shared; identity is the :attr:`uid`.
    """

    #: Library name (paper Table I "Acceleration Library").
    library: str = "?"
    #: Routine type (paper Table I "Algorithm"), e.g. "winograd", "gemm".
    algorithm: str = "?"
    #: Sub-routine / lowering method (paper Table I "Algorithm impl").
    impl: str = ""
    #: BLAS backend name for BLAS-backed primitives (paper Table I).
    blas: str | None = None
    #: Processor this primitive executes on.
    processor: ProcessorKind = ProcessorKind.CPU
    #: Layout consumed and produced.
    layout: Layout = Layout.NCHW

    @property
    def uid(self) -> str:
        """Stable unique identifier, e.g. ``"blas.gemm.im2col@openblas"``."""
        parts = [self.library, self.algorithm]
        if self.impl:
            parts.append(self.impl)
        uid = ".".join(parts)
        if self.blas:
            uid += f"@{self.blas}"
        return uid

    # -- coverage -------------------------------------------------------------

    @abc.abstractmethod
    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        """Whether this primitive can execute ``layer`` of ``graph``."""

    # -- cost ----------------------------------------------------------------

    @abc.abstractmethod
    def _model_ms(
        self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel
    ) -> float:
        """Noiseless model time on ``proc``; coverage already checked."""

    def estimate_ms(self, layer: Layer, graph: NetworkGraph, platform: Platform) -> float:
        """Noiseless execution time of ``layer`` on ``platform``.

        Raises :class:`~repro.errors.UnsupportedLayerError` outside this
        primitive's coverage, and :class:`~repro.errors.PlatformError` if
        the platform lacks the required processor.
        """
        if not self.supports(layer, graph):
            raise UnsupportedLayerError(
                f"{self.uid} does not support layer {layer.name!r} ({layer.kind})"
            )
        proc = platform.processor(self.processor)
        return self._model_ms(layer, graph, proc)

    # -- niceties --------------------------------------------------------------

    def describe(self) -> str:
        """One-line description for reports."""
        blas = f" (BLAS: {self.blas})" if self.blas else ""
        return f"{self.uid} [{self.processor}/{self.layout}]{blas}"

    def __repr__(self) -> str:
        return f"<Primitive {self.uid}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Primitive) and self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)
