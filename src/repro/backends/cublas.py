"""cuBLAS: BLAS routines for Nvidia GPUs (paper §III-B, [27]).

"We have only used the GEMV routine for FC layer" — coverage is exactly
the fully-connected layer.  At batch 1 the GEMV streams the whole weight
matrix once, so it is bound by GPU memory bandwidth; for AlexNet's 151 MB
fc6 this beats the CPU by the bandwidth ratio, which is the mechanism
behind QS-DNN's large wins over pure cuDNN on FC-heavy networks.
"""

from __future__ import annotations

from repro.backends import cost
from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.types import LayerKind


class CublasGemvFC(Primitive):
    """cublasSgemv for fully-connected inference."""

    library = "cublas"
    algorithm = "gemv"
    impl = "sgemv"
    processor = ProcessorKind.GPU
    layout = Layout.NCHW

    EFF_COMPUTE = 0.30
    EFF_MEMORY = 0.80

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.FULLY_CONNECTED

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.gemv_ms(layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE)


def primitives() -> list[Primitive]:
    """The single cuBLAS primitive (GEMV for FC)."""
    return [CublasGemvFC()]
