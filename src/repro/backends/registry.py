"""Design spaces: which primitives compete on a given platform mode.

Table II reports two modes: **CPU** (single A57 thread; Vanilla, BLAS,
NNPACK, ArmCL, Sparse compete) and **GPGPU** (the CPU libraries plus
cuDNN and cuBLAS, with transfer penalties on every processor switch).
A design space is the set of primitives the agent may pick from; the
worst-case size is ``N_I ^ N_L`` (paper §IV-A, maximum N_I = 13 here).
"""

from __future__ import annotations

import enum

from repro.backends import armcl, blas, cublas, cudnn, nnpack, sparse, vanilla
from repro.backends.primitive import Primitive
from repro.errors import ConfigError, NoPrimitiveError
from repro.hw.platform import Platform
from repro.hw.processor import ProcessorKind
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer


class Mode(enum.Enum):
    """Table II's two platform modes."""

    CPU = "cpu"
    GPGPU = "gpgpu"

    def __str__(self) -> str:
        return self.value


#: Library modules contributing to each mode.
_CPU_LIBRARIES = (vanilla, blas, nnpack, armcl, sparse)
_GPU_LIBRARIES = (cudnn, cublas)


def registered_libraries() -> tuple[str, ...]:
    """Library names in registration order (CPU modules, then GPU).

    This is the canonical one-hot ordering for feature maps that
    encode "which library" (``ext/linear_q``, ``core/priors``):
    deriving it here means adding a backend module extends the
    encoding instead of silently misaligning trained weights against
    a stale hardcoded tuple.
    """
    names: list[str] = []
    for module in _CPU_LIBRARIES + _GPU_LIBRARIES:
        for primitive in module.primitives():
            if primitive.library not in names:
                names.append(primitive.library)
    return tuple(names)


class DesignSpace:
    """The searchable set of primitives for one platform mode.

    Guarantees Vanilla coverage: every layer kind of every graph has at
    least one candidate, so any network is schedulable.
    """

    def __init__(self, mode: Mode, platform: Platform,
                 primitives: list[Primitive] | None = None) -> None:
        self.mode = mode
        self.platform = platform
        if primitives is None:
            modules = list(_CPU_LIBRARIES)
            if mode is Mode.GPGPU:
                modules += list(_GPU_LIBRARIES)
            primitives = [p for m in modules for p in m.primitives()]
        available = platform.kinds
        self._primitives = tuple(
            p for p in primitives if p.processor in available
        )
        if mode is Mode.GPGPU and not platform.has(ProcessorKind.GPU):
            raise ConfigError(
                f"GPGPU mode requires a GPU on platform {platform.name}"
            )
        uids = [p.uid for p in self._primitives]
        if len(set(uids)) != len(uids):
            dupes = sorted({u for u in uids if uids.count(u) > 1})
            raise ConfigError(f"duplicate primitive uids: {dupes}")
        self._by_uid = {p.uid: p for p in self._primitives}

    # -- enumeration -----------------------------------------------------------

    @property
    def primitives(self) -> tuple[Primitive, ...]:
        """Every primitive in this space."""
        return self._primitives

    def primitive(self, uid: str) -> Primitive:
        """Look a primitive up by uid."""
        try:
            return self._by_uid[uid]
        except KeyError:
            raise NoPrimitiveError(f"no primitive {uid!r} in {self.mode} space") from None

    def library_names(self) -> list[str]:
        """Sorted names of all libraries contributing primitives."""
        return sorted({p.library for p in self._primitives})

    def primitives_of_library(self, library: str) -> list[Primitive]:
        """All primitives belonging to one library."""
        out = [p for p in self._primitives if p.library == library]
        if not out:
            raise NoPrimitiveError(
                f"library {library!r} not in {self.mode} space; "
                f"have {self.library_names()}"
            )
        return out

    # -- per-layer candidates -----------------------------------------------------

    def candidates(self, layer: Layer, graph: NetworkGraph) -> list[Primitive]:
        """All primitives able to execute ``layer``, in stable uid order.

        Raises :class:`~repro.errors.NoPrimitiveError` if empty — which
        cannot happen while Vanilla is part of the space.
        """
        out = sorted(
            (p for p in self._primitives if p.supports(layer, graph)),
            key=lambda p: p.uid,
        )
        if not out:
            raise NoPrimitiveError(
                f"no primitive supports layer {layer.name!r} ({layer.kind}) "
                f"in {self.mode} space"
            )
        return out

    def max_candidates(self, graph: NetworkGraph) -> int:
        """The paper's N_I: the largest per-layer candidate count."""
        return max(len(self.candidates(l, graph)) for l in graph.layers())

    def space_size_log10(self, graph: NetworkGraph) -> float:
        """log10 of the full design-space size (product of candidate counts)."""
        import math

        total = 0.0
        for layer in graph.layers():
            total += math.log10(len(self.candidates(layer, graph)))
        return total

    def __repr__(self) -> str:
        return (
            f"DesignSpace(mode={self.mode}, platform={self.platform.name}, "
            f"primitives={len(self._primitives)})"
        )


def cpu_space(platform: Platform) -> DesignSpace:
    """The CPU-mode design space (Table II, left half)."""
    return DesignSpace(Mode.CPU, platform)


def gpgpu_space(platform: Platform) -> DesignSpace:
    """The GPGPU-mode design space (Table II, right half)."""
    return DesignSpace(Mode.GPGPU, platform)


def design_space(mode: Mode, platform: Platform) -> DesignSpace:
    """Build the design space for ``mode`` on ``platform``."""
    if mode is Mode.CPU:
        return cpu_space(platform)
    if mode is Mode.GPGPU:
        return gpgpu_space(platform)
    raise ConfigError(f"unknown mode {mode!r}")
