"""Arm Compute Library (paper §III-B): NEON kernels for Arm CPUs.

Per the paper we use "Winograd transformation and BLAS routines for
convolutional layers and specific-optimized code for Depth-Wise
convolutions".  ArmCL's NEON kernels prefer NHWC, so mixing ArmCL with
NCHW libraries costs layout conversions — a real effect the search must
weigh.

Calibration: hand-scheduled A57 kernels are the best CPU code in the
set (Winograd at ~65 % of peak).  The depth-wise kernel is the only
*fast* depth-wise implementation on the platform — the reason MobileNet's
learned GPGPU schedule pulls depth-wise layers back to the CPU (paper
§VI-A).  ArmCL's function objects carry a noticeable configure/dispatch
cost per run (~12 us), so tiny element-wise layers can still lose to
Vanilla's bare loops.
"""

from __future__ import annotations

from repro.backends import cost
from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.types import LayerKind

#: Per-run dispatch overhead of ArmCL function objects (ms).  Old ArmCL
#: re-validates window/padding state on every NEFunction::run(), which
#: costs real microseconds — enough for Vanilla's bare loops to win on
#: small element-wise layers (the paper's MobileNet schedule keeps
#: "certain ReLU and B-Norm layers from Vanilla").
DISPATCH_OVERHEAD_MS = 0.018


class _ArmclPrimitive(Primitive):
    library = "armcl"
    processor = ProcessorKind.CPU
    layout = Layout.NHWC


class ArmclWinogradConv(_ArmclPrimitive):
    """Winograd F(2x2, 3x3): the fastest CPU convolution *on deep layers*.

    The transformed-domain GEMM batches over input channels and only
    saturates beyond ~48 of them — NNPACK's smaller tiles win the
    shallow early layers, ArmCL the deep trunk (the crossover structure
    the CPU-mode search exploits).
    """

    algorithm = "winograd"
    impl = "f2x2_3x3"

    EFF_COMPUTE = 0.70
    HALF_CHANNELS = 48.0
    EFF_MEMORY = 0.70
    TRANSFORM_TRAFFIC = 2.5

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return (
            layer.kind is LayerKind.CONV and layer.kernel == 3 and layer.stride == 1
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        eff = self.EFF_COMPUTE * cost.channel_ramp(
            cost.input_channels(layer, graph), self.HALF_CHANNELS
        )
        return (
            cost.winograd_ms(
                layer, graph, proc, eff, self.EFF_MEMORY, self.TRANSFORM_TRAFFIC
            )
            + DISPATCH_OVERHEAD_MS
        )


class ArmclWinograd4x4Conv(_ArmclPrimitive):
    """Winograd F(4x4, 3x3): 4x multiply reduction, heavier transforms.

    The larger tile quarters the multiplies but needs even deeper
    channels to keep its transform GEMMs fat, and moves ~40 % more
    transform traffic — so it overtakes F(2x2) only on the deep,
    low-resolution trunk (the classic F(2x2)/F(4x4) crossover).
    """

    algorithm = "winograd"
    impl = "f4x4_3x3"

    EFF_COMPUTE = 0.55
    HALF_CHANNELS = 96.0
    EFF_MEMORY = 0.70
    TRANSFORM_TRAFFIC = 3.5
    FLOP_DISCOUNT = 4.0

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return (
            layer.kind is LayerKind.CONV and layer.kernel == 3 and layer.stride == 1
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        from repro.nn.flops import layer_flops, layer_io_bytes, layer_weight_bytes

        eff = self.EFF_COMPUTE * cost.channel_ramp(
            cost.input_channels(layer, graph), self.HALF_CHANNELS
        )
        flops = layer_flops(layer, graph) / self.FLOP_DISCOUNT
        traffic = self.TRANSFORM_TRAFFIC * (
            layer_io_bytes(layer, graph) + layer_weight_bytes(layer, graph)
        )
        eff = max(eff * cost.utilization(flops, proc), 1e-6)
        return proc.roofline_ms(flops, traffic, eff, self.EFF_MEMORY) + (
            DISPATCH_OVERHEAD_MS
        )


class ArmclGemmConv(_ArmclPrimitive):
    """GEMM-based convolution (internal im2row over NHWC)."""

    algorithm = "gemm"
    impl = "neon"

    EFF_COMPUTE = 0.58
    EFF_MEMORY = 0.70
    LOWERING_EFFICIENCY = 0.65

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONV

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        dims = cost.conv_gemm_dims(layer, graph)
        total = cost.gemm_ms(dims, proc, self.EFF_COMPUTE, self.EFF_MEMORY)
        if cost.needs_lowering(layer):
            total += cost.lowering_ms(dims, proc, self.LOWERING_EFFICIENCY)
        return total + DISPATCH_OVERHEAD_MS


class ArmclDepthwiseConv(_ArmclPrimitive):
    """The specifically-optimized NEON depth-wise kernel (paper §III-B)."""

    algorithm = "depthwise"
    impl = "neon3x3"

    EFF_COMPUTE = 0.45
    EFF_MEMORY = 0.70

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.DEPTHWISE_CONV

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return (
            cost.direct_ms(layer, graph, proc, self.EFF_COMPUTE, self.EFF_MEMORY)
            + DISPATCH_OVERHEAD_MS
        )


class ArmclPooling(_ArmclPrimitive):
    """NEON pooling (max and average, including global)."""

    algorithm = "direct"
    impl = "pool"

    EFF_COMPUTE = 0.35
    EFF_MEMORY = 0.80

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG)

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE,
            extra_overhead_ms=DISPATCH_OVERHEAD_MS,
        )


class ArmclElementwise(_ArmclPrimitive):
    """NEON ReLU / BN / eltwise streams."""

    algorithm = "direct"
    impl = "eltwise"

    EFF_COMPUTE = 0.45
    EFF_MEMORY = 0.85

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind in (
            LayerKind.RELU,
            LayerKind.BATCH_NORM,
            LayerKind.ELTWISE_ADD,
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE,
            extra_overhead_ms=DISPATCH_OVERHEAD_MS,
        )


class ArmclLRN(_ArmclPrimitive):
    """NEON normalization layer."""

    algorithm = "direct"
    impl = "lrn"

    EFF_COMPUTE = 0.30
    EFF_MEMORY = 0.60

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.LRN

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE,
            extra_overhead_ms=DISPATCH_OVERHEAD_MS,
        )


class ArmclSoftmax(_ArmclPrimitive):
    """NEON softmax."""

    algorithm = "direct"
    impl = "softmax"

    EFF_COMPUTE = 0.15
    EFF_MEMORY = 0.70

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.SOFTMAX

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE,
            extra_overhead_ms=DISPATCH_OVERHEAD_MS,
        )


class ArmclConcat(_ArmclPrimitive):
    """Channel concat in NHWC is a strided interleave (slower than NCHW)."""

    algorithm = "copy"
    impl = "concat"

    EFF_MEMORY = 0.50

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONCAT

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY,
            extra_overhead_ms=DISPATCH_OVERHEAD_MS,
        )


class ArmclFullyConnected(_ArmclPrimitive):
    """NEON GEMV for fully-connected inference."""

    algorithm = "gemv"
    impl = "neon"

    EFF_COMPUTE = 0.50
    EFF_MEMORY = 0.80

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.FULLY_CONNECTED

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return (
            cost.gemv_ms(layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE)
            + DISPATCH_OVERHEAD_MS
        )


def primitives() -> list[Primitive]:
    """All ArmCL primitives."""
    return [
        ArmclWinogradConv(),
        ArmclWinograd4x4Conv(),
        ArmclGemmConv(),
        ArmclDepthwiseConv(),
        ArmclPooling(),
        ArmclElementwise(),
        ArmclLRN(),
        ArmclSoftmax(),
        ArmclConcat(),
        ArmclFullyConnected(),
    ]
