"""cuDNN: Nvidia's GPU primitives (paper §III-B, [9]).

Coverage reproduces the paper's crucial caveat: **no fully-connected
primitive** ("It is important to remark that this library does not
include a specific implementation for FC layer") — so a pure-cuDNN
schedule executes FC layers with Vanilla on the CPU, which is exactly
what QS-DNN learns to avoid via cuBLAS (paper §VI-A on AlexNet/VGG19).

Calibration (TX-2-era cuDNN 7):

* Winograd / implicit-GEMM convolutions reach 55-70 % of the Pascal
  peak *for large kernels*; the utilization ramp (half-saturation at
  ~20 MFLOPs) models how small layers leave most of the 256 lanes idle.
* Depth-wise convolutions go through grouped conv — notoriously bad in
  this era (one tiny GEMM per channel): a few percent of peak, usually
  losing to ArmCL's NEON depth-wise kernel on the CPU.
* Every launch costs ~35 us, so element-wise GPU layers only pay off on
  large tensors.
"""

from __future__ import annotations

from repro.backends import cost
from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.types import LayerKind


class _CudnnPrimitive(Primitive):
    library = "cudnn"
    processor = ProcessorKind.GPU
    layout = Layout.NCHW


class CudnnWinogradConv(_CudnnPrimitive):
    """cudnnConvolutionForward with WINOGRAD algo (3x3, stride 1)."""

    algorithm = "winograd"
    impl = "nonfused"

    EFF_COMPUTE = 0.70
    EFF_MEMORY = 0.75
    TRANSFORM_TRAFFIC = 2.0

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return (
            layer.kind is LayerKind.CONV and layer.kernel == 3 and layer.stride == 1
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.winograd_ms(
            layer, graph, proc, self.EFF_COMPUTE, self.EFF_MEMORY,
            self.TRANSFORM_TRAFFIC,
        )


class CudnnImplicitGemmConv(_CudnnPrimitive):
    """IMPLICIT_PRECOMP_GEMM: the general-purpose cuDNN convolution."""

    algorithm = "implicit_gemm"
    impl = "precomp"

    EFF_COMPUTE = 0.55
    EFF_MEMORY = 0.70

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONV

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        dims = cost.conv_gemm_dims(layer, graph)
        return cost.gemm_ms(dims, proc, self.EFF_COMPUTE, self.EFF_MEMORY)


class CudnnFFTConv(_CudnnPrimitive):
    """CUDNN_CONVOLUTION_FWD_ALGO_FFT_TILING for large kernels (>= 5)."""

    algorithm = "fft"
    impl = "tiling"

    EFF_COMPUTE = 0.50
    EFF_MEMORY = 0.60
    TRANSFORM_TRAFFIC = 4.0
    MIN_KERNEL = 5

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return (
            layer.kind is LayerKind.CONV
            and layer.stride == 1
            and layer.kernel >= self.MIN_KERNEL
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.fft_ms(
            layer, graph, proc, self.EFF_COMPUTE, self.EFF_MEMORY,
            self.TRANSFORM_TRAFFIC,
        )


class CudnnDepthwiseConv(_CudnnPrimitive):
    """Grouped convolution with groups == channels: the 2018 slow path."""

    algorithm = "grouped"
    impl = "depthwise"

    EFF_COMPUTE = 0.015
    EFF_MEMORY = 0.06

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.DEPTHWISE_CONV

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.direct_ms(layer, graph, proc, self.EFF_COMPUTE, self.EFF_MEMORY)


class CudnnPooling(_CudnnPrimitive):
    """cudnnPoolingForward (max and average, incl. global)."""

    algorithm = "direct"
    impl = "pool"

    EFF_COMPUTE = 0.30
    EFF_MEMORY = 0.80

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG)

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class CudnnElementwise(_CudnnPrimitive):
    """Activation / BN / add-tensor kernels: bandwidth-bound + launch."""

    algorithm = "direct"
    impl = "eltwise"

    EFF_COMPUTE = 0.40
    EFF_MEMORY = 0.85

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind in (
            LayerKind.RELU,
            LayerKind.BATCH_NORM,
            LayerKind.ELTWISE_ADD,
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class CudnnLRN(_CudnnPrimitive):
    """cudnnLRNCrossChannelForward."""

    algorithm = "direct"
    impl = "lrn"

    EFF_COMPUTE = 0.25
    EFF_MEMORY = 0.70

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.LRN

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class CudnnSoftmax(_CudnnPrimitive):
    """cudnnSoftmaxForward."""

    algorithm = "direct"
    impl = "softmax"

    EFF_COMPUTE = 0.20
    EFF_MEMORY = 0.60

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.SOFTMAX

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class CudnnConcat(_CudnnPrimitive):
    """Device-side concat via cudaMemcpyAsync per input."""

    algorithm = "copy"
    impl = "concat"

    EFF_MEMORY = 0.70

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONCAT

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(layer, graph, proc, self.EFF_MEMORY)


def primitives() -> list[Primitive]:
    """All cuDNN primitives (note: no fully-connected coverage)."""
    return [
        CudnnWinogradConv(),
        CudnnImplicitGemmConv(),
        CudnnFFTConv(),
        CudnnDepthwiseConv(),
        CudnnPooling(),
        CudnnElementwise(),
        CudnnLRN(),
        CudnnSoftmax(),
        CudnnConcat(),
    ]
