"""Cost-model building blocks shared by the library modules.

Each helper prices one algorithmic shape (lowered GEMM, Winograd, FFT,
direct loops, memory-bound passes) on a processor roofline.  Library
modules compose these with their own efficiency calibration; the
rationale for each constant lives next to the library that owns it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.flops import layer_flops, layer_io_bytes, layer_weight_bytes
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.tensor import DTYPE_BYTES

#: FLOPs at which a processor reaches half of a primitive's peak
#: efficiency.  GPUs need big kernels to fill their lanes; a single CPU
#: core saturates almost immediately.
HALF_SATURATION_FLOPS = {
    ProcessorKind.CPU: 5.0e4,
    ProcessorKind.GPU: 3.0e7,
}

#: Winograd F(2x2, 3x3): 2.25x multiply reduction on 3x3 stride-1 convs.
WINOGRAD_FLOP_DISCOUNT = 2.25


def utilization(flops: float, proc: ProcessorModel) -> float:
    """Size-dependent utilization ramp in (0, 1].

    ``flops / (flops + half_sat)``: tiny kernels cannot fill the machine,
    which is why GoogLeNet's small branch convolutions often run faster
    on the CPU than on the GPU despite the 40x peak-FLOPS gap.
    """
    half = HALF_SATURATION_FLOPS[proc.kind]
    if flops <= 0:
        return 1.0 / (1.0 + half)  # arbitrarily small but positive
    return flops / (flops + half)


def ramped(eff_max: float, flops: float, proc: ProcessorModel) -> float:
    """Peak efficiency scaled by the utilization ramp (floored > 0)."""
    return max(eff_max * utilization(flops, proc), 1e-6)


def channel_ramp(channels: int, half_channels: float) -> float:
    """Efficiency ramp in the input-channel dimension.

    Winograd implementations batch their transformed-domain GEMMs over
    input channels; with few channels those GEMMs are skinny and the
    kernel starves.  Different libraries saturate at different depths,
    which produces the per-shape crossovers real benchmarks show (e.g.
    NNPACK beating ArmCL on shallow layers and losing on deep ones).
    """
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    return channels / (channels + half_channels)


def input_channels(layer: Layer, graph: NetworkGraph) -> int:
    """Input channel count of a layer (its first producer's channels)."""
    return graph.input_shapes(layer.name)[0].channels


@dataclass(frozen=True)
class GemmDims:
    """Dimensions of the GEMM a lowered convolution performs."""

    m: int  # output channels
    n: int  # output pixels
    k: int  # kernel*kernel*input channels

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    @property
    def nbytes(self) -> float:
        """Traffic of one pass: A (weights) + B (patches) + C (output)."""
        return float((self.m * self.k + self.k * self.n + self.m * self.n) * DTYPE_BYTES)


def conv_gemm_dims(layer: Layer, graph: NetworkGraph) -> GemmDims:
    """The GEMM performed by an im2col/im2row-lowered convolution."""
    in_shape = graph.input_shapes(layer.name)[0]
    out_shape = graph.output_shape(layer.name)
    return GemmDims(
        m=out_shape.channels,
        n=out_shape.height * out_shape.width,
        k=layer.kernel * layer.kernel * in_shape.channels,
    )


def needs_lowering(layer: Layer) -> bool:
    """1x1 stride-1 unpadded convs are already in GEMM form."""
    return not (layer.kernel == 1 and layer.stride == 1 and layer.padding == 0)


def gemm_ms(
    dims: GemmDims,
    proc: ProcessorModel,
    eff_compute: float,
    eff_memory: float,
) -> float:
    """A single GEMM with utilization ramp and per-call overhead."""
    eff = ramped(eff_compute, dims.flops, proc)
    return proc.roofline_ms(dims.flops, dims.nbytes, eff, eff_memory)


def lowering_ms(dims: GemmDims, proc: ProcessorModel, eff_memory: float) -> float:
    """Materializing the K x N patch matrix (im2col / im2row).

    One strided read of the input plus one dense write of the lowered
    buffer: 2 * K * N elements of traffic.
    """
    traffic = 2.0 * dims.k * dims.n * DTYPE_BYTES
    return proc.memory_ms(traffic, eff_memory)


def kn2row_extra_ms(
    layer: Layer, dims: GemmDims, proc: ProcessorModel, eff_memory: float
) -> float:
    """kn2row's post-pass: k^2 shifted accumulations into the output.

    No lowering buffer is built (the win over im2col), but each of the
    k^2 partial GEMM outputs is read and accumulated once.  Free for 1x1
    convolutions — which is why kn2row is the BLAS lowering of choice for
    point-wise layers.
    """
    passes = layer.kernel * layer.kernel - 1
    if passes <= 0:
        return 0.0
    traffic = 2.0 * passes * dims.m * dims.n * DTYPE_BYTES
    return proc.memory_ms(traffic, eff_memory)


def winograd_ms(
    layer: Layer,
    graph: NetworkGraph,
    proc: ProcessorModel,
    eff_compute: float,
    eff_memory: float,
    transform_traffic_factor: float,
) -> float:
    """Winograd F(2x2, 3x3): discounted multiplies + transform traffic."""
    flops = layer_flops(layer, graph) / WINOGRAD_FLOP_DISCOUNT
    io = layer_io_bytes(layer, graph) + layer_weight_bytes(layer, graph)
    traffic = transform_traffic_factor * io
    eff = ramped(eff_compute, flops, proc)
    return proc.roofline_ms(flops, traffic, eff, eff_memory)


def fft_flop_discount(kernel: int) -> float:
    """Effective FLOP reduction of FFT convolution for a k x k kernel.

    Transform cost amortizes like k^2/8: barely break-even at 3x3
    (which is why FFT primitives only cover kernels >= 5), ~3x at 5x5,
    ~15x at 11x11.
    """
    return max(kernel * kernel / 8.0, 1.0)


def fft_ms(
    layer: Layer,
    graph: NetworkGraph,
    proc: ProcessorModel,
    eff_compute: float,
    eff_memory: float,
    transform_traffic_factor: float = 4.0,
) -> float:
    """FFT convolution: discounted FLOPs, heavy transform traffic."""
    flops = layer_flops(layer, graph) / fft_flop_discount(layer.kernel)
    io = layer_io_bytes(layer, graph) + layer_weight_bytes(layer, graph)
    traffic = transform_traffic_factor * io
    eff = ramped(eff_compute, flops, proc)
    return proc.roofline_ms(flops, traffic, eff, eff_memory)


def direct_ms(
    layer: Layer,
    graph: NetworkGraph,
    proc: ProcessorModel,
    eff_compute: float,
    eff_memory: float,
) -> float:
    """A direct (loop-nest) implementation priced straight off the roofline."""
    flops = layer_flops(layer, graph)
    traffic = layer_io_bytes(layer, graph) + layer_weight_bytes(layer, graph)
    eff = ramped(eff_compute, flops, proc)
    return proc.roofline_ms(flops, traffic, eff, eff_memory)


def memory_op_ms(
    layer: Layer,
    graph: NetworkGraph,
    proc: ProcessorModel,
    eff_memory: float,
    eff_compute: float = 0.5,
    extra_overhead_ms: float = 0.0,
) -> float:
    """Memory-bound ops (ReLU, BN, pooling, eltwise, concat, softmax)."""
    flops = layer_flops(layer, graph)
    traffic = layer_io_bytes(layer, graph) + layer_weight_bytes(layer, graph)
    eff = ramped(eff_compute, flops, proc) if flops > 0 else 1e-6
    busy = max(
        proc.compute_ms(flops, eff) if flops > 0 else 0.0,
        proc.memory_ms(traffic, eff_memory),
    )
    return busy + proc.overhead_ms + extra_overhead_ms


def gemv_ms(
    layer: Layer,
    graph: NetworkGraph,
    proc: ProcessorModel,
    eff_memory: float,
    eff_compute: float,
) -> float:
    """Fully-connected inference at batch 1: a weight-streaming GEMV."""
    flops = layer_flops(layer, graph)
    traffic = layer_io_bytes(layer, graph) + layer_weight_bytes(layer, graph)
    eff = ramped(eff_compute, flops, proc)
    return proc.roofline_ms(flops, traffic, eff, eff_memory)
