"""Vanilla: the dependency-free ANSI C reference library (paper §III-B).

Vanilla exists to guarantee that *every* layer of *any* network has at
least one implementation on any platform — it is the baseline of all
Table II speedups and the substitution default of the profiling phase.

Calibration: plain scalar C.  The convolution loop nest reaches ~2 % of
NEON peak (0.35 GFLOP/s on the A57 — the reason tuned libraries win by
1-2 orders of magnitude).  Trivially vectorizable streaming ops (ReLU,
BN, eltwise) fare much better because the compiler auto-vectorizes them
(~45 % of stream bandwidth); gather-heavy loops (pooling, LRN, layout-
sensitive windows) stay slow.
"""

from __future__ import annotations

from repro.backends import cost
from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.types import LayerKind


class _VanillaPrimitive(Primitive):
    """Common identification for all Vanilla primitives."""

    library = "vanilla"
    processor = ProcessorKind.CPU
    layout = Layout.NCHW


class VanillaDirectConv(_VanillaPrimitive):
    """Naive 6-deep convolution loop nest: ~2 % of peak."""

    algorithm = "direct"
    impl = "conv"

    EFF_COMPUTE = 0.022
    EFF_MEMORY = 0.30

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONV

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.direct_ms(layer, graph, proc, self.EFF_COMPUTE, self.EFF_MEMORY)


class VanillaDepthwiseConv(_VanillaPrimitive):
    """Per-channel direct loops; slightly better locality than full conv."""

    algorithm = "direct"
    impl = "depthwise"

    EFF_COMPUTE = 0.08
    EFF_MEMORY = 0.20

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.DEPTHWISE_CONV

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.direct_ms(layer, graph, proc, self.EFF_COMPUTE, self.EFF_MEMORY)


class VanillaFullyConnected(_VanillaPrimitive):
    """Scalar GEMV; sequential weight stream reaches ~half bandwidth."""

    algorithm = "gemv"
    impl = "naive"

    EFF_COMPUTE = 0.06
    EFF_MEMORY = 0.50

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.FULLY_CONNECTED

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.gemv_ms(layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE)


class VanillaPooling(_VanillaPrimitive):
    """Scalar window loops with strided gathers."""

    algorithm = "direct"
    impl = "pool"

    EFF_COMPUTE = 0.05
    EFF_MEMORY = 0.20

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind in (LayerKind.POOL_MAX, LayerKind.POOL_AVG)

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class VanillaElementwise(_VanillaPrimitive):
    """ReLU / BN / eltwise-add: simple streams the compiler vectorizes."""

    algorithm = "direct"
    impl = "eltwise"

    EFF_COMPUTE = 0.25
    EFF_MEMORY = 0.50

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind in (
            LayerKind.RELU,
            LayerKind.BATCH_NORM,
            LayerKind.ELTWISE_ADD,
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class VanillaLRN(_VanillaPrimitive):
    """Cross-channel LRN with scalar pow(): compute-starved."""

    algorithm = "direct"
    impl = "lrn"

    EFF_COMPUTE = 0.03
    EFF_MEMORY = 0.20

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.LRN

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class VanillaSoftmax(_VanillaPrimitive):
    """Scalar exp() loop; softmax tensors are tiny so this hardly matters."""

    algorithm = "direct"
    impl = "softmax"

    EFF_COMPUTE = 0.02
    EFF_MEMORY = 0.20

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.SOFTMAX

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class VanillaConcat(_VanillaPrimitive):
    """memcpy-based channel concatenation."""

    algorithm = "copy"
    impl = "concat"

    EFF_MEMORY = 0.45

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONCAT

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(layer, graph, proc, self.EFF_MEMORY)


class VanillaFlatten(_VanillaPrimitive):
    """A metadata-only view change."""

    algorithm = "view"
    impl = "flatten"

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.FLATTEN

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return proc.overhead_ms


def primitives() -> list[Primitive]:
    """All Vanilla primitives (full layer-kind coverage)."""
    return [
        VanillaDirectConv(),
        VanillaDepthwiseConv(),
        VanillaFullyConnected(),
        VanillaPooling(),
        VanillaElementwise(),
        VanillaLRN(),
        VanillaSoftmax(),
        VanillaConcat(),
        VanillaFlatten(),
    ]
