"""Sparse: compressed-weight implementations (paper §III-B).

"It includes multiple implementations which can be used to compress the
model representation in memory for convolutional and FC layers."

The model assumes magnitude-pruned weights at typical densities (35 %
for FC, 60 % for convolutions).  CSR storage adds ~50 % index overhead
per kept weight, and the gather-scatter inner loop runs at a fraction of
dense GEMM throughput.  Net effect, as in the paper's Table II: Sparse
occasionally wins on weight-heavy FC layers (it streams fewer bytes than
any dense GEMV) and loses on convolutions.
"""

from __future__ import annotations

from repro.backends import cost
from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.flops import layer_flops, layer_io_bytes, layer_weight_bytes
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.types import LayerKind

#: Fraction of weights kept after magnitude pruning, per layer kind.
DENSITY = {LayerKind.CONV: 0.60, LayerKind.FULLY_CONNECTED: 0.35}
#: CSR value + column-index storage per kept weight vs dense.
CSR_STORAGE_OVERHEAD = 1.5


class _SparsePrimitive(Primitive):
    library = "sparse"
    processor = ProcessorKind.CPU
    layout = Layout.NCHW

    EFF_COMPUTE = 0.15  # irregular gathers defeat the NEON pipelines
    EFF_MEMORY = 0.50

    def _sparse_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        density = DENSITY[layer.kind]
        flops = layer_flops(layer, graph) * density
        weight_traffic = (
            layer_weight_bytes(layer, graph) * density * CSR_STORAGE_OVERHEAD
        )
        traffic = layer_io_bytes(layer, graph) + weight_traffic
        eff = cost.ramped(self.EFF_COMPUTE, flops, proc)
        return proc.roofline_ms(flops, traffic, eff, self.EFF_MEMORY)


class SparseConv(_SparsePrimitive):
    """Sparse convolution over CSR weights."""

    algorithm = "csr"
    impl = "conv"

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONV

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return self._sparse_ms(layer, graph, proc)


class SparseFullyConnected(_SparsePrimitive):
    """Sparse GEMV: streams only the kept weights (plus indices)."""

    algorithm = "csr"
    impl = "fc"

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.FULLY_CONNECTED

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return self._sparse_ms(layer, graph, proc)


def primitives() -> list[Primitive]:
    """All Sparse primitives."""
    return [SparseConv(), SparseFullyConnected()]
