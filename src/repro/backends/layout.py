"""Tensor layouts and layout-conversion costs.

Each primitive consumes and produces one physical layout.  When an edge
of the network connects primitives that disagree, the engine inserts a
conversion layer (paper §IV-A: "a layout conversion layer is needed which
incurs in a penalty").

Degenerate tensors need no conversion: when the spatial extent is 1x1
(FC/global-pool outputs) or there is a single channel, NCHW and NHWC
describe byte-identical buffers.
"""

from __future__ import annotations

import enum

from repro.hw.processor import ProcessorModel
from repro.nn.tensor import TensorShape


class Layout(enum.Enum):
    """Physical activation layouts used by the libraries."""

    NCHW = "nchw"  # channels-first: Caffe, cuDNN default, BLAS im2col
    NHWC = "nhwc"  # channels-last: ArmCL NEON kernels, BLAS im2row

    def __str__(self) -> str:
        return self.value


def layouts_equivalent(shape: TensorShape) -> bool:
    """True when NCHW and NHWC coincide for this shape."""
    return (shape.height == 1 and shape.width == 1) or shape.channels == 1


#: A layout conversion is a full permuting read-write pass; the gather
#: side is strided, so it achieves roughly half of streaming bandwidth.
CONVERSION_BANDWIDTH_EFFICIENCY = 0.5


def conversion_ms(shape: TensorShape, processor: ProcessorModel) -> float:
    """Cost of converting one tensor between layouts on ``processor``.

    Charged by the engine to the *consuming* layer (paper §V-B: "the
    extra penalty is added to the inference time of the latter layer").
    Degenerate shapes convert for free.
    """
    if layouts_equivalent(shape):
        return 0.0
    traffic = 2.0 * shape.nbytes  # read everything, write everything
    return (
        processor.memory_ms(traffic, CONVERSION_BANDWIDTH_EFFICIENCY)
        + processor.overhead_ms
    )
