"""Acceleration-library substrate.

One module per library from the paper's §III-B (Vanilla, BLAS = ATLAS +
OpenBLAS, NNPACK, ArmCL, Sparse, cuDNN, cuBLAS).  Each library exposes
:class:`~repro.backends.primitive.Primitive` objects declaring

* which layer kinds they can execute (coverage is reproduced faithfully —
  e.g. cuDNN has **no** fully-connected primitive),
* the tensor layout they require (mismatches on a graph edge cost a
  layout-conversion penalty),
* the processor they run on (CPU/GPU crossings cost a transfer penalty),
* a calibrated roofline cost model used by the simulated board.
"""

from repro.backends.layout import Layout, layouts_equivalent, conversion_ms
from repro.backends.primitive import Primitive
from repro.backends.registry import (
    DesignSpace,
    Mode,
    cpu_space,
    gpgpu_space,
    design_space,
)

__all__ = [
    "Layout",
    "layouts_equivalent",
    "conversion_ms",
    "Primitive",
    "DesignSpace",
    "Mode",
    "cpu_space",
    "gpgpu_space",
    "design_space",
]
