"""BLAS group: ATLAS and OpenBLAS with im2col / im2row / kn2row lowering.

Paper §III-B: "This group includes ATLAS and openBLAS libraries which
implement GEMM and GEMV routines on CPU cores.  Any of these libraries
can use the following lowering methods: im2col, im2row and kn2row."

Coverage: convolutions (via lowering + GEMM) and fully-connected layers
(GEMV) only — everything else falls back to Vanilla during profiling,
mirroring how Anderson & Gregg profile only convolutions.

Calibration: OpenBLAS's hand-tuned NEON GEMM reaches ~55 % of peak on
A57-sized matrices; ATLAS's auto-generated kernels trail at ~38 %.
Lowering methods trade traffic for GEMM shape:

* **im2col** (NCHW) / **im2row** (NHWC): materialize the K x N patch
  matrix (2KN elements of extra traffic), then one big well-shaped GEMM.
* **kn2row** (NCHW): k^2 back-to-back 1x1 GEMMs with a shifted
  accumulation post-pass — no lowering buffer, so it is the cheapest
  path for 1x1 convolutions, but the accumulation traffic grows with
  k^2 for larger kernels.

ATLAS ships im2col and kn2row only (keeping the per-layer variant count
at the paper's maximum of 13 for a 3x3 convolution).
"""

from __future__ import annotations

from repro.backends import cost
from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.types import LayerKind

#: Peak GEMM efficiency per BLAS backend.
GEMM_EFFICIENCY = {"openblas": 0.55, "atlas": 0.38}
#: Peak GEMV (memory) efficiency per BLAS backend.
GEMV_EFFICIENCY = {"openblas": 0.85, "atlas": 0.60}
#: Bandwidth efficiency of the lowering copy loop.
LOWERING_MEMORY_EFFICIENCY = 0.60
#: Bandwidth efficiency of kn2row's accumulation pass.
KN2ROW_ACCUM_EFFICIENCY = 0.70
#: kn2row's k^2 small GEMMs run marginally below one big GEMM.
KN2ROW_GEMM_FACTOR = 0.95
#: GEMM memory-side efficiency (blocked, prefetched).
GEMM_MEMORY_EFFICIENCY = 0.70


class _BlasConv(Primitive):
    """Base for lowered-GEMM convolutions."""

    library = "blas"
    algorithm = "gemm"
    processor = ProcessorKind.CPU

    def __init__(self, blas: str) -> None:
        if blas not in GEMM_EFFICIENCY:
            raise ValueError(f"unknown BLAS backend {blas!r}")
        self.blas = blas

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.CONV


class BlasIm2colConv(_BlasConv):
    """im2col lowering (NCHW) + SGEMM.

    The generic lowering always materializes the K x N patch matrix —
    even for 1x1 convolutions (the library cannot assume the caller's
    tensor is already GEMM-shaped).  Skipping that copy on 1x1 layers is
    exactly what kn2row provides.
    """

    impl = "im2col"
    layout = Layout.NCHW

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        dims = cost.conv_gemm_dims(layer, graph)
        total = cost.gemm_ms(
            dims, proc, GEMM_EFFICIENCY[self.blas], GEMM_MEMORY_EFFICIENCY
        )
        total += cost.lowering_ms(dims, proc, LOWERING_MEMORY_EFFICIENCY)
        return total


class BlasIm2rowConv(_BlasConv):
    """im2row lowering (NHWC) + SGEMM; OpenBLAS only."""

    impl = "im2row"
    layout = Layout.NHWC

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        dims = cost.conv_gemm_dims(layer, graph)
        total = cost.gemm_ms(
            dims, proc, GEMM_EFFICIENCY[self.blas], GEMM_MEMORY_EFFICIENCY
        )
        total += cost.lowering_ms(dims, proc, LOWERING_MEMORY_EFFICIENCY)
        return total


class BlasKn2rowConv(_BlasConv):
    """kn2row: k^2 1x1 GEMMs + shifted accumulation (NCHW)."""

    impl = "kn2row"
    layout = Layout.NCHW

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        # kn2row requires unit stride (the shift-add trick breaks otherwise).
        return layer.kind is LayerKind.CONV and layer.stride == 1

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        dims = cost.conv_gemm_dims(layer, graph)
        eff = GEMM_EFFICIENCY[self.blas] * KN2ROW_GEMM_FACTOR
        total = cost.gemm_ms(dims, proc, eff, GEMM_MEMORY_EFFICIENCY)
        total += cost.kn2row_extra_ms(layer, dims, proc, KN2ROW_ACCUM_EFFICIENCY)
        return total


class BlasGemvFC(Primitive):
    """Fully-connected inference via SGEMV (weight-stream bound)."""

    library = "blas"
    algorithm = "gemv"
    processor = ProcessorKind.CPU
    layout = Layout.NCHW

    EFF_COMPUTE = 0.50

    def __init__(self, blas: str) -> None:
        if blas not in GEMV_EFFICIENCY:
            raise ValueError(f"unknown BLAS backend {blas!r}")
        self.blas = blas

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.FULLY_CONNECTED

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.gemv_ms(
            layer, graph, proc, GEMV_EFFICIENCY[self.blas], self.EFF_COMPUTE
        )


def primitives() -> list[Primitive]:
    """The BLAS group: OpenBLAS (3 lowerings) + ATLAS (2) + both GEMVs."""
    return [
        BlasIm2colConv("openblas"),
        BlasIm2rowConv("openblas"),
        BlasKn2rowConv("openblas"),
        BlasIm2colConv("atlas"),
        BlasKn2rowConv("atlas"),
        BlasGemvFC("openblas"),
        BlasGemvFC("atlas"),
    ]
