"""NNPACK: open-source CPU performance primitives (paper §III-B, [26]).

Coverage mirrors the real library's inference API: convolution via
Winograd (3x3 stride 1) and FFT (kernels >= 5, stride 1), max-pooling,
ReLU, softmax and fully-connected inference.  No batch-norm, no
average pooling, no depth-wise convolution, no LRN.

Calibration: NNPACK's PSIMD/NEON tuned transforms reach ~50 % of peak on
the Winograd path — good, but a notch below ArmCL's hand-scheduled A57
kernels.  Its FFT path is the only fast option for 5x5+ kernels on the
CPU (AlexNet conv2, GoogLeNet's 5x5 branches).
"""

from __future__ import annotations

from repro.backends import cost
from repro.backends.layout import Layout
from repro.backends.primitive import Primitive
from repro.hw.processor import ProcessorKind, ProcessorModel
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.types import LayerKind


class _NnpackPrimitive(Primitive):
    library = "nnpack"
    processor = ProcessorKind.CPU
    layout = Layout.NCHW


class NnpackWinogradConv(_NnpackPrimitive):
    """Winograd F(2x2, 3x3) with NEON transforms.

    NNPACK's small transform tiles saturate by ~12 input channels — it
    wins the shallow early layers over ArmCL (which needs ~48) and
    cedes the deep trunk.
    """

    algorithm = "winograd"
    impl = "f2x2_3x3"

    EFF_COMPUTE = 0.58
    HALF_CHANNELS = 12.0
    EFF_MEMORY = 0.60
    TRANSFORM_TRAFFIC = 3.0

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return (
            layer.kind is LayerKind.CONV and layer.kernel == 3 and layer.stride == 1
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        eff = self.EFF_COMPUTE * cost.channel_ramp(
            cost.input_channels(layer, graph), self.HALF_CHANNELS
        )
        return cost.winograd_ms(
            layer, graph, proc, eff, self.EFF_MEMORY, self.TRANSFORM_TRAFFIC
        )


class NnpackFFTConv(_NnpackPrimitive):
    """FFT-based convolution (16x16 tiles), kernels >= 5, stride 1."""

    algorithm = "fft"
    impl = "fft16x16"

    EFF_COMPUTE = 0.45
    EFF_MEMORY = 0.55
    TRANSFORM_TRAFFIC = 4.0
    MIN_KERNEL = 5
    MAX_KERNEL = 16

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return (
            layer.kind is LayerKind.CONV
            and layer.stride == 1
            and self.MIN_KERNEL <= layer.kernel <= self.MAX_KERNEL
        )

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.fft_ms(
            layer, graph, proc, self.EFF_COMPUTE, self.EFF_MEMORY,
            self.TRANSFORM_TRAFFIC,
        )


class NnpackMaxPool(_NnpackPrimitive):
    """Vectorized 2D max-pooling."""

    algorithm = "direct"
    impl = "maxpool"

    EFF_COMPUTE = 0.30
    EFF_MEMORY = 0.70

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.POOL_MAX

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class NnpackRelu(_NnpackPrimitive):
    """Vectorized ReLU."""

    algorithm = "direct"
    impl = "relu"

    EFF_COMPUTE = 0.40
    EFF_MEMORY = 0.80

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.RELU

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class NnpackSoftmax(_NnpackPrimitive):
    """Vectorized softmax."""

    algorithm = "direct"
    impl = "softmax"

    EFF_COMPUTE = 0.20
    EFF_MEMORY = 0.60

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.SOFTMAX

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.memory_op_ms(
            layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE
        )


class NnpackFullyConnected(_NnpackPrimitive):
    """Fully-connected inference (weight-stream bound SGEMV)."""

    algorithm = "gemv"
    impl = "inference"

    EFF_COMPUTE = 0.45
    EFF_MEMORY = 0.75

    def supports(self, layer: Layer, graph: NetworkGraph) -> bool:
        return layer.kind is LayerKind.FULLY_CONNECTED

    def _model_ms(self, layer: Layer, graph: NetworkGraph, proc: ProcessorModel) -> float:
        return cost.gemv_ms(layer, graph, proc, self.EFF_MEMORY, self.EFF_COMPUTE)


def primitives() -> list[Primitive]:
    """All NNPACK primitives."""
    return [
        NnpackWinogradConv(),
        NnpackFFTConv(),
        NnpackMaxPool(),
        NnpackRelu(),
        NnpackSoftmax(),
        NnpackFullyConnected(),
    ]
