"""E10 — MobileNet width-multiplier sweep (architecture-side ablation).

MobileNet-v1 ships reduced variants (alpha = 0.75 / 0.5 / 0.25).  The
search must keep winning as the network shrinks — and the *structure* of
the win should shift: thinner layers do less compute per transfer, so
the learned schedules progressively retreat from the GPU, the same
mechanism that makes LeNet-5 go pure-CPU.
"""

from __future__ import annotations

from repro import Mode, jetson_tx2
from repro.backends import gpgpu_space
from repro.baselines import best_single_library, chain_dp
from repro.engine import InferenceEngineOptimizer
from repro.hw.processor import ProcessorKind
from repro.utils.tables import AsciiTable
from repro.zoo.mobilenet import mobilenet_v1

from benchmarks.conftest import SEED

ALPHAS = [1.0, 0.75, 0.5, 0.25]


def test_width_multiplier_sweep(benchmark, tx2, emit):
    def run():
        rows = []
        for alpha in ALPHAS:
            graph = mobilenet_v1(width_multiplier=alpha)
            optimizer = InferenceEngineOptimizer(
                graph, tx2, mode=Mode.GPGPU, seed=SEED
            )
            lut = optimizer.profile()
            optimum = chain_dp(lut)
            bsl = best_single_library(lut)
            gpu_layers = sum(
                1
                for uid in optimum.best_assignments.values()
                if lut.meta[uid].processor is ProcessorKind.GPU
            )
            rows.append((alpha, optimum.best_ms, bsl.total_ms, gpu_layers,
                         len(lut.layers)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["alpha", "optimum (ms)", "BSL (ms)", "OPT vs BSL", "GPU layers"],
        title="E10 | MobileNet-v1 width multipliers, GPGPU mode",
    )
    for alpha, opt_ms, bsl_ms, gpu_layers, total in rows:
        table.add_row(
            [f"{alpha:g}", f"{opt_ms:.2f}", f"{bsl_ms:.2f}",
             f"{bsl_ms / opt_ms:.2f}x", f"{gpu_layers}/{total}"]
        )
    emit("width_multiplier", table.render())

    # Latency decreases monotonically with alpha.
    latencies = [r[1] for r in rows]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    # Per-layer selection keeps beating the single best library.
    assert all(r[2] >= r[1] * 0.999 for r in rows)
    # Thinner variants shift work off the GPU.
    assert rows[-1][3] < rows[0][3]
