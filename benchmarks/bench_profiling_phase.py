"""E6 — the inference phase's cost (paper §V-A, Figs. 2-3).

"We only need to infer the whole network on the embedded platform as
many times as different global implementations there exists" — plus a
single compatibility pass.  This bench measures the profiler and prints
the pass accounting against the exhaustive alternative.
"""

from __future__ import annotations

import pytest

from repro import Mode, build_network
from repro.backends import design_space
from repro.engine import Profiler
from repro.utils.tables import AsciiTable

from benchmarks.conftest import SEED

NETWORKS = ["lenet5", "squeezenet_v1.1", "googlenet"]


@pytest.mark.parametrize("network", NETWORKS)
def test_profiling_cost(benchmark, network, tx2, emit):
    graph = build_network(network)
    space = design_space(Mode.GPGPU, tx2)

    def run():
        return Profiler(graph, space, tx2, seed=SEED, repeats=50).profile()

    lut, report = benchmark.pedantic(run, rounds=1, iterations=1)

    table = AsciiTable(
        ["quantity", "value"],
        title=f"E6 | profiling cost for {network} (GPGPU mode)",
    )
    table.add_row(["primitive types in space", report.primitive_types])
    table.add_row(["network benchmark passes", report.network_inferences])
    table.add_row(["compatibility passes", report.compatibility_passes])
    table.add_row(["repeats per measurement", 50])
    table.add_row(
        ["simulated board time", f"{report.simulated_board_ms / 1000:.1f} s"]
    )
    table.add_row(
        ["exhaustive alternative", f"10^{space.space_size_log10(graph):.0f} configs"]
    )
    emit(f"profiling_{network}", table.render())

    # The whole point of the two-phase design:
    assert report.network_inferences <= report.primitive_types
    assert report.compatibility_passes == 1
    # LUT is complete: every candidate of every layer measured.
    for layer, uids in lut.candidates.items():
        for uid in uids:
            assert lut.layer_time(layer, uid) > 0
