"""E2 — Table II, GPGPU mode (paper §VI-A).

Regenerates the right half of Table II on the heterogeneous TX-2 (CPU
libraries + cuDNN + cuBLAS, with transfer penalties).  Checks the
paper's headline claims:

* ~2x mean speedup over the best vendor library,
* > 1.4x on MobileNet (ArmCL depth-wise + cuDNN conv mixing),
* LeNet-5's learned schedule is pure CPU,
* QS-DNN clearly outperforms RS at the same 1000-episode budget.
"""

from __future__ import annotations

import pytest

from repro import Mode
from repro.analysis._cache import cached_lut, cached_table2_row
from repro.analysis.speedup import render_table2
from repro.core import QSDNNSearch, SearchConfig
from repro.hw.processor import ProcessorKind
from repro.utils.stats import geometric_mean
from repro.zoo import TABLE2_NETWORKS

from benchmarks.conftest import EPISODES, SEED


@pytest.mark.parametrize("network", TABLE2_NETWORKS)
def test_qsdnn_search_gpgpu(benchmark, network, tx2):
    """Benchmark the 1000-episode GPGPU-mode search per network."""
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)

    def run_search():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    assert result.best_ms > 0


def test_table2_gpgpu_rows(benchmark, tx2, emit):
    """Assemble and print the full GPGPU half of Table II."""

    def build_rows():
        return [
            cached_table2_row(n, Mode.GPGPU, tx2, episodes=None, seed=SEED)
            for n in TABLE2_NETWORKS
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    mean_vs_bsl = geometric_mean([row.qsdnn_vs_bsl for row in rows])
    emit(
        "table2_gpgpu",
        render_table2(
            rows,
            title=(
                "Table II (GPGPU mode) - speedups over Vanilla, TX-2 "
                f"CPU+GPU, per-network budget (>=1000 episodes, RS gets "
                f"the same), seed {SEED}"
            ),
        )
        + f"\ngeomean QS-DNN vs BSL: {mean_vs_bsl:.2f}x (paper: ~2x)",
    )

    by_net = {row.network: row for row in rows}

    # Paper §VI-A claims (shape):
    for row in rows:
        assert row.qsdnn_vs_bsl >= 0.99, row.network
    assert 1.5 <= mean_vs_bsl <= 3.0, f"geomean {mean_vs_bsl:.2f}x vs paper ~2x"
    assert by_net["mobilenet_v1"].qsdnn_vs_bsl >= 1.4
    # AlexNet / VGG19: cuDNN lacks FC, so QS-DNN wins big.
    assert by_net["alexnet"].qsdnn_vs_bsl >= 3.0
    assert by_net["vgg19"].qsdnn_vs_bsl >= 3.0
    # RL vs RS: clear wins, largest on the big design spaces (§VI-B: up to 15x).
    assert max(row.rl_vs_rs for row in rows) >= 8.0


def test_lenet_gpgpu_schedule_is_pure_cpu(benchmark, tx2, emit):
    """Paper: LeNet-5's fastest GPGPU configuration uses no GPU at all."""
    lut = cached_lut("lenet5", Mode.GPGPU, tx2, seed=SEED)

    def run_search():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    processors = {
        str(lut.meta[u].processor) for u in result.best_assignments.values()
    }
    emit(
        "lenet_pure_cpu",
        "LeNet-5 GPGPU-mode learned schedule processors: "
        f"{sorted(processors)} (paper: pure CPU wins - transfers would "
        "dominate such small layers)",
    )
    assert processors == {str(ProcessorKind.CPU)}


def test_win_matrix_mobilenet(benchmark, tx2, emit):
    """Per-layer-kind library wins — the mechanism behind §VI-A."""
    from repro.analysis.win_matrix import render_win_matrix, win_matrix
    from repro.baselines import chain_dp
    from repro.zoo import build_network

    lut = cached_lut("mobilenet_v1", Mode.GPGPU, tx2, seed=SEED)
    graph = build_network("mobilenet_v1")

    def run():
        optimum = chain_dp(lut)
        return win_matrix(lut, optimum.best_assignments, graph)

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "win_matrix_mobilenet",
        render_win_matrix(
            matrix,
            title="MobileNet-v1 GPGPU optimum: wins per (layer kind, library)",
        ),
    )
    # ArmCL owns depth-wise; FC goes to cuBLAS.
    assert matrix["depthwise_conv"].get("armcl", 0) >= 7
    assert matrix["fully_connected"] == {"cublas": 1}


def test_mobilenet_library_mix(benchmark, tx2, emit):
    """Paper: MobileNet mixes ArmCL depth-wise + cuDNN conv + CPU-side
    ReLU/B-Norm to avoid costly extra copies to GPU."""
    lut = cached_lut("mobilenet_v1", Mode.GPGPU, tx2, seed=SEED)

    def run_search():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    libraries = {}
    for layer, uid in result.best_assignments.items():
        libraries.setdefault(lut.meta[uid].library, []).append(layer)
    summary = "\n".join(
        f"  {lib:8s} {len(layers):3d} layers" for lib, layers in
        sorted(libraries.items(), key=lambda kv: -len(kv[1]))
    )
    dw_on_armcl = sum(
        1
        for layer, uid in result.best_assignments.items()
        if layer.endswith("_dw") and lut.meta[uid].library == "armcl"
    )
    emit(
        "mobilenet_mix",
        "MobileNet-v1 GPGPU learned schedule library mix:\n" + summary
        + f"\n  depth-wise layers on ArmCL: {dw_on_armcl}/13",
    )
    assert len(libraries) >= 3, "expected a heterogeneous mix of libraries"
    assert dw_on_armcl >= 5, "expected ArmCL to win a majority of DW layers"
