"""E7 — search runtime (paper §VI-A), kernel backends, multi-seed amortization.

"The design space search is carried out in a standard Intel CPU and
takes less than 10 min to converge"; the abstract quotes ~5 minutes.
Our tabular search over the same LUT structure runs in seconds — this
bench records the wall-clock and episode throughput per network so the
claim is auditable, and writes the machine-readable
``BENCH_search.json`` next to the repo root so CI (and speedup
comparisons between revisions) can diff it.
``scripts/check_bench_regression.py`` gates CI on the recorded wall
clocks and multi-seed ratios.

The kernel bench measures the compiled episode kernels
(:mod:`repro.core.kernels`): the same replay-on search run on the
pure-Python reference backend and the numba backend, which must be
bit-identical and substantially faster.  It is skipped (and the
``kernel.speedup`` section left empty) when numba is not installed.

The multi-seed benches measure the lockstep runner's amortization: K=8
seeds sharing one engine, every episode's K rollouts priced in a single
``layer_costs_batch`` call and the eq. (2) updates batched across
seeds.  Both sides run the vectorized-friendly configuration (replay
off — replay is an inherently sequential per-seed update chain) so the
ratio isolates what lockstep batching buys; results are bit-identical
to K independent runs either way.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro import Mode, __version__
from repro.analysis._cache import cached_lut
from repro.core import (
    MultiSeedSearch,
    QSDNNSearch,
    SearchConfig,
    numba_available,
    resolve_backend,
    seed_range,
)

from benchmarks.conftest import EPISODES, SEED

NETWORKS = ["lenet5", "alexnet", "mobilenet_v1", "googlenet", "resnet50", "vgg19"]

#: Networks the multi-seed amortization claim is checked on.
MULTI_SEED_NETWORKS = ["mobilenet_v1", "resnet50"]
MULTI_SEED_K = 8
#: K=8 lockstep seeds must cost < this many single-seed wall clocks.
#: (Recalibrated from 4.0 when the episode kernels made single-seed
#: searches ~30% faster — the ratio's denominator; the regression gate
#: tracks growth of the committed ratios from there.)
MULTI_SEED_MAX_RATIO = 6.0

#: Networks the compiled-kernel speedup claim is checked on.
KERNEL_NETWORKS = ["mobilenet_v1", "resnet50"]
#: numba must beat the reference backend by at least this factor on
#: replay-on searches (the acceptance bar of the kernels subsystem).
KERNEL_MIN_SPEEDUP = 5.0

#: Networks the anytime-checkpoint overhead bound is checked on.
CHECKPOINT_NETWORKS = ["mobilenet_v1"]
#: Captures per run for the overhead measurement (every N episodes).
CHECKPOINT_EVERY = EPISODES // 10
#: A checkpointing run must cost at most this many plain wall clocks
#: (the anytime subsystem's acceptance bar: < 5% overhead).
CHECKPOINT_MAX_RATIO = 1.05

#: Networks the mega-batch (thousand-seed SoA) claim is checked on.
MEGA_NETWORKS = ["mobilenet_v1"]
MEGA_K = 1000
#: K=1000 mega-batch seeds must cost <= this many single-seed wall
#: clocks under numba (the acceptance bar of the SoA kernel path —
#: tens-of-x for a thousand seeds).
MEGA_MAX_RATIO = 40.0

#: Held-out networks the warm-start transfer claim is checked on —
#: deliberately absent from every other bench list in this file, so
#: nothing about the prior machinery was tuned on them.
WARM_NETWORKS = ["squeezenet_v1.1", "tiny_yolo_v2"]
#: A warm-started run must reach the cold best_ms (bitwise-equal or
#: better) within this fraction of the cold episode budget (the
#: acceptance bar of the warm-start subsystem).
WARM_MAX_RATIO = 0.5

#: Machine-readable artifact consumed by CI and revision comparisons.
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_search.json"
#: Artifact layout version (validated by the CI artifact check).
#: v4 added the ``mega_batch`` section; v5 the ``warm_start`` section.
BENCH_SCHEMA_VERSION = 5

_wall_clocks: dict[str, float] = {}
_episodes_per_s: dict[str, float] = {}
_best_ms: dict[str, float] = {}
_multi_seed: dict[str, dict[str, float]] = {}
_kernel_speedup: dict[str, dict[str, float]] = {}
_mega_batch: dict[str, dict[str, float]] = {}
_warm_start: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("network", NETWORKS)
def test_search_wall_clock(benchmark, network, tx2):
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)

    def run():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _wall_clocks[network] = result.wall_clock_s
    _episodes_per_s[network] = result.episodes_per_s or 0.0
    _best_ms[network] = result.best_ms
    # Paper bound: well under 10 minutes per search.
    assert result.wall_clock_s < 600.0


@pytest.mark.parametrize("network", KERNEL_NETWORKS)
def test_kernel_backend_speedup(network, tx2):
    """Replay-on search: numba kernels >= 5x the reference backend.

    Both backends run back-to-back in this process (reference vs numba,
    min of two runs each), so the speedup is robust to the absolute
    speed of the machine.  Results must be bit-identical.
    """
    if not numba_available():
        pytest.skip("numba not installed — reference backend only")
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)
    lut.indexed().engine()  # compile once, outside both timings

    def config(kernel: str) -> SearchConfig:
        return SearchConfig(
            episodes=EPISODES, seed=SEED, track_curve=False, kernel=kernel
        )

    # First numba run also warms the JIT cache, outside the timings.
    warm = QSDNNSearch(lut, config("numba")).run()
    reference = min(
        _timed(lambda: QSDNNSearch(lut, config("reference")).run())
        for _ in range(2)
    )
    compiled = min(
        _timed(lambda: QSDNNSearch(lut, config("numba")).run()) for _ in range(2)
    )
    check = QSDNNSearch(lut, config("reference")).run()
    assert check.best_ms == warm.best_ms, "backends disagree on best_ms"
    speedup = reference / compiled
    _kernel_speedup[network] = {
        "reference_wall_clock_s": reference,
        "numba_wall_clock_s": compiled,
        "speedup": speedup,
    }
    assert speedup >= KERNEL_MIN_SPEEDUP, (
        f"numba kernels on {network}: {speedup:.2f}x over reference "
        f"(need >= {KERNEL_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("network", MULTI_SEED_NETWORKS)
def test_multi_seed_lockstep_amortization(network, tx2):
    """K=8 lockstep seeds well under K single-seed wall clocks.

    Single and multi run back-to-back in this process, so the ratio is
    robust to the absolute speed of the machine.
    """
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)
    lut.indexed().engine()  # compile once, outside both timings

    def config(seed: int) -> SearchConfig:
        return SearchConfig(
            episodes=EPISODES, seed=seed, track_curve=False,
            replay_enabled=False,
        )

    single = min(
        _timed(lambda: QSDNNSearch(lut, config(SEED)).run()) for _ in range(2)
    )
    multi = min(
        _timed(
            lambda: MultiSeedSearch(
                lut, config(SEED), seeds=seed_range(SEED, MULTI_SEED_K)
            ).run()
        )
        for _ in range(2)
    )
    ratio = multi / single
    _multi_seed[network] = {
        "seeds": MULTI_SEED_K,
        "wall_clock_s": multi,
        "single_wall_clock_s": single,
        "ratio": ratio,
    }
    assert ratio < MULTI_SEED_MAX_RATIO, (
        f"{MULTI_SEED_K} lockstep seeds on {network} took {ratio:.2f}x one "
        f"seed (limit {MULTI_SEED_MAX_RATIO}x)"
    )


@pytest.mark.parametrize("network", CHECKPOINT_NETWORKS)
def test_checkpoint_overhead_bound(network, tx2, monkeypatch):
    """Anytime checkpoint capture costs < 5% of the search wall clock.

    The capture functions (``seed_snapshot`` + ``build_checkpoint``,
    everything the anytime path adds beyond a trivial per-episode
    boundary check) are instrumented in-place and their accumulated
    time divided by the *same run's* wall clock — numerator and
    denominator share whatever contention the machine has, so the
    fraction is robust where differencing two separately-timed runs is
    not.  Results must be bit-identical either way — the capture draws
    no randomness.
    """
    from repro.core import checkpoint as ckpt_mod

    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)
    lut.indexed().engine()  # compile once, outside the timing

    config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
    plain_result = QSDNNSearch(lut, config).run()

    capture_s: list[float] = []

    def _instrument(name):
        original = getattr(ckpt_mod, name)

        def timed(*args, **kwargs):
            started = time.perf_counter()
            result = original(*args, **kwargs)
            capture_s.append(time.perf_counter() - started)
            return result

        monkeypatch.setattr(ckpt_mod, name, timed)

    _instrument("seed_snapshot")
    _instrument("build_checkpoint")
    wall = _timed(
        lambda: QSDNNSearch(lut, config).run(
            checkpoint_every=CHECKPOINT_EVERY,
            on_checkpoint=lambda _ckpt: True,
        )
    )
    captured = QSDNNSearch(lut, config).run(
        checkpoint_every=CHECKPOINT_EVERY, on_checkpoint=lambda _ckpt: True
    )
    assert captured.best_ms == plain_result.best_ms, (
        "checkpoint capture perturbed the search"
    )
    expected = (EPISODES // CHECKPOINT_EVERY - 1) * 2  # never after the last
    assert len(capture_s) >= expected, "instrumented capture never ran"

    ratio = 1.0 + sum(capture_s[:expected]) / (wall - sum(capture_s[:expected]))
    assert ratio <= CHECKPOINT_MAX_RATIO, (
        f"{EPISODES // CHECKPOINT_EVERY - 1} checkpoints on {network} cost "
        f"{(ratio - 1.0) * 100:.1f}% of the wall clock "
        f"(limit {(CHECKPOINT_MAX_RATIO - 1.0) * 100:.0f}%)"
    )


@pytest.mark.parametrize("network", MEGA_NETWORKS)
def test_mega_batch_thousand_seeds(network, tx2):
    """K=1000 SoA mega-batch seeds in tens-of-x one-seed wall clock.

    The mega kernel fuses the across-seed loop into one ``prange``
    dispatch per episode; a thousand lockstep seeds should amortize to
    well under a thousand single-seed runs.  Single and mega run
    back-to-back in this process (numba backend both sides), so the
    ratio is robust to the absolute speed of the machine.
    """
    if not numba_available():
        pytest.skip("numba not installed — mega path needs the JIT")
    from repro.utils.proc import peak_rss_mb

    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)
    lut.indexed().engine()  # compile once, outside both timings

    def config(kernel: str) -> SearchConfig:
        return SearchConfig(
            episodes=EPISODES, seed=SEED, track_curve=False,
            replay_enabled=False, kernel=kernel,
        )

    QSDNNSearch(lut, config("numba")).run()  # warm the JIT cache
    single = min(
        _timed(lambda: QSDNNSearch(lut, config("numba")).run())
        for _ in range(2)
    )
    mega = _timed(
        lambda: MultiSeedSearch(
            lut, config("mega"), seeds=seed_range(SEED, MEGA_K)
        ).run()
    )
    ratio = mega / single
    _mega_batch[network] = {
        "seeds": MEGA_K,
        "wall_clock_s": mega,
        "single_wall_clock_s": single,
        "ratio": ratio,
        "peak_rss_mb": peak_rss_mb(),
    }
    assert ratio <= MEGA_MAX_RATIO, (
        f"{MEGA_K} mega-batch seeds on {network} took {ratio:.2f}x one "
        f"seed (limit {MEGA_MAX_RATIO}x)"
    )


@pytest.mark.parametrize("network", WARM_NETWORKS)
def test_warm_start_episodes_to_match(network, tx2):
    """A stored-prior warm start matches the cold best at half budget.

    The cold run's result is written to a (in-memory) ``ResultStore``
    — the same corpus a running service mines — and a stored Q-prior
    is resolved from it, exactly the production path.  The warm run
    gets ``WARM_MAX_RATIO`` of the cold episode budget and must still
    end bitwise-equal to or better than the cold ``best_ms``.  The
    recorded ``ratio`` is episodes-to-match over the cold budget
    (curve-based when an episode rollout reaches the cold best before
    the budget runs out, the full warm budget otherwise) — a
    deterministic episode count, not a wall clock, so the regression
    gate compares it without a noise floor.
    """
    from repro.analysis.transfer import episodes_to_match
    from repro.core.priors import make_prior
    from repro.runtime.campaign import CampaignJob
    from repro.runtime.store import ResultStore

    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)
    cold = QSDNNSearch(
        lut, SearchConfig(episodes=EPISODES, seed=SEED)
    ).run()
    warm_budget = int(EPISODES * WARM_MAX_RATIO)
    with ResultStore() as store:  # in-memory corpus
        store.put(
            CampaignJob(
                network=network, platform=tx2.name, mode="gpgpu",
                seed=SEED, episodes=EPISODES, kind="search",
            ),
            cold,
            cold.wall_clock_s,
        )
        warm = QSDNNSearch(
            lut,
            SearchConfig(
                episodes=warm_budget, seed=SEED, warm_start="stored"
            ),
            prior=make_prior("stored", store),
        ).run()
    match = episodes_to_match(warm.curve_ms, cold.best_ms)
    if match is not None:
        ratio = match / EPISODES
    elif warm.best_ms <= cold.best_ms:  # matched via the final polish
        ratio = warm_budget / EPISODES
    else:
        ratio = float("inf")
    _warm_start[network] = {
        "kind": "stored",
        "cold_best_ms": cold.best_ms,
        "warm_best_ms": warm.best_ms,
        "cold_episodes": EPISODES,
        "warm_episodes": warm_budget,
        "episodes_to_match": match,
        "ratio": ratio,
        "wall_clock_s": warm.wall_clock_s,
    }
    assert warm.best_ms <= cold.best_ms, (
        f"warm start on {network}: {warm.best_ms}ms at {warm_budget} "
        f"episodes vs cold {cold.best_ms}ms at {EPISODES}"
    )
    assert ratio <= WARM_MAX_RATIO, (
        f"warm start on {network} needed {ratio:.2f}x the cold budget "
        f"(limit {WARM_MAX_RATIO}x)"
    )


def _timed(run) -> float:
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def test_search_runtime_summary(benchmark, emit, tx2):
    from repro.utils.tables import AsciiTable

    def summarize():
        table = AsciiTable(
            [
                "network",
                f"{EPISODES}-episode search (s)",
                "eps/s",
                "8-seed lockstep",
                f"K={MEGA_K} mega",
                "numba speedup",
            ],
            title="E7 | QS-DNN search wall-clock (paper: < 10 min)",
        )
        for network in NETWORKS:
            if network in _wall_clocks:
                sweep = _multi_seed.get(network)
                mega = _mega_batch.get(network)
                kernel = _kernel_speedup.get(network)
                table.add_row([
                    network,
                    f"{_wall_clocks[network]:.2f}",
                    f"{_episodes_per_s[network]:,.0f}",
                    f"{sweep['ratio']:.2f}x" if sweep else "-",
                    f"{mega['ratio']:.1f}x" if mega else "-",
                    f"{kernel['speedup']:.1f}x" if kernel else "-",
                ])
        return table.render()

    emit("search_runtime", benchmark.pedantic(summarize, rounds=1, iterations=1))
    # Always write the v3-schema artifact — even a run that measured
    # nothing (e.g. -k summary alone) or that only has the reference
    # backend must leave a well-formed BENCH_search.json behind, or the
    # tracking harness sees an empty trajectory and the CI artifact
    # check has nothing to validate.  Merging into any existing
    # artifact means a partial run (-k lenet5) refreshes only the
    # networks it measured instead of clobbering a complete file.
    payload = {
        "version": __version__,
        "schema_version": BENCH_SCHEMA_VERSION,
        "platform": tx2.name,
        "episodes": EPISODES,
        "seed": SEED,
        "mode": "gpgpu",
        "kernel": {
            "backend": resolve_backend("auto"),
            "numba_available": numba_available(),
            "speedup": {},
        },
        "search_wall_clock_s": {},
        "episodes_per_s": {},
        "best_ms": {},
        "multi_seed": {},
        "mega_batch": {},
        "warm_start": {},
    }
    if BENCH_JSON.exists():
        try:
            previous = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            previous = {}
        previous_backend = previous.get("kernel", {}).get("backend", "reference")
        mergeable = (
            previous.get("version") == __version__
            and previous.get("episodes") == EPISODES
            and previous.get("seed") == SEED
            # Clocks measured on another kernel backend must not be
            # merged under this run's backend label — the regression
            # gate's comparability skip trusts that label.
            and previous_backend == payload["kernel"]["backend"]
        )
        if not mergeable and not any(
            (_wall_clocks, _multi_seed, _kernel_speedup, _mega_batch,
             _warm_start)
        ):
            # Nothing measured and nothing mergeable: overwriting the
            # existing artifact would replace real data (a different
            # backend's or revision's) with an empty skeleton.
            return
        if mergeable:
            payload["search_wall_clock_s"] = dict(
                previous.get("search_wall_clock_s", {})
            )
            payload["episodes_per_s"] = dict(previous.get("episodes_per_s", {}))
            payload["best_ms"] = dict(previous.get("best_ms", {}))
            payload["multi_seed"] = dict(previous.get("multi_seed", {}))
            payload["mega_batch"] = dict(previous.get("mega_batch", {}))
            payload["warm_start"] = dict(previous.get("warm_start", {}))
            kernel_prev = previous.get("kernel", {})
            if kernel_prev.get("numba_available") == numba_available():
                payload["kernel"]["speedup"] = dict(
                    kernel_prev.get("speedup", {})
                )
    payload["search_wall_clock_s"].update(_wall_clocks)
    payload["episodes_per_s"].update(_episodes_per_s)
    payload["best_ms"].update(_best_ms)
    payload["multi_seed"].update(_multi_seed)
    payload["mega_batch"].update(_mega_batch)
    payload["warm_start"].update(_warm_start)
    payload["kernel"]["speedup"].update(_kernel_speedup)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
