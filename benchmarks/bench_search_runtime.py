"""E7 — search runtime (paper §VI-A).

"The design space search is carried out in a standard Intel CPU and
takes less than 10 min to converge"; the abstract quotes ~5 minutes.
Our tabular search over the same LUT structure runs in seconds — this
bench records the wall-clock per network so the claim is auditable,
and writes the machine-readable ``BENCH_search.json`` next to the repo
root so CI (and speedup comparisons between revisions) can diff it.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import Mode, __version__
from repro.analysis._cache import cached_lut
from repro.core import QSDNNSearch, SearchConfig
from repro.utils.tables import AsciiTable

from benchmarks.conftest import EPISODES, SEED

NETWORKS = ["lenet5", "alexnet", "mobilenet_v1", "googlenet", "resnet50", "vgg19"]

#: Machine-readable artifact consumed by CI and revision comparisons.
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_search.json"

_wall_clocks: dict[str, float] = {}
_best_ms: dict[str, float] = {}


@pytest.mark.parametrize("network", NETWORKS)
def test_search_wall_clock(benchmark, network, tx2):
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)

    def run():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _wall_clocks[network] = result.wall_clock_s
    _best_ms[network] = result.best_ms
    # Paper bound: well under 10 minutes per search.
    assert result.wall_clock_s < 600.0


def test_search_runtime_summary(benchmark, emit):
    def summarize():
        table = AsciiTable(
            ["network", f"{EPISODES}-episode search (s)"],
            title="E7 | QS-DNN search wall-clock (paper: < 10 min)",
        )
        for network in NETWORKS:
            if network in _wall_clocks:
                table.add_row([network, f"{_wall_clocks[network]:.2f}"])
        return table.render()

    emit("search_runtime", benchmark.pedantic(summarize, rounds=1, iterations=1))
    if not _wall_clocks:
        return  # nothing measured this run (e.g. -k summary alone)
    # Merge into any existing artifact so a partial run (-k lenet5)
    # refreshes only the networks it measured instead of clobbering a
    # complete BENCH_search.json with an empty one.
    payload = {
        "version": __version__,
        "episodes": EPISODES,
        "seed": SEED,
        "mode": "gpgpu",
        "search_wall_clock_s": {},
        "best_ms": {},
    }
    if BENCH_JSON.exists():
        try:
            previous = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            previous = {}
        if (
            previous.get("version") == __version__
            and previous.get("episodes") == EPISODES
            and previous.get("seed") == SEED
        ):
            payload["search_wall_clock_s"] = dict(
                previous.get("search_wall_clock_s", {})
            )
            payload["best_ms"] = dict(previous.get("best_ms", {}))
    payload["search_wall_clock_s"].update(_wall_clocks)
    payload["best_ms"].update(_best_ms)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
