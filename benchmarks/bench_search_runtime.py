"""E7 — search runtime (paper §VI-A) and multi-seed amortization.

"The design space search is carried out in a standard Intel CPU and
takes less than 10 min to converge"; the abstract quotes ~5 minutes.
Our tabular search over the same LUT structure runs in seconds — this
bench records the wall-clock per network so the claim is auditable,
and writes the machine-readable ``BENCH_search.json`` next to the repo
root so CI (and speedup comparisons between revisions) can diff it.
``scripts/check_bench_regression.py`` gates CI on the recorded wall
clocks.

The multi-seed benches measure the lockstep runner's amortization: K=8
seeds sharing one engine, every episode's K rollouts priced in a single
``layer_costs_batch`` call and the eq. (2) updates batched across
seeds.  Both sides run the vectorized-friendly configuration (replay
off — replay is an inherently sequential per-seed update chain) so the
ratio isolates what lockstep batching buys; results are bit-identical
to K independent runs either way.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro import Mode, __version__
from repro.analysis._cache import cached_lut
from repro.core import MultiSeedSearch, QSDNNSearch, SearchConfig, seed_range

from benchmarks.conftest import EPISODES, SEED

NETWORKS = ["lenet5", "alexnet", "mobilenet_v1", "googlenet", "resnet50", "vgg19"]

#: Networks the multi-seed amortization claim is checked on.
MULTI_SEED_NETWORKS = ["mobilenet_v1", "resnet50"]
MULTI_SEED_K = 8
#: K=8 lockstep seeds must cost < this many single-seed wall clocks.
MULTI_SEED_MAX_RATIO = 4.0

#: Machine-readable artifact consumed by CI and revision comparisons.
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_search.json"
#: Artifact layout version (validated by the CI artifact check).
BENCH_SCHEMA_VERSION = 2

_wall_clocks: dict[str, float] = {}
_best_ms: dict[str, float] = {}
_multi_seed: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("network", NETWORKS)
def test_search_wall_clock(benchmark, network, tx2):
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)

    def run():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _wall_clocks[network] = result.wall_clock_s
    _best_ms[network] = result.best_ms
    # Paper bound: well under 10 minutes per search.
    assert result.wall_clock_s < 600.0


@pytest.mark.parametrize("network", MULTI_SEED_NETWORKS)
def test_multi_seed_lockstep_amortization(network, tx2):
    """K=8 lockstep seeds well under K single-seed wall clocks.

    Single and multi run back-to-back in this process, so the ratio is
    robust to the absolute speed of the machine.
    """
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)
    lut.indexed().engine()  # compile once, outside both timings

    def config(seed: int) -> SearchConfig:
        return SearchConfig(
            episodes=EPISODES, seed=seed, track_curve=False,
            replay_enabled=False,
        )

    single = min(
        _timed(lambda: QSDNNSearch(lut, config(SEED)).run()) for _ in range(2)
    )
    multi = min(
        _timed(
            lambda: MultiSeedSearch(
                lut, config(SEED), seeds=seed_range(SEED, MULTI_SEED_K)
            ).run()
        )
        for _ in range(2)
    )
    ratio = multi / single
    _multi_seed[network] = {
        "seeds": MULTI_SEED_K,
        "wall_clock_s": multi,
        "single_wall_clock_s": single,
        "ratio": ratio,
    }
    assert ratio < MULTI_SEED_MAX_RATIO, (
        f"{MULTI_SEED_K} lockstep seeds on {network} took {ratio:.2f}x one "
        f"seed (limit {MULTI_SEED_MAX_RATIO}x)"
    )


def _timed(run) -> float:
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def test_search_runtime_summary(benchmark, emit, tx2):
    from repro.utils.tables import AsciiTable

    def summarize():
        table = AsciiTable(
            ["network", f"{EPISODES}-episode search (s)", "8-seed lockstep"],
            title="E7 | QS-DNN search wall-clock (paper: < 10 min)",
        )
        for network in NETWORKS:
            if network in _wall_clocks:
                sweep = _multi_seed.get(network)
                table.add_row([
                    network,
                    f"{_wall_clocks[network]:.2f}",
                    f"{sweep['ratio']:.2f}x" if sweep else "-",
                ])
        return table.render()

    emit("search_runtime", benchmark.pedantic(summarize, rounds=1, iterations=1))
    if not _wall_clocks and not _multi_seed:
        return  # nothing measured this run (e.g. -k summary alone)
    # Merge into any existing artifact so a partial run (-k lenet5)
    # refreshes only the networks it measured instead of clobbering a
    # complete BENCH_search.json with an empty one.
    payload = {
        "version": __version__,
        "schema_version": BENCH_SCHEMA_VERSION,
        "platform": tx2.name,
        "episodes": EPISODES,
        "seed": SEED,
        "mode": "gpgpu",
        "search_wall_clock_s": {},
        "best_ms": {},
        "multi_seed": {},
    }
    if BENCH_JSON.exists():
        try:
            previous = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            previous = {}
        if (
            previous.get("version") == __version__
            and previous.get("episodes") == EPISODES
            and previous.get("seed") == SEED
        ):
            payload["search_wall_clock_s"] = dict(
                previous.get("search_wall_clock_s", {})
            )
            payload["best_ms"] = dict(previous.get("best_ms", {}))
            payload["multi_seed"] = dict(previous.get("multi_seed", {}))
    payload["search_wall_clock_s"].update(_wall_clocks)
    payload["best_ms"].update(_best_ms)
    payload["multi_seed"].update(_multi_seed)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
