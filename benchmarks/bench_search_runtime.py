"""E7 — search runtime (paper §VI-A).

"The design space search is carried out in a standard Intel CPU and
takes less than 10 min to converge"; the abstract quotes ~5 minutes.
Our tabular search over the same LUT structure runs in seconds — this
bench records the wall-clock per network so the claim is auditable.
"""

from __future__ import annotations

import pytest

from repro import Mode
from repro.analysis._cache import cached_lut
from repro.core import QSDNNSearch, SearchConfig
from repro.utils.tables import AsciiTable

from benchmarks.conftest import EPISODES, SEED

NETWORKS = ["lenet5", "alexnet", "mobilenet_v1", "googlenet", "resnet50", "vgg19"]

_wall_clocks: dict[str, float] = {}


@pytest.mark.parametrize("network", NETWORKS)
def test_search_wall_clock(benchmark, network, tx2):
    lut = cached_lut(network, Mode.GPGPU, tx2, seed=SEED)

    def run():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _wall_clocks[network] = result.wall_clock_s
    # Paper bound: well under 10 minutes per search.
    assert result.wall_clock_s < 600.0


def test_search_runtime_summary(benchmark, emit):
    def summarize():
        table = AsciiTable(
            ["network", f"{EPISODES}-episode search (s)"],
            title="E7 | QS-DNN search wall-clock (paper: < 10 min)",
        )
        for network in NETWORKS:
            if network in _wall_clocks:
                table.add_row([network, f"{_wall_clocks[network]:.2f}"])
        return table.render()

    emit("search_runtime", benchmark.pedantic(summarize, rounds=1, iterations=1))
