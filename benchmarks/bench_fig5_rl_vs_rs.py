"""E4 — Fig. 5: RL vs Random Search on MobileNet-v1 vs episode budget.

"Each point indicates the average result for a complete search for the
given episodes" (5 full runs per point).  Paper observations checked:
RL falls near convergence after ~350 episodes; RS is ~50 % worse than RL
with only 25 episodes and about twice as bad after 350.
"""

from __future__ import annotations

from repro import Mode
from repro.analysis._cache import cached_lut
from repro.analysis.curves import fig5_rl_vs_rs
from repro.baselines import chain_dp
from repro.utils.tables import AsciiTable

from benchmarks.conftest import SEED

NETWORK = "mobilenet_v1"
BUDGETS = [25, 50, 100, 150, 200, 350, 500, 750, 1000]
RUNS = 5


def test_fig5_rl_vs_rs(benchmark, tx2, emit):
    lut = cached_lut(NETWORK, Mode.GPGPU, tx2, seed=SEED)

    def run():
        return fig5_rl_vs_rs(lut, budgets=BUDGETS, runs=RUNS, seed=SEED)

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    table = AsciiTable(
        ["episodes", "RL mean (ms)", "RL +-", "RS mean (ms)", "RS +-", "RS/RL"],
        title=f"Fig.5 | {NETWORK} GPGPU: mean best latency over {RUNS} runs",
    )
    for i, budget in enumerate(BUDGETS):
        table.add_row(
            [
                budget,
                f"{data.rl_mean[i]:.2f}",
                f"{data.rl_ci[i]:.2f}",
                f"{data.rs_mean[i]:.2f}",
                f"{data.rs_ci[i]:.2f}",
                f"{data.ratio_at(budget):.2f}x",
            ]
        )
    emit("fig5_rl_vs_rs", table.render() + "\n" + data.render())

    # Paper shape checks.  (At 25 episodes the paper reports RS already
    # ~1.5x behind; under our proportional epsilon schedule both methods
    # are still near-random that early, so we only require parity there —
    # the gap opens decisively by 50 episodes.  See EXPERIMENTS.md.)
    assert data.ratio_at(25) >= 1.0, "RS must not beat RL at 25 episodes"
    assert data.ratio_at(50) >= 1.5, "RS should clearly trail by 50 episodes"
    assert data.ratio_at(350) >= 1.8, "RS ~2x worse after 350 episodes"
    # RL near convergence after 350: within 25% of the exact optimum.
    optimum = chain_dp(lut).best_ms
    idx350 = BUDGETS.index(350)
    assert data.rl_mean[idx350] <= optimum * 1.25
    # Variance shrinks as the search converges (paper: "variance reduces
    # towards the end").
    assert data.rl_ci[-1] <= data.rl_ci[0]
    # RL improves monotonically-ish with budget (mean at 1000 <= mean at 25).
    assert data.rl_mean[-1] < data.rl_mean[0]
