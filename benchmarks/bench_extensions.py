"""E9 — the paper's future-work extensions (§VII), quantified.

* Multi-objective search: the latency/energy Pareto front on MobileNet
  ("we envision to extend exploration to e.g. different reward choices
  or having multi-objective search").
* Linear value-function approximation: the first step toward "Deep RL
  to approximate the value function for better scalability towards
  larger networks", compared against tabular QS-DNN and RS on the
  deepest zoo network (ResNet-50, 175 decisions).
* The coordinate-descent polish: contribution of the post-search local
  refinement on branchy vs chain networks.
"""

from __future__ import annotations

import pytest

from repro import Mode
from repro.analysis._cache import cached_lut
from repro.baselines import random_search
from repro.core import QSDNNSearch, SearchConfig
from repro.ext import (
    EnergyModel,
    LinearQConfig,
    LinearQSearch,
    MLPQConfig,
    MLPQSearch,
    pareto_front,
    pareto_sweep,
    schedule_energy_mj,
)
from repro.utils.tables import AsciiTable

from benchmarks.conftest import SEED


def test_multiobjective_pareto(benchmark, tx2, emit):
    """Latency/energy trade-off on MobileNet-v1 (GPGPU)."""
    lut = cached_lut("mobilenet_v1", Mode.GPGPU, tx2, seed=SEED)
    lams = [0.0, 0.05, 0.1, 0.2, 0.5, 1.0]

    def run():
        return pareto_sweep(lut, lams=lams, episodes=1500, seed=SEED)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["lambda (1/W)", "latency (ms)", "energy (mJ)", "GPU layers"],
        title="E9 | MobileNet-v1 latency/energy sweep (EnergyModel: "
              f"CPU {EnergyModel().cpu_watts} W, GPU {EnergyModel().gpu_watts} W)",
    )
    for p in points:
        table.add_row(
            [f"{p.lam:g}", f"{p.latency_ms:.2f}", f"{p.energy_mj:.1f}",
             p.gpu_layers(lut)]
        )
    front = pareto_front(points)
    emit(
        "ext_pareto",
        table.render() + f"\nnon-dominated points: {len(front)}/{len(points)}",
    )

    # Increasing energy weight must reduce energy and GPU usage.
    assert points[-1].energy_mj < points[0].energy_mj
    assert points[-1].gpu_layers(lut) <= points[0].gpu_layers(lut)
    # And the unweighted end remains the latency-optimal one.
    assert points[0].latency_ms <= min(p.latency_ms for p in points) * 1.05
    assert len(front) >= 2


def test_linear_q_scalability(benchmark, tx2, emit):
    """Function approximation vs tabular vs RS on ResNet-50 (GPGPU)."""
    lut = cached_lut("resnet50", Mode.GPGPU, tx2, seed=SEED)
    budget = 800  # deliberately small: where generalization should help

    def run():
        tab = QSDNNSearch(
            lut, SearchConfig(episodes=budget, seed=SEED, track_curve=False)
        ).run()
        lin = LinearQSearch(
            lut, LinearQConfig(episodes=budget, seed=SEED)
        ).run()
        mlp = MLPQSearch(
            lut, MLPQConfig(episodes=budget, seed=SEED)
        ).run()
        rs = random_search(lut, episodes=budget, seed=SEED)
        return tab, lin, mlp, rs

    tab, lin, mlp, rs = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["agent", "best (ms)", "parameters"],
        title=f"E9 | ResNet-50 GPGPU at a small budget ({budget} episodes)",
    )
    num_entries = sum(
        len(lut.candidates[l]) ** 2 for l in lut.layers
    )
    table.add_row(["tabular QS-DNN", f"{tab.best_ms:.2f}",
                   f"~{num_entries} Q entries"])
    table.add_row(["linear Q (ext)", f"{lin.best_ms:.2f}", "13 weights"])
    table.add_row(["MLP Q (ext)", f"{mlp.best_ms:.2f}",
                   "~480 weights (32 hidden)"])
    table.add_row(["random search", f"{rs.best_ms:.2f}", "-"])
    emit("ext_linear_q", table.render())

    assert lin.best_ms < rs.best_ms, "approximation must beat random search"
    assert mlp.best_ms < rs.best_ms
    # A handful of weights vs tens of thousands of table entries: staying
    # within 2x of tabular at this budget is the scalability argument.
    assert lin.best_ms <= tab.best_ms * 2.0
    assert mlp.best_ms <= tab.best_ms * 2.5


@pytest.mark.parametrize("network,mode", [
    ("squeezenet_v1.1", Mode.GPGPU),   # branchy: polish matters
    ("vgg19", Mode.GPGPU),             # chain: RL alone nearly optimal
])
def test_polish_contribution(benchmark, network, mode, tx2, emit):
    """E8/E9 | what the final coordinate-descent sweeps add."""
    lut = cached_lut(network, mode, tx2, seed=SEED)
    episodes = max(1000, 25 * len(lut.layers))

    def run():
        raw = QSDNNSearch(
            lut,
            SearchConfig(episodes=episodes, seed=SEED, track_curve=False,
                         polish_sweeps=0),
        ).run()
        polished = QSDNNSearch(
            lut,
            SearchConfig(episodes=episodes, seed=SEED, track_curve=False,
                         polish_sweeps=2),
        ).run()
        return raw, polished

    raw, polished = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = raw.best_ms / polished.best_ms
    emit(
        f"ext_polish_{network}",
        (
            f"{network} ({mode}): raw RL {raw.best_ms:.2f} ms -> polished "
            f"{polished.best_ms:.2f} ms ({gain:.3f}x from <= 2 sweeps of "
            "coordinate descent)"
        ),
    )
    assert polished.best_ms <= raw.best_ms + 1e-9
