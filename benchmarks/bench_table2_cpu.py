"""E1 — Table II, CPU mode (paper §VI-A).

Regenerates the left half of Table II: per-network speedups over Vanilla
for every CPU library, the Best Single Library, QS-DNN (1000 episodes)
and Random Search at the same budget, on a single Cortex-A57 thread.

The benchmarked quantity per network is the QS-DNN search itself (the
profiling phase is cached per session, mirroring the paper's one-off
inference phase).
"""

from __future__ import annotations

import pytest

from repro import Mode
from repro.analysis._cache import cached_lut, cached_table2_row
from repro.analysis.speedup import render_table2
from repro.core import QSDNNSearch, SearchConfig
from repro.utils.stats import geometric_mean
from repro.zoo import TABLE2_NETWORKS

from benchmarks.conftest import EPISODES, SEED


@pytest.mark.parametrize("network", TABLE2_NETWORKS)
def test_qsdnn_search_cpu(benchmark, network, tx2):
    """Benchmark the 1000-episode CPU-mode search per network."""
    lut = cached_lut(network, Mode.CPU, tx2, seed=SEED)

    def run_search():
        config = SearchConfig(episodes=EPISODES, seed=SEED, track_curve=False)
        return QSDNNSearch(lut, config).run()

    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    assert result.best_ms > 0


def test_table2_cpu_rows(benchmark, tx2, emit):
    """Assemble and print the full CPU half of Table II."""

    def build_rows():
        return [
            cached_table2_row(n, Mode.CPU, tx2, episodes=None, seed=SEED)
            for n in TABLE2_NETWORKS
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit(
        "table2_cpu",
        render_table2(
            rows,
            title=(
                "Table II (CPU mode) - speedups over Vanilla, single A57 "
                f"thread, per-network budget (>=1000 episodes, RS gets the "
                f"same), seed {SEED}"
            ),
        ),
    )

    # Paper claims (shape, not absolute numbers):
    # 1. QS-DNN outperforms every single-library implementation.
    for row in rows:
        assert row.qsdnn_vs_bsl >= 0.99, row.network
    # 2. Up to ~45x speedup over Vanilla on the CPU (big conv nets).
    best = max(row.qsdnn_speedup for row in rows)
    assert best >= 40.0, f"max CPU speedup {best:.1f}x, expected >= 40x"
    # 3. QS-DNN at least matches RS everywhere on CPU.
    assert geometric_mean([row.rl_vs_rs for row in rows]) >= 1.0
