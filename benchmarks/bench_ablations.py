"""E8 — ablations of QS-DNN's design choices (paper §IV-C / §V-B).

The paper fixes: reward shaping on, experience replay (buffer 128),
lr = 0.05, gamma = 0.9, and the 50 %-exploration epsilon schedule.  Each
bench toggles one choice on a fixed LUT and reports the effect on the
final greedy policy and the best configuration found.
"""

from __future__ import annotations

import pytest

from repro import Mode
from repro.analysis._cache import cached_lut
from repro.core import EpsilonSchedule, QSDNNSearch, SearchConfig
from repro.utils.rng import spawn_seed
from repro.utils.stats import mean_and_ci
from repro.utils.tables import AsciiTable

from benchmarks.conftest import SEED

NETWORK = "googlenet"  # branchy, large space: ablations actually bite
EPISODES = 600
RUNS = 3


def _mean_best(lut, runs: int, **config_overrides) -> tuple[float, float]:
    """Mean best over seeds, *without* the polish step — the ablations
    measure the RL design choices themselves (Algorithm 1 raw output)."""
    scores = []
    for run in range(runs):
        config = SearchConfig(
            episodes=EPISODES,
            seed=spawn_seed(SEED, "ablation", run),
            track_curve=False,
            polish_sweeps=0,
            **config_overrides,
        )
        scores.append(QSDNNSearch(lut, config).run().best_ms)
    return mean_and_ci(scores)


def test_ablation_reward_shaping(benchmark, tx2, emit):
    """Shaping (per-layer rewards) vs terminal-only reward."""
    lut = cached_lut(NETWORK, Mode.GPGPU, tx2, seed=SEED)

    def run():
        shaped = _mean_best(lut, RUNS, reward_shaping=True)
        flat = _mean_best(lut, RUNS, reward_shaping=False)
        return shaped, flat

    (shaped, flat) = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["variant", "mean best (ms)", "+-"],
        title=f"E8 | reward shaping ablation on {NETWORK} ({EPISODES} eps)",
    )
    table.add_row(["shaped (paper)", f"{shaped[0]:.2f}", f"{shaped[1]:.2f}"])
    table.add_row(["terminal-only", f"{flat[0]:.2f}", f"{flat[1]:.2f}"])
    emit("ablation_shaping", table.render())
    # Paper: shaping adopted "for better convergence".
    assert shaped[0] <= flat[0] * 1.10


def test_ablation_experience_replay(benchmark, tx2, emit):
    """Replay on (128) vs off."""
    lut = cached_lut(NETWORK, Mode.GPGPU, tx2, seed=SEED)

    def run():
        on = _mean_best(lut, RUNS, replay_enabled=True)
        off = _mean_best(lut, RUNS, replay_enabled=False)
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["variant", "mean best (ms)", "+-"],
        title=f"E8 | experience replay ablation on {NETWORK}",
    )
    table.add_row(["replay 128 (paper)", f"{on[0]:.2f}", f"{on[1]:.2f}"])
    table.add_row(["no replay", f"{off[0]:.2f}", f"{off[1]:.2f}"])
    emit("ablation_replay", table.render())
    assert on[0] <= off[0] * 1.15


def test_ablation_epsilon_schedule(benchmark, tx2, emit):
    """Paper schedule vs linear decay vs constant epsilon."""
    lut = cached_lut(NETWORK, Mode.GPGPU, tx2, seed=SEED)

    def run():
        out = {}
        out["paper"] = _mean_best(lut, RUNS)
        out["linear"] = _mean_best(
            lut, RUNS, epsilon=EpsilonSchedule.linear(EPISODES)
        )
        out["constant 0.1"] = _mean_best(
            lut, RUNS, epsilon=EpsilonSchedule.constant(0.1, EPISODES)
        )
        out["constant 1.0 (pure RS)"] = _mean_best(
            lut, RUNS, epsilon=EpsilonSchedule.constant(1.0, EPISODES)
        )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["schedule", "mean best (ms)", "+-"],
        title=f"E8 | epsilon schedule ablation on {NETWORK}",
    )
    for name, (mean, ci) in results.items():
        table.add_row([name, f"{mean:.2f}", f"{ci:.2f}"])
    emit("ablation_epsilon", table.render())
    # A pure-exploration agent is just random search: markedly worse.
    assert results["paper"][0] < results["constant 1.0 (pure RS)"][0]


@pytest.mark.parametrize("learning_rate", [0.01, 0.05, 0.2, 0.5])
def test_ablation_learning_rate(benchmark, learning_rate, tx2):
    """lr sweep around the paper's 0.05 — all should converge sanely."""
    lut = cached_lut(NETWORK, Mode.GPGPU, tx2, seed=SEED)

    def run():
        return _mean_best(lut, 2, learning_rate=learning_rate)

    mean, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.baselines import pbqp_solve

    near_optimal = pbqp_solve(lut).best_ms
    assert mean <= near_optimal * 2.5


@pytest.mark.parametrize("discount", [0.5, 0.9, 0.99])
def test_ablation_discount(benchmark, discount, tx2):
    """gamma sweep around the paper's 0.9."""
    lut = cached_lut(NETWORK, Mode.GPGPU, tx2, seed=SEED)

    def run():
        return _mean_best(lut, 2, discount=discount)

    mean, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.baselines import pbqp_solve

    assert mean <= pbqp_solve(lut).best_ms * 2.5
