"""E3 — Fig. 4: the learning curve of a 1000-episode search.

"RL search for 1000 episodes where the 500 first episodes are fully
exploration.  From there on, epsilon is decreased by 0.1 towards
exploitation after every 50 episodes."
"""

from __future__ import annotations

from repro import Mode
from repro.analysis._cache import cached_lut
from repro.analysis.curves import fig4_learning_curve

from benchmarks.conftest import EPISODES, SEED

NETWORK = "mobilenet_v1"


def test_fig4_learning_curve(benchmark, tx2, emit):
    lut = cached_lut(NETWORK, Mode.GPGPU, tx2, seed=SEED)

    def run():
        return fig4_learning_curve(lut, episodes=EPISODES, seed=SEED)

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    result = data.result
    emit("fig4_learning_curve", data.render())

    # Epsilon schedule is exactly Fig. 4's.
    eps = result.epsilon_trace
    assert eps[:500] == [1.0] * 500
    assert eps[500] == 0.9 and eps[549] == 0.9 and eps[550] == 0.8
    assert eps[-1] == 0.0

    # Exploitation tail samples far better configurations than the
    # exploration phase.
    explore_mean = sum(result.curve_ms[:500]) / 500
    exploit_mean = sum(result.curve_ms[-50:]) / 50
    assert exploit_mean < 0.5 * explore_mean

    # The greedy policy has converged close to the best-seen config.
    assert result.greedy_ms <= result.best_ms * 1.25
