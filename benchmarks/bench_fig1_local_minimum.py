"""E5 — Fig. 1: the greedy local-minimum trap on a 3-layer network.

The paper's Fig. 1 shows an agent avoiding the path through the fastest
intermediate implementation (red) in favour of the globally fastest path
(blue).  We verify this twice:

* on a hand-built LUT where the trap provably exists, and
* on the real profiled toy network, where QS-DNN must match the
  brute-force optimum of the full design space.
"""

from __future__ import annotations

import sys

from repro import Mode
from repro.analysis._cache import cached_lut
from repro.baselines import brute_force, greedy_per_layer
from repro.core import QSDNNSearch, SearchConfig
from repro.utils.tables import AsciiTable

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent.parent))
from tests.helpers import trap_lut  # noqa: E402

from benchmarks.conftest import SEED  # noqa: E402


def test_fig1_trap_lut(benchmark, emit):
    """QS-DNN escapes the local minimum greedy falls into."""
    lut = trap_lut()

    def run():
        return QSDNNSearch(lut, SearchConfig(episodes=200, seed=SEED)).run()

    rl = benchmark.pedantic(run, rounds=1, iterations=1)
    greedy = greedy_per_layer(lut)
    exact = brute_force(lut)

    table = AsciiTable(
        ["method", "path", "total (ms)"],
        title="Fig.1 | 3-layer trap: greedy (red) vs learned (blue) path",
    )
    for name, result in (("greedy", greedy), ("QS-DNN", rl), ("optimal", exact)):
        path = " -> ".join(
            result.best_assignments[l] for l in ("l0", "l1", "l2")
        )
        table.add_row([name, path, f"{result.best_ms:.1f}"])
    emit("fig1_trap", table.render())

    assert greedy.best_assignments["l1"] == "prim1"  # the red path
    assert greedy.best_ms > exact.best_ms  # and it is a trap
    assert rl.best_ms == exact.best_ms  # QS-DNN takes the blue path
    assert rl.best_assignments == exact.best_assignments


def test_fig1_real_toy_network(benchmark, tx2, emit):
    """On the profiled toy net, QS-DNN matches exhaustive enumeration."""
    lut = cached_lut("fig1_toy", Mode.GPGPU, tx2, seed=SEED)

    def run():
        return QSDNNSearch(lut, SearchConfig(episodes=400, seed=SEED)).run()

    rl = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = brute_force(lut)
    greedy = greedy_per_layer(lut)
    emit(
        "fig1_real_toy",
        (
            f"fig1_toy GPGPU: QS-DNN {rl.best_ms:.3f} ms == brute-force "
            f"{exact.best_ms:.3f} ms over {exact.episodes} configurations "
            f"(greedy-per-layer: {greedy.best_ms:.3f} ms)"
        ),
    )
    assert rl.best_ms <= exact.best_ms * 1.001
