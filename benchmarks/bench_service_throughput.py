"""E8 — campaign-service data-plane throughput (jobs/s on small jobs).

The fused episode kernels made individual searches cheap enough that
for small jobs the *data plane* dominates: connection setup per HTTP
request, one lease round-trip per job, one result round-trip per job,
one fsync'ing sqlite transaction per write.  This bench floods a live
service with tiny fig1_toy searches and measures end-to-end jobs/s
plus submit→result latency in three configurations:

* ``local`` — the service's own process pool (2 workers), the
  no-network reference point.
* ``fleet_legacy`` — 2 in-process fleet workers speaking the
  pre-batching protocol: one job per lease, a fresh TCP connection
  per request (``keep_alive=False``), rollback-journal store with one
  commit per write.  This is the baseline the tentpole is measured
  against.
* ``fleet_batched`` — the same 2 workers with batched leases
  (``lease_batch``), persistent keep-alive connections, and a
  WAL + group-commit store; every result batch lands through one
  ``put_many`` transaction.

Results are bitwise-identical across modes by construction (same
``execute_job``, same encode/decode round-trip); the bench asserts
every job completed.  The machine-readable ``BENCH_service.json``
lands next to the repo root; ``scripts/check_bench_artifact.py``
validates its schema and ``scripts/check_bench_regression.py
--service`` gates CI on jobs/s and the batched-over-legacy speedup.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import threading
import time

from repro import __version__
from repro.core.config import ServiceConfig
from repro.runtime.client import ServiceClient
from repro.runtime.service import CampaignService
from repro.runtime.worker import FleetWorker, WorkerConfig

#: Machine-readable artifact consumed by CI and revision comparisons.
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"
#: Artifact layout version (validated by the CI artifact check).
BENCH_SCHEMA_VERSION = 1

#: The flood: N small jobs with distinct identities.  Job i varies the
#: ``seeds`` field (unused by ``kind="search"`` execution and not part
#: of the LUT key), so every job has the same tiny cost, shares one
#: memoised LUT, and still lands as a distinct row in the store —
#: exactly the regime where the data plane dominates wall clock.
N_JOBS = 60
NETWORK = "fig1_toy"
MODE = "gpgpu"
#: Fixed episode budget of every flood job (tiny on fig1_toy).
EPISODES = 4
#: Warmup jobs use ``seeds`` values far above the flood's range so
#: they never collide with measured job identities.
WARMUP_SEEDS = (901, 902)

FLEET_WORKERS = 2
#: Concurrent submitting clients during the timed flood.
SUBMIT_THREADS = 4
#: Jobs per lease in the batched configuration.
LEASE_BATCH = 30
GROUP_COMMIT = 32


class _LiveService:
    """A CampaignService running on a background event-loop thread."""

    def __init__(self, store_path: str, cache_dir: str, **overrides) -> None:
        self.config = ServiceConfig(
            port=0,
            store_path=store_path,
            cache_dir=cache_dir,
            queue_limit=N_JOBS + 8,
            **overrides,
        )
        self.service = CampaignService(self.config)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        started.wait(timeout=30)
        self.url = f"http://127.0.0.1:{self.service.port}"

    def shutdown(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        )
        future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


def _drain(worker: FleetWorker, stop: threading.Event) -> None:
    """A fleet worker's bench loop: lease/execute/report until told to
    stop (idle polls spin fast — the bench measures the data plane,
    not the idle backoff)."""
    while not stop.is_set():
        try:
            if not worker.run_one():
                time.sleep(0.002)
        except Exception:
            if stop.is_set():
                return
            time.sleep(0.01)


def _submit(client: ServiceClient, seeds: int) -> str:
    records = client.submit(
        {
            "network": NETWORK,
            "mode": MODE,
            "episodes": EPISODES,
            "seeds": seeds,
            "kind": "search",
            "kernel": "reference",
        }
    )
    return records[0]["id"]


def _wait_done(service: CampaignService, job_ids: list[str], timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        records = [service.records.get(jid) for jid in job_ids]
        if all(
            r is not None and r.finished and r.finished_s is not None
            for r in records
        ):
            return
        time.sleep(0.002)
    states = {jid: getattr(service.records.get(jid), "state", "?") for jid in job_ids}
    raise AssertionError(f"jobs not terminal after {timeout}s: {states}")


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _measure(live: _LiveService, keep_alive: bool) -> dict:
    """Flood the service with N_JOBS and measure jobs/s + latency.

    Submissions run from SUBMIT_THREADS concurrent clients (each with
    its own connection, as real submitters would) so the flood itself
    exercises the submission path's connection behaviour.
    """
    job_ids: list[str | None] = [None] * N_JOBS
    errors: list[BaseException] = []

    def _flood(thread_index: int) -> None:
        client = ServiceClient(live.url, keep_alive=keep_alive)
        try:
            for i in range(thread_index, N_JOBS, SUBMIT_THREADS):
                job_ids[i] = _submit(client, seeds=i + 1)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
        finally:
            client.close()

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=_flood, args=(k,), daemon=True)
        for k in range(SUBMIT_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, f"submission failed: {errors[0]!r}"
    _wait_done(live.service, job_ids, timeout=120.0)
    wall = time.perf_counter() - t0
    records = [live.service.records[jid] for jid in job_ids]
    bad = {r.id: (r.state, r.error) for r in records if r.state != "done"}
    assert not bad, f"jobs did not complete: {bad}"
    latencies = sorted(r.finished_s - r.submitted_s for r in records)
    store = live.service.store
    return {
        "jobs": N_JOBS,
        "wall_clock_s": wall,
        "jobs_per_s": N_JOBS / wall,
        "p50_latency_s": _percentile(latencies, 0.50),
        "p99_latency_s": _percentile(latencies, 0.99),
        "store": {
            "wal": store.wal,
            "group_commit": store.group_commit,
            "flushes": store.flush_stats["flushes"],
            "rows": store.flush_stats["rows"],
            "flush_total_s": store.flush_stats["total_s"],
        },
    }


def _run_local_mode(tmp: pathlib.Path, cache_dir: str) -> dict:
    live = _LiveService(
        str(tmp / "local.sqlite"), cache_dir, workers=FLEET_WORKERS
    )
    client = ServiceClient(live.url)
    try:
        warm = [_submit(client, seeds=s) for s in WARMUP_SEEDS]
        _wait_done(live.service, warm, timeout=120.0)
        measured = _measure(live, keep_alive=True)
    finally:
        client.close()
        live.shutdown()
    measured.update(workers=FLEET_WORKERS, lease_batch=0, keep_alive=True)
    return measured


def _run_fleet_mode(
    tmp: pathlib.Path,
    cache_dir: str,
    name: str,
    lease_batch: int,
    keep_alive: bool,
    wal: bool,
    group_commit: int,
) -> dict:
    live = _LiveService(
        str(tmp / f"{name}.sqlite"),
        cache_dir,
        workers=0,
        store_wal=wal,
        store_group_commit=group_commit,
    )
    client = ServiceClient(live.url, keep_alive=keep_alive)
    stop = threading.Event()
    workers = []
    threads = []
    try:
        for index in range(FLEET_WORKERS):
            worker = FleetWorker(
                WorkerConfig(
                    server=live.url,
                    name=f"bench-{index}",
                    cache_dir=cache_dir,
                    poll_s=0.05,
                    lease_batch=lease_batch,
                ),
                client=ServiceClient(live.url, keep_alive=keep_alive),
            )
            worker.register()
            thread = threading.Thread(
                target=_drain, args=(worker, stop), daemon=True
            )
            thread.start()
            workers.append(worker)
            threads.append(thread)
        warm = [_submit(client, seeds=s) for s in WARMUP_SEEDS]
        _wait_done(live.service, warm, timeout=120.0)
        measured = _measure(live, keep_alive=keep_alive)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        for worker in workers:
            worker.client.close()
        client.close()
        live.shutdown()
    assert sum(w.stats.lost_leases for w in workers) == 0, "lost leases mid-bench"
    measured.update(
        workers=FLEET_WORKERS, lease_batch=lease_batch, keep_alive=keep_alive
    )
    return measured


def test_service_throughput(tmp_path, emit):
    """The small-job flood: local pool, legacy fleet, batched fleet.

    The batched data plane must beat the legacy one clearly even on a
    noisy CI box (the committed artifact records the real margin; the
    regression gate tracks it across revisions).
    """
    from repro.utils.tables import AsciiTable

    cache_dir = str(tmp_path / "lutcache")
    modes = {
        "local": _run_local_mode(tmp_path, cache_dir),
        "fleet_legacy": _run_fleet_mode(
            tmp_path,
            cache_dir,
            "fleet_legacy",
            lease_batch=1,
            keep_alive=False,
            wal=False,
            group_commit=0,
        ),
        "fleet_batched": _run_fleet_mode(
            tmp_path,
            cache_dir,
            "fleet_batched",
            lease_batch=LEASE_BATCH,
            keep_alive=True,
            wal=True,
            group_commit=GROUP_COMMIT,
        ),
    }
    speedup = modes["fleet_batched"]["jobs_per_s"] / modes["fleet_legacy"]["jobs_per_s"]

    table = AsciiTable(
        ["mode", "jobs/s", "wall (s)", "p50 (ms)", "p99 (ms)", "store flushes"],
        title=f"E8 | service data plane, {N_JOBS} x {NETWORK} jobs",
    )
    for name, row in modes.items():
        table.add_row(
            [
                name,
                f"{row['jobs_per_s']:,.0f}",
                f"{row['wall_clock_s']:.3f}",
                f"{row['p50_latency_s'] * 1e3:.1f}",
                f"{row['p99_latency_s'] * 1e3:.1f}",
                str(row["store"]["flushes"]),
            ]
        )
    emit(
        "service_throughput",
        table.render() + f"\nbatched fleet vs legacy fleet: {speedup:.2f}x",
    )

    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "service_throughput",
        "version": __version__,
        "jobs": N_JOBS,
        "network": NETWORK,
        "mode": MODE,
        "episodes": EPISODES,
        "modes": modes,
        "speedup": {"fleet": speedup},
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Soft in-test floor (CI boxes are noisy); the committed artifact
    # and the regression gate carry the real >= 4x acceptance margin.
    assert speedup >= 2.0, (
        f"batched fleet data plane only {speedup:.2f}x over legacy "
        f"({modes['fleet_batched']['jobs_per_s']:.0f} vs "
        f"{modes['fleet_legacy']['jobs_per_s']:.0f} jobs/s)"
    )
