"""Shared benchmark fixtures and artifact helpers.

Every benchmark regenerates one of the paper's tables or figures and

1. prints the same rows/series the paper reports (straight to the
   terminal, bypassing capture),
2. saves the rendering under ``benchmarks/artifacts/`` so a plain
   ``pytest benchmarks/ --benchmark-only`` run leaves inspectable output.

Profiled LUTs and Table II rows are cached per session (the board is
profiled once per network/mode, exactly like the paper's flow).
"""

from __future__ import annotations

import pathlib

import pytest

from repro import jetson_tx2

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"

#: Episode budget used by all Table II benchmarks (the paper's budget).
EPISODES = 1000
#: Seed reported with every artifact.
SEED = 0


@pytest.fixture(scope="session")
def tx2():
    """The calibrated Jetson TX-2 model (paper §VI-A)."""
    return jetson_tx2()


@pytest.fixture(scope="session")
def artifacts_dir():
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


@pytest.fixture()
def emit(capsys, artifacts_dir):
    """Print a rendering to the live terminal and save it to a file."""

    def _emit(name: str, text: str) -> None:
        path = artifacts_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
            print(f"[saved to {path}]")

    return _emit
