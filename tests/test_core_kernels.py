"""Episode-kernel equivalence: compiled backends are bit-identical.

Three layers of evidence:

* the kernel-driven :class:`QSDNNSearch` reproduces a from-scratch
  Algorithm 1 written against the scalar :class:`QTable` /
  replay-list reference semantics (``best_ms``, the whole curve, the
  greedy policy) — on every available backend;
* driving the runner protocol directly with identical pre-drawn
  randomness yields bitwise-equal flat Q states and per-episode cost
  vectors across backends, property-tested on branchy zoo networks
  (googlenet, resnet50) with replay on/off and
  ``first_visit_bootstrap`` both ways;
* the :class:`ReplayBuffer` ring replays exactly like per-transition
  ``QTable.update`` calls in ``rng.permutation`` order.

Without numba installed the cross-backend cases reduce to the
reference backend (the numba side is exercised by the CI matrix leg
that installs numba).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Mode, jetson_tx2
from repro.core import (
    QSDNNSearch,
    QTable,
    ReplayBuffer,
    SearchConfig,
    Transition,
    numba_available,
    resolve_backend,
)
from repro.core.kernels import ENV_VAR
from repro.engine import InferenceEngineOptimizer
from repro.errors import ConfigError
from repro.utils.rng import RngStream, derive_rng
from repro.zoo import build_network
from tests.helpers import synthetic_chain_lut

BACKENDS = ["reference"] + (["numba"] if numba_available() else [])

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@pytest.fixture(scope="session")
def googlenet_lut_gpgpu(tx2):
    """GoogLeNet (inception branches) profiled in GPGPU mode."""
    return InferenceEngineOptimizer(
        build_network("googlenet"), tx2, mode=Mode.GPGPU
    ).profile()


@pytest.fixture(scope="session")
def resnet50_lut_gpgpu(tx2):
    """ResNet-50 (residual joins) profiled in GPGPU mode."""
    return InferenceEngineOptimizer(
        build_network("resnet50"), tx2, mode=Mode.GPGPU
    ).profile()


# -- Algorithm 1 reference reimplementation ---------------------------------


def _naive_search(lut, config):
    """Algorithm 1 straight from the paper, on the scalar QTable API.

    Pure per-update ``QTable.update`` calls, a plain-list replay ring,
    ``rng.permutation`` replay order — the pre-kernel reference
    implementation the fused episode kernels must reproduce exactly.
    Returns (best_total, curve, qtable, best_choices).
    """
    indexed = lut.indexed()
    engine = indexed.engine()
    num_layers = len(indexed)
    q_parent = indexed.q_parent
    action_counts = np.asarray(indexed.num_actions, dtype=np.int64)
    row_sizes = [
        1 if parent < 0 else int(indexed.num_actions[parent])
        for parent in q_parent
    ]
    qtable = QTable(
        list(indexed.num_actions),
        config.learning_rate,
        config.discount,
        row_sizes=row_sizes,
        first_visit_bootstrap=config.first_visit_bootstrap,
    )
    items: list[tuple] = []
    ring_next = 0
    stream = RngStream(config.seed, "qsdnn", lut.graph_name, lut.mode)
    policy_rng = stream.child("policy")
    replay_rng = stream.child("replay")
    best_total = np.inf
    best_choices = None
    curve = []
    for episode in range(config.episodes):
        epsilon = config.epsilon.epsilon_for(episode)
        choices = [0] * num_layers
        rows = [0] * num_layers
        if epsilon >= 1.0:
            explored = policy_rng.integers(0, action_counts).tolist()
            for i in range(num_layers):
                parent = q_parent[i]
                rows[i] = 0 if parent < 0 else choices[parent]
                choices[i] = explored[i]
        elif epsilon <= 0.0:
            for i in range(num_layers):
                parent = q_parent[i]
                row = 0 if parent < 0 else choices[parent]
                rows[i] = row
                choices[i] = qtable.greedy_action(i, row)
        else:
            explore = (policy_rng.random(num_layers) < epsilon).tolist()
            explored = policy_rng.integers(0, action_counts).tolist()
            for i in range(num_layers):
                parent = q_parent[i]
                row = 0 if parent < 0 else choices[parent]
                rows[i] = row
                choices[i] = (
                    explored[i] if explore[i] else qtable.greedy_action(i, row)
                )
        costs = engine.layer_costs(choices)
        total = float(costs.sum())
        if config.reward_shaping:
            rewards = (-costs).tolist()
        else:
            rewards = [0.0] * (num_layers - 1) + [-total]
        for i in range(num_layers):
            next_row = rows[i + 1] if i < num_layers - 1 else 0
            qtable.update(i, rows[i], choices[i], rewards[i], next_row)
            if config.replay_enabled:
                item = (i, rows[i], choices[i], rewards[i], next_row)
                if len(items) < config.replay_capacity:
                    items.append(item)
                else:
                    items[ring_next] = item
                ring_next = (ring_next + 1) % config.replay_capacity
        if config.replay_enabled and items:
            for pick in replay_rng.permutation(len(items)).tolist():
                qtable.update(*items[pick])
        if total < best_total:
            best_total = total
            best_choices = choices
        curve.append(total)
    return best_total, curve, qtable, best_choices


class TestSearchMatchesNaiveAlgorithm1:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_synthetic_chains(self, backend, data):
        lut = synthetic_chain_lut(
            data.draw(st.integers(2, 8), label="layers"),
            data.draw(st.integers(2, 6), label="actions"),
            seed=data.draw(st.integers(0, 99), label="lut_seed"),
        )
        config = SearchConfig(
            episodes=data.draw(st.sampled_from([12, 40, 90]), label="episodes"),
            replay_enabled=data.draw(st.booleans(), label="replay"),
            reward_shaping=data.draw(st.booleans(), label="shaping"),
            first_visit_bootstrap=data.draw(st.booleans(), label="fvb"),
            replay_capacity=data.draw(
                st.sampled_from([3, 16, 128]), label="capacity"
            ),
            seed=data.draw(st.integers(0, 500), label="seed"),
            polish_sweeps=0,
            kernel=backend,
        )
        best_total, curve, qtable, _ = _naive_search(lut, config)
        result = QSDNNSearch(lut, config).run()
        assert result.kernel_backend == backend
        assert result.best_ms == best_total
        assert result.curve_ms == curve
        engine = lut.indexed().engine()
        naive_greedy = engine.price(
            qtable.greedy_rollout(parents=lut.indexed().q_parent)
        )
        assert result.greedy_ms == naive_greedy

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("replay", [False, True])
    @pytest.mark.parametrize("fvb", [False, True])
    def test_branchy_googlenet(self, googlenet_lut_gpgpu, backend, replay, fvb):
        config = SearchConfig(
            episodes=60,
            replay_enabled=replay,
            first_visit_bootstrap=fvb,
            seed=3,
            polish_sweeps=0,
            kernel=backend,
        )
        best_total, curve, _, _ = _naive_search(googlenet_lut_gpgpu, config)
        result = QSDNNSearch(googlenet_lut_gpgpu, config).run()
        assert result.best_ms == best_total
        assert result.curve_ms == curve


# -- runner-level cross-backend bitwise state equality ----------------------


def _plan_episodes(rng, num_layers, action_counts, episodes, replay, capacity):
    """Pre-draw every episode's randomness (shared across backends)."""
    plan = []
    stored = 0
    for _ in range(episodes):
        kind = int(rng.integers(0, 3))
        if kind == 0:
            explore, explored = None, None
        elif kind == 1:
            explore, explored = None, rng.integers(0, action_counts)
        else:
            explore = rng.random(num_layers) < 0.5
            explored = rng.integers(0, action_counts)
        if replay:
            stored = min(stored + num_layers, capacity)
            perm = rng.permutation(stored)
        else:
            perm = None
        split = bool(rng.integers(0, 2))
        plan.append((explore, explored, perm, split))
    return plan


def _runner_for(backend, engine, qtable, q_parent, replay, capacity):
    """Construct a backend runner directly, bypassing availability
    dispatch: without numba installed the "numba" kernels run as plain
    Python over the same flat arrays (slow, but the identical
    algorithm), which lets these bitwise tests cover both code paths
    everywhere."""
    if backend == "numba":
        from repro.core.kernels import numba_backend

        return numba_backend.NumbaRunner(
            engine, qtable, q_parent, replay, capacity
        )
    from repro.core.kernels import reference

    return reference.ReferenceRunner(engine, qtable, q_parent, replay, capacity)


def _drive_runner(backend, lut, plan, *, replay, capacity, fvb):
    """Run a pre-drawn episode plan through one backend's runner."""
    indexed = lut.indexed()
    engine = indexed.engine()
    num_layers = len(indexed)
    row_sizes = [
        1 if parent < 0 else int(indexed.num_actions[parent])
        for parent in indexed.q_parent
    ]
    qtable = QTable(
        list(indexed.num_actions),
        0.05,
        0.9,
        row_sizes=row_sizes,
        first_visit_bootstrap=fvb,
    )
    runner = _runner_for(
        backend, engine, qtable, indexed.q_parent, replay, capacity
    )
    costs_log = []
    choices_log = []
    for explore, explored, perm, split in plan:
        if split:
            # The two-call path (terminal-reward / shaping-off driver).
            costs = runner.rollout_price(explore, explored)
            rewards = np.zeros(num_layers, dtype=np.float64)
            rewards[num_layers - 1] = -float(costs.sum())
            costs_log.append(costs.copy())
            runner.learn(rewards, perm)
        else:
            costs = runner.episode(explore, explored, perm)
            costs_log.append(costs.copy())
        choices_log.append(list(runner.snapshot()))
    runner.finalize()
    return qtable, costs_log, choices_log


class TestCrossBackendBitwise:
    """Reference vs numba-kernel state equality.

    Runs everywhere: without numba the numba kernels execute as plain
    Python (same algorithm, same flat arrays); with numba (the CI
    matrix leg) they run JIT-compiled.
    """

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_synthetic_chains(self, data):
        lut = synthetic_chain_lut(
            data.draw(st.integers(2, 9), label="layers"),
            data.draw(st.integers(2, 6), label="actions"),
            seed=data.draw(st.integers(0, 99), label="lut_seed"),
        )
        self._assert_backends_agree(
            lut,
            episodes=data.draw(st.sampled_from([10, 35]), label="episodes"),
            replay=data.draw(st.booleans(), label="replay"),
            capacity=data.draw(st.sampled_from([4, 32]), label="capacity"),
            fvb=data.draw(st.booleans(), label="fvb"),
            rng_seed=data.draw(st.integers(0, 999), label="rng_seed"),
        )

    @pytest.mark.parametrize("replay", [False, True])
    @pytest.mark.parametrize("fvb", [False, True])
    def test_googlenet(self, googlenet_lut_gpgpu, replay, fvb):
        self._assert_backends_agree(
            googlenet_lut_gpgpu, episodes=40, replay=replay, capacity=128,
            fvb=fvb, rng_seed=7,
        )

    @pytest.mark.parametrize("replay", [False, True])
    @pytest.mark.parametrize("fvb", [False, True])
    def test_resnet50(self, resnet50_lut_gpgpu, replay, fvb):
        self._assert_backends_agree(
            resnet50_lut_gpgpu, episodes=40, replay=replay, capacity=128,
            fvb=fvb, rng_seed=11,
        )

    @staticmethod
    def _assert_backends_agree(lut, *, episodes, replay, capacity, fvb, rng_seed):
        indexed = lut.indexed()
        action_counts = np.asarray(indexed.num_actions, dtype=np.int64)
        plan = _plan_episodes(
            np.random.default_rng(rng_seed), len(indexed), action_counts,
            episodes, replay, capacity,
        )
        ref_q, ref_costs, ref_choices = _drive_runner(
            "reference", lut, plan, replay=replay, capacity=capacity, fvb=fvb
        )
        nb_q, nb_costs, nb_choices = _drive_runner(
            "numba", lut, plan, replay=replay, capacity=capacity, fvb=fvb
        )
        ref_flat = ref_q.flat()
        nb_flat = nb_q.flat()
        assert np.array_equal(ref_flat.data, nb_flat.data)
        assert np.array_equal(ref_flat.row_max, nb_flat.row_max)
        assert np.array_equal(ref_flat.visited, nb_flat.visited)
        assert ref_choices == nb_choices
        for a, b in zip(ref_costs, nb_costs):
            assert np.array_equal(a, b)


@needs_numba
class TestNumbaSearchEndToEnd:
    def test_search_results_match_reference(self, resnet50_lut_gpgpu):
        for replay in (False, True):
            results = {}
            for backend in ("reference", "numba"):
                config = SearchConfig(
                    episodes=80, seed=5, replay_enabled=replay, kernel=backend
                )
                results[backend] = QSDNNSearch(resnet50_lut_gpgpu, config).run()
            ref, nb = results["reference"], results["numba"]
            assert nb.best_ms == ref.best_ms
            assert nb.curve_ms == ref.curve_ms
            assert nb.greedy_ms == ref.greedy_ms
            assert nb.best_assignments == ref.best_assignments
            assert nb.kernel_backend == "numba"


# -- replay buffer ring ------------------------------------------------------


class TestReplayRing:
    def test_sample_order_matches_permutation_stream(self):
        buf = ReplayBuffer(capacity=16)
        for i in range(10):
            buf.push(Transition(0, 0, i % 2, -float(i)))
        a = derive_rng(42, "replay")
        b = derive_rng(42, "replay")
        order = buf.sample_order(a)
        assert order.tolist() == b.permutation(10).tolist()
        # The generators stay in lockstep afterwards.
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_replay_equals_per_transition_updates(self):
        transitions = [
            Transition(0, 0, 1, -2.5, 1),
            Transition(1, 1, 0, -1.25, 0),
            Transition(0, 0, 0, -0.5, None),
            Transition(1, 0, 1, -3.0, 1),
        ]
        buf = ReplayBuffer(capacity=8)
        for t in transitions:
            buf.push(t)
        applied = QTable([2, 2], learning_rate=0.05, discount=0.9)
        buf.replay(applied, derive_rng(9, "r"))
        manual = QTable([2, 2], learning_rate=0.05, discount=0.9)
        for pick in derive_rng(9, "r").permutation(len(transitions)).tolist():
            manual.update(*transitions[pick])
        assert np.array_equal(applied.flat().data, manual.flat().data)
        assert np.array_equal(applied.flat().row_max, manual.flat().row_max)

    def test_ring_overwrites_oldest_first(self):
        buf = ReplayBuffer(capacity=3)
        for i in range(5):
            buf.push(Transition(0, 0, 0, -float(i)))
        rewards = sorted(t.reward for t in buf.transitions())
        assert rewards == [-4.0, -3.0, -2.0]

    @needs_numba
    def test_numba_replay_matches_scalar(self, monkeypatch):
        rng_seed = 123
        transitions = [
            Transition(i % 3, 0, i % 2, -float(i + 1), i % 2)
            for i in range(20)
        ]

        def run(backend):
            monkeypatch.setenv(ENV_VAR, backend)
            q = QTable([2, 2, 2], learning_rate=0.05, discount=0.9)
            buf = ReplayBuffer(capacity=16)
            for t in transitions:
                buf.push(t)
            buf.replay(q, derive_rng(rng_seed, "r"))
            return q

        scalar = run("reference")
        compiled = run("numba")
        assert np.array_equal(scalar.flat().data, compiled.flat().data)
        assert np.array_equal(scalar.flat().row_max, compiled.flat().row_max)


# -- backend selection surface ----------------------------------------------


class TestBackendSelection:
    def test_auto_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        expected = "numba" if numba_available() else "reference"
        assert resolve_backend("auto") == expected
        assert resolve_backend() == expected

    def test_env_override_forces_reference(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert resolve_backend("auto") == "reference"

    def test_explicit_choice_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        assert resolve_backend("reference") == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            resolve_backend("cuda")

    def test_missing_numba_fails_loudly(self, monkeypatch):
        import repro.core.kernels as kernels

        monkeypatch.setattr(kernels, "_numba_cache", False)
        with pytest.raises(ConfigError):
            kernels.resolve_backend("numba")

    def test_config_validates_kernel(self):
        with pytest.raises(ConfigError):
            SearchConfig(kernel="cython")

    def test_search_result_reports_backend_and_throughput(self):
        lut = synthetic_chain_lut(4, 3, seed=0)
        result = QSDNNSearch(
            lut, SearchConfig(episodes=30, kernel="reference")
        ).run()
        assert result.kernel_backend == "reference"
        assert result.episodes_per_s > 0
        summary = result.summary()
        assert "eps/s" in summary and "[reference]" in summary

    def test_cli_search_kernel_flag(self, tmp_path, capsys, lenet_lut_gpgpu):
        from repro.cli import main

        lut_path = tmp_path / "lut.json"
        lut_path.write_text(lenet_lut_gpgpu.to_json())
        code = main([
            "search", "--lut", str(lut_path), "--episodes", "40",
            "--kernel", "reference",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "eps/s" in out and "[reference]" in out

    def test_campaign_job_kernel_validated(self):
        from repro.runtime.campaign import CampaignJob

        job = CampaignJob(network="lenet5", kernel="reference")
        assert job.kernel == "reference"
        with pytest.raises(ConfigError):
            CampaignJob(network="lenet5", kernel="gpu")
