"""The mega-batch SoA path: K-seed sweeps bitwise-equal to K scalar runs.

The mega kernels restructure K independent searches as
structure-of-arrays over the seed axis (one contiguous Q block, one
``(K, capacity, 5)`` replay ring) and sweep all seeds in a single
dispatch per episode.  The contract is the repo's usual one: every
per-seed result — and the final flat Q state itself — must equal an
independent single-seed :class:`QSDNNSearch` run bit-for-bit, for
every config corner ({replay on/off} x {first-visit bootstrap} x
{shaping on/off}) and on both kernel backends (without numba the fused
kernels run as plain Python over the same arrays).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MultiSeedSearch,
    QSDNNSearch,
    SearchConfig,
    seed_range,
)
from repro.core.kernels import (
    MEGA_SEED_THRESHOLD,
    make_runner,
    mega_selected,
    numba_available,
    resolve_backend,
)
from repro.core.qtable import QTable
from repro.utils.rng import RngStream
from tests.helpers import synthetic_chain_lut


def _mega_config(base: SearchConfig) -> SearchConfig:
    """The same hyper-parameters with the mega path forced."""
    return SearchConfig(
        episodes=base.episodes,
        replay_enabled=base.replay_enabled,
        reward_shaping=base.reward_shaping,
        first_visit_bootstrap=base.first_visit_bootstrap,
        polish_sweeps=base.polish_sweeps,
        track_curve=base.track_curve,
        seed=base.seed,
        kernel="mega",
    )


def _scalar_final_qtable(lut, config: SearchConfig, seed: int) -> QTable:
    """Replay one scalar search keeping the Q table (QSDNNSearch keeps
    it local), driving the runner exactly as ``QSDNNSearch.run`` does."""
    idx = lut.indexed()
    num_layers = len(idx)
    action_counts = np.asarray(idx.num_actions, dtype=np.int64)
    row_sizes = [
        1 if parent < 0 else int(idx.num_actions[parent])
        for parent in idx.q_parent
    ]
    qtable = QTable(
        list(idx.num_actions),
        config.learning_rate,
        config.discount,
        row_sizes=row_sizes,
        first_visit_bootstrap=config.first_visit_bootstrap,
    )
    runner = make_runner(
        idx.engine(),
        qtable,
        idx.q_parent,
        replay_enabled=config.replay_enabled,
        replay_capacity=config.replay_capacity,
        backend=resolve_backend("auto"),
    )
    stream = RngStream(seed, "qsdnn", lut.graph_name, lut.mode)
    policy_rng = stream.child("policy")
    replay_rng = stream.child("replay")
    for episode in range(config.episodes):
        epsilon = config.epsilon.epsilon_for(episode)
        if epsilon >= 1.0:
            explore = None
            explored = policy_rng.integers(0, action_counts)
        elif epsilon <= 0.0:
            explore = explored = None
        else:
            explore = policy_rng.random(num_layers) < epsilon
            explored = policy_rng.integers(0, action_counts)
        perm = runner.draw_replay_order(replay_rng)
        if config.reward_shaping:
            runner.episode(explore, explored, perm)
        else:
            costs = runner.rollout_price(explore, explored)
            rewards = np.zeros(num_layers, dtype=np.float64)
            rewards[num_layers - 1] = -float(costs.sum())
            runner.learn(rewards, perm)
    runner.finalize()
    return qtable


def _assert_mega_matches_singles(lut, config, seeds):
    """Mega sweep vs K independent scalar runs: results AND flat state."""
    search = MultiSeedSearch(lut, _mega_config(config), seeds=seeds)
    sweep = search.run()
    state = search._mega_state  # test hook set by the mega path
    assert len(sweep.results) == len(seeds)
    for s, (seed, member) in enumerate(zip(seeds, sweep.results)):
        single_cfg = SearchConfig(
            episodes=config.episodes,
            replay_enabled=config.replay_enabled,
            reward_shaping=config.reward_shaping,
            first_visit_bootstrap=config.first_visit_bootstrap,
            polish_sweeps=config.polish_sweeps,
            track_curve=config.track_curve,
            seed=seed,
        )
        single = QSDNNSearch(lut, single_cfg).run()
        assert member.best_ms == single.best_ms
        assert member.curve_ms == single.curve_ms
        assert member.epsilon_trace == single.epsilon_trace
        assert member.best_assignments == single.best_assignments
        assert member.greedy_ms == single.greedy_ms
        assert member.config.seed == seed
        assert member.kernel_backend == "mega"
        # The SoA row is the scalar run's flat Q state, bitwise.
        flat = _scalar_final_qtable(lut, config, seed).flat()
        assert np.array_equal(state.q[s], flat.data)
        assert np.array_equal(state.row_max[s], flat.row_max)
        assert np.array_equal(state.visited[s], flat.visited)
    return sweep, state


class TestExactnessProperty:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_matches_independent_runs(self, data):
        lut = synthetic_chain_lut(
            data.draw(st.integers(2, 7), label="layers"),
            data.draw(st.integers(2, 5), label="actions"),
            seed=data.draw(st.integers(0, 99), label="lut_seed"),
        )
        base = data.draw(st.integers(0, 500), label="base_seed")
        count = data.draw(st.integers(1, 4), label="seed_count")
        config = SearchConfig(
            episodes=data.draw(st.sampled_from([12, 40, 90]), label="episodes"),
            replay_enabled=data.draw(st.booleans(), label="replay"),
            reward_shaping=data.draw(st.booleans(), label="shaping"),
            first_visit_bootstrap=data.draw(st.booleans(), label="fvb"),
            polish_sweeps=data.draw(st.sampled_from([0, 2]), label="polish"),
        )
        _assert_mega_matches_singles(lut, config, seed_range(base, count))


class TestExactnessOnRealLuts:
    def test_lenet_gpgpu_both_replay_paths(self, lenet_lut_gpgpu):
        for replay in (True, False):
            _assert_mega_matches_singles(
                lenet_lut_gpgpu,
                SearchConfig(episodes=150, replay_enabled=replay),
                seed_range(0, 3),
            )

    def test_branchy_network(self, squeezenet_lut_gpgpu):
        _assert_mega_matches_singles(
            squeezenet_lut_gpgpu,
            SearchConfig(episodes=80, first_visit_bootstrap=True),
            seed_range(0, 2),
        )

    def test_replay_ring_is_seed_isolated(self, toy_lut_gpgpu):
        """Each SoA ring row equals the ring of a K=1 mega run with
        that seed — batching never cross-contaminates seeds."""
        config = SearchConfig(episodes=60)
        seeds = seed_range(0, 3)
        _, batched = _assert_mega_matches_singles(toy_lut_gpgpu, config, seeds)
        for s, seed in enumerate(seeds):
            solo_search = MultiSeedSearch(
                toy_lut_gpgpu, _mega_config(config), seeds=[seed]
            )
            solo_search.run()
            solo = solo_search._mega_state
            assert np.array_equal(batched.ring[s], solo.ring[0])
            assert batched.fill == solo.fill and batched.pos == solo.pos


class TestRouting:
    def test_explicit_mega_always_selected(self):
        assert mega_selected("mega", 1)
        assert mega_selected("mega", MEGA_SEED_THRESHOLD + 1)

    def test_auto_needs_threshold_and_numba(self):
        expected = numba_available()
        assert mega_selected("auto", MEGA_SEED_THRESHOLD) == expected
        assert mega_selected("auto", MEGA_SEED_THRESHOLD - 1) is False
        assert mega_selected("auto", 1) is False

    def test_env_var_mega_routes_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "mega")
        assert mega_selected("auto", 1)
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert not mega_selected("auto", 1)

    def test_named_backends_never_mega(self):
        for choice in ("numba", "reference"):
            assert not mega_selected(choice, 10_000)

    def test_scalar_search_degrades_mega(self, toy_lut_gpgpu):
        """A scalar QSDNNSearch with kernel="mega" runs the per-seed
        backend (there is no K to batch) and stays bitwise-equal."""
        mega = QSDNNSearch(
            toy_lut_gpgpu, SearchConfig(episodes=45, kernel="mega")
        ).run()
        auto = QSDNNSearch(toy_lut_gpgpu, SearchConfig(episodes=45)).run()
        assert mega.best_ms == auto.best_ms
        assert mega.curve_ms == auto.curve_ms
        assert mega.kernel_backend == resolve_backend("auto")

    def test_sweep_surface(self, toy_lut_gpgpu):
        config = SearchConfig(episodes=45, kernel="mega")
        sweep = MultiSeedSearch(
            toy_lut_gpgpu, config, seeds=seed_range(0, 3)
        ).run()
        assert sweep.lockstep
        assert all(r.kernel_backend == "mega" for r in sweep.results)
        assert "seeds/s" in sweep.summary()


class TestConfigValidation:
    def test_mega_is_a_valid_kernel_choice(self):
        assert SearchConfig(episodes=10, kernel="mega").kernel == "mega"

    def test_unknown_kernel_still_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SearchConfig(episodes=10, kernel="giga")
