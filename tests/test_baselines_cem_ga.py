"""Population-based baselines: CEM and the genetic algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import cross_entropy_method, genetic_search
from repro.baselines.dp_optimal import chain_dp
from repro.core import QSDNNSearch, SearchConfig
from repro.core.population import validate_population
from repro.errors import ConfigError
from tests.helpers import synthetic_chain_lut, trap_lut

RUNNERS = [cross_entropy_method, genetic_search]


class TestPopulationsAlwaysValid:
    """Every priced generation contains only valid primitive indices."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_observed_populations_valid(self, runner, data):
        lut = synthetic_chain_lut(
            data.draw(st.integers(2, 8), label="layers"),
            data.draw(st.integers(2, 7), label="actions"),
            seed=data.draw(st.integers(0, 99), label="lut_seed"),
        )
        engine = lut.engine()
        seen = []

        def observe(population, totals):
            validate_population(engine.num_actions, population)
            assert len(totals) == len(population)
            assert np.isfinite(totals).all()
            seen.append(len(population))

        runner(
            lut,
            episodes=data.draw(st.sampled_from([7, 64, 150]), label="episodes"),
            seed=data.draw(st.integers(0, 99), label="seed"),
            population=data.draw(st.sampled_from([4, 16]), label="population"),
            on_population=observe,
        )
        assert seen, "runner never priced a population"


class TestBudgetAndDeterminism:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_budget_counted_in_evaluations(self, runner):
        lut = synthetic_chain_lut(4, 3, seed=1)
        result = runner(lut, episodes=100, seed=0, population=16)
        assert result.episodes == 100
        assert len(result.curve_ms) == 100

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_same_seed_same_result(self, runner):
        lut = synthetic_chain_lut(5, 4, seed=2)
        a = runner(lut, episodes=120, seed=7)
        b = runner(lut, episodes=120, seed=7)
        assert a.best_ms == b.best_ms
        assert a.curve_ms == b.curve_ms
        assert a.best_assignments == b.best_assignments

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_distinct_seeds_explore_differently(self, runner):
        lut = synthetic_chain_lut(6, 5, seed=3)
        a = runner(lut, episodes=60, seed=0)
        b = runner(lut, episodes=60, seed=1)
        assert a.curve_ms != b.curve_ms

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_rejects_bad_budgets(self, runner):
        lut = synthetic_chain_lut(3, 2, seed=0)
        with pytest.raises(ConfigError):
            runner(lut, episodes=0)
        with pytest.raises(ConfigError):
            runner(lut, episodes=10, population=1)


class TestSolutionQuality:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_escapes_fig1_trap(self, runner):
        result = runner(trap_lut(), episodes=200, seed=0)
        assert result.best_ms == pytest.approx(10.0)

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_near_optimal_on_chains(self, runner):
        lut = synthetic_chain_lut(6, 4, seed=5)
        optimal = chain_dp(lut).best_ms
        result = runner(lut, episodes=600, seed=0)
        assert result.best_ms <= optimal * 1.05 + 1e-9

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_within_five_percent_of_qsdnn(self, runner, lenet_lut_gpgpu):
        """The Table-2 claim: population baselines match QS-DNN closely."""
        qs = QSDNNSearch(
            lenet_lut_gpgpu, SearchConfig(episodes=600, seed=0)
        ).run()
        result = runner(lenet_lut_gpgpu, episodes=600, seed=0)
        assert result.best_ms <= qs.best_ms * 1.05

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_polish_off_reports_raw_best(self, runner):
        lut = synthetic_chain_lut(5, 4, seed=8)
        raw = runner(lut, episodes=80, seed=0, polish_sweeps=0)
        polished = runner(lut, episodes=80, seed=0, polish_sweeps=2)
        assert polished.best_ms <= raw.best_ms + 1e-12
        engine = lut.engine()
        choices = engine.choices_of(raw.best_assignments)
        assert engine.price(choices) == pytest.approx(raw.best_ms)
