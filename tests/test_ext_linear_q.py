"""Tests for the linear function-approximation agent."""

from __future__ import annotations

import pytest

from repro.baselines import chain_dp, random_search
from repro.errors import ConfigError
from repro.ext.linear_q import LinearQConfig, LinearQSearch

from tests.helpers import synthetic_chain_lut


class TestLinearQConfig:
    @pytest.mark.parametrize("field,value", [
        ("episodes", 0),
        ("learning_rate", 0.0),
        ("discount", 1.5),
        ("polish_sweeps", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            LinearQConfig(**{field: value})


class TestLinearQSearch:
    def test_runs_and_returns_valid_schedule(self):
        lut = synthetic_chain_lut(10, 4, seed=1)
        result = LinearQSearch(lut, LinearQConfig(episodes=200, seed=0)).run()
        assert result.method == "linear-q"
        assert lut.schedule_time(result.best_assignments) == pytest.approx(
            result.best_ms
        )

    def test_beats_random_search(self):
        lut = synthetic_chain_lut(15, 6, seed=2)
        lq = LinearQSearch(
            lut, LinearQConfig(episodes=400, seed=0, polish_sweeps=0)
        ).run()
        rs = random_search(lut, episodes=400, seed=0)
        assert lq.best_ms <= rs.best_ms

    def test_near_optimal_on_real_network(self, lenet_lut_gpgpu):
        lut = lenet_lut_gpgpu
        result = LinearQSearch(lut, LinearQConfig(episodes=500, seed=0)).run()
        optimum = chain_dp(lut).best_ms
        assert result.best_ms <= optimum * 1.25

    def test_deterministic(self):
        lut = synthetic_chain_lut(8, 4, seed=3)
        a = LinearQSearch(lut, LinearQConfig(episodes=150, seed=7)).run()
        b = LinearQSearch(lut, LinearQConfig(episodes=150, seed=7)).run()
        assert a.best_ms == b.best_ms
        assert a.best_assignments == b.best_assignments

    def test_curve_recorded(self):
        lut = synthetic_chain_lut(6, 3, seed=4)
        result = LinearQSearch(lut, LinearQConfig(episodes=100, seed=0)).run()
        assert len(result.curve_ms) == 100

    def test_polish_never_hurts(self):
        lut = synthetic_chain_lut(10, 4, seed=5)
        raw = LinearQSearch(
            lut, LinearQConfig(episodes=200, seed=0, polish_sweeps=0)
        ).run()
        polished = LinearQSearch(
            lut, LinearQConfig(episodes=200, seed=0, polish_sweeps=2)
        ).run()
        assert polished.best_ms <= raw.best_ms + 1e-9
