"""Unit tests for the network graph and fluent builder."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, UnknownLayerError
from repro.nn.builder import NetworkBuilder
from repro.nn.graph import NetworkGraph
from repro.nn.layers import Layer
from repro.nn.tensor import TensorShape
from repro.nn.types import LayerKind


def small_chain() -> NetworkGraph:
    b = NetworkBuilder("chain", TensorShape(3, 8, 8))
    b.conv("c1", out_channels=4, kernel=3, padding=1)
    b.relu("r1")
    b.fc("f1", out_channels=10)
    return b.build()


def branchy() -> NetworkGraph:
    b = NetworkBuilder("branchy", TensorShape(3, 8, 8))
    trunk = b.conv("trunk", out_channels=4, kernel=1)
    left = b.conv("left", out_channels=2, kernel=1, after=trunk)
    right = b.conv("right", out_channels=2, kernel=1, after=trunk)
    b.concat("merge", inputs=[left, right])
    return b.build()


class TestGraphStructure:
    def test_layers_exclude_input_by_default(self):
        net = small_chain()
        assert [l.name for l in net.layers()] == ["c1", "r1", "f1"]

    def test_layers_include_input(self):
        net = small_chain()
        assert net.layers(include_input=True)[0].kind is LayerKind.INPUT

    def test_len_counts_input(self):
        assert len(small_chain()) == 4

    def test_contains(self):
        net = small_chain()
        assert "c1" in net and "nope" not in net

    def test_duplicate_name_rejected(self):
        b = NetworkBuilder("dup", TensorShape(1, 4, 4))
        b.relu("r")
        with pytest.raises(GraphError):
            b.relu("r")

    def test_unknown_producer_rejected(self):
        net = small_chain()
        with pytest.raises(UnknownLayerError):
            net.add_layer(Layer(name="x", kind=LayerKind.RELU, inputs=("ghost",)))

    def test_second_input_layer_rejected(self):
        net = small_chain()
        with pytest.raises(GraphError):
            net.add_layer(Layer(name="input2", kind=LayerKind.INPUT))

    def test_unknown_lookup_raises(self):
        with pytest.raises(UnknownLayerError):
            small_chain().layer("ghost")

    def test_output_shape_lookup(self):
        net = small_chain()
        assert net.output_shape("c1") == TensorShape(4, 8, 8)
        assert net.output_shape("f1") == TensorShape(10, 1, 1)

    def test_predecessors_successors(self):
        net = branchy()
        assert {l.name for l in net.successors("trunk")} == {"left", "right"}
        assert [l.name for l in net.predecessors("merge")] == ["left", "right"]

    def test_edges_exclude_input_by_default(self):
        net = small_chain()
        assert ("input", "c1") not in net.edges()
        assert ("input", "c1") in net.edges(include_input=True)

    def test_branch_edges(self):
        net = branchy()
        edges = net.edges()
        assert ("trunk", "left") in edges and ("left", "merge") in edges

    def test_output_layer_unique_sink(self):
        assert branchy().output_layer.name == "merge"

    def test_two_sinks_rejected(self):
        b = NetworkBuilder("twosinks", TensorShape(1, 4, 4))
        b.relu("a")
        b.relu("b", after="input")
        net = b._graph  # bypass build() validation deliberately
        with pytest.raises(GraphError):
            _ = net.output_layer

    def test_validate_passes_on_good_graph(self):
        branchy().validate()

    def test_repr(self):
        assert "chain" in repr(small_chain())


class TestBuilder:
    def test_cursor_follows_additions(self):
        b = NetworkBuilder("c", TensorShape(1, 4, 4))
        name = b.relu("r")
        assert b.cursor == name == "r"

    def test_after_overrides_cursor(self):
        net = branchy()
        assert net.layer("right").inputs == ("trunk",)

    def test_builder_is_spent_after_build(self):
        b = NetworkBuilder("c", TensorShape(1, 4, 4))
        b.relu("r")
        b.build()
        with pytest.raises(GraphError):
            b.relu("again")

    def test_pool_stride_defaults_to_kernel(self):
        b = NetworkBuilder("p", TensorShape(1, 8, 8))
        b.pool_max("p1", kernel=2)
        net = b.build()
        assert net.layer("p1").stride == 2
        assert net.output_shape("p1") == TensorShape(1, 4, 4)

    def test_conv_bn_relu_block(self):
        b = NetworkBuilder("blk", TensorShape(3, 8, 8))
        out = b.conv_bn_relu("conv1", out_channels=8, kernel=3, padding=1)
        net = b.build()
        assert out == "conv1/relu"
        assert net.layer("conv1/bn").kind is LayerKind.BATCH_NORM

    def test_dw_bn_relu_block(self):
        b = NetworkBuilder("blk", TensorShape(8, 8, 8))
        out = b.dw_bn_relu("dw1", kernel=3, padding=1)
        net = b.build()
        assert out == "dw1/relu"
        assert net.layer("dw1").kind is LayerKind.DEPTHWISE_CONV

    def test_output_shape_accessor(self):
        b = NetworkBuilder("s", TensorShape(3, 8, 8))
        b.conv("c", out_channels=5, kernel=1)
        assert b.output_shape("c").channels == 5

    def test_flatten(self):
        b = NetworkBuilder("f", TensorShape(2, 3, 3))
        b.flatten("fl")
        net = b.build()
        assert net.output_shape("fl") == TensorShape(18, 1, 1)

    def test_add_layer_eltwise(self):
        b = NetworkBuilder("res", TensorShape(4, 8, 8))
        c = b.conv("c", out_channels=4, kernel=3, padding=1)
        s = b.add("sum", inputs=[c, "input"])
        net = b.build()
        assert net.layer(s).kind is LayerKind.ELTWISE_ADD


class TestAccounting:
    def test_total_flops_positive(self):
        assert small_chain().total_flops() > 0

    def test_total_weight_bytes_positive(self):
        assert small_chain().total_weight_bytes() > 0

    def test_relu_adds_no_weights(self):
        b = NetworkBuilder("w", TensorShape(1, 4, 4))
        b.relu("r")
        assert b.build().total_weight_bytes() == 0
