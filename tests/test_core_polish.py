"""Tests for the coordinate-descent polish step."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import brute_force, chain_dp
from repro.core.polish import coordinate_descent

from tests.helpers import synthetic_chain_lut, trap_lut


def _random_choices(idx, seed):
    rng = np.random.default_rng(seed)
    return np.array([rng.integers(n) for n in idx.num_actions], dtype=np.int64)


class TestCoordinateDescent:
    def test_never_worsens(self):
        lut = synthetic_chain_lut(10, 5, seed=1)
        idx = lut.indexed()
        for seed in range(10):
            start = _random_choices(idx, seed)
            before = idx.total_ms(start)
            polished, after = coordinate_descent(idx, start, max_sweeps=3)
            assert after <= before + 1e-12
            assert idx.total_ms(polished) == pytest.approx(after)

    def test_input_not_mutated(self):
        lut = synthetic_chain_lut(6, 4, seed=2)
        idx = lut.indexed()
        start = _random_choices(idx, 0)
        original = start.copy()
        coordinate_descent(idx, start, max_sweeps=3)
        np.testing.assert_array_equal(start, original)

    def test_fixed_point_of_optimum(self):
        """The global optimum is 1-opt: polish must not move it."""
        lut = synthetic_chain_lut(6, 4, seed=3)
        idx = lut.indexed()
        optimum = chain_dp(lut)
        start = np.array(
            [
                lut.candidates[l].index(optimum.best_assignments[l])
                for l in lut.layers
            ],
            dtype=np.int64,
        )
        polished, total = coordinate_descent(idx, start, max_sweeps=5)
        assert total == pytest.approx(optimum.best_ms)
        np.testing.assert_array_equal(polished, start)

    def test_escapes_simple_traps(self):
        """From the greedy (red-path) start, polish reaches the optimum
        of the Fig. 1 trap (flipping l1 to prim0 is a 1-opt move)."""
        lut = trap_lut()
        idx = lut.indexed()
        greedy_start = np.array([0, 1, 0], dtype=np.int64)  # the red path
        _, total = coordinate_descent(idx, greedy_start, max_sweeps=3)
        assert total == pytest.approx(brute_force(lut).best_ms)

    def test_zero_sweeps_is_identity(self):
        lut = synthetic_chain_lut(5, 3, seed=4)
        idx = lut.indexed()
        start = _random_choices(idx, 1)
        polished, total = coordinate_descent(idx, start, max_sweeps=0)
        np.testing.assert_array_equal(polished, start)
        assert total == pytest.approx(idx.total_ms(start))

    def test_negative_sweeps_rejected(self):
        lut = synthetic_chain_lut(3, 2, seed=5)
        idx = lut.indexed()
        with pytest.raises(ValueError):
            coordinate_descent(idx, _random_choices(idx, 0), max_sweeps=-1)

    @given(
        seed=st.integers(min_value=0, max_value=5000),
        start_seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_monotone_improvement(self, seed, start_seed):
        lut = synthetic_chain_lut(8, 4, seed=seed)
        idx = lut.indexed()
        start = _random_choices(idx, start_seed)
        _, after = coordinate_descent(idx, start, max_sweeps=4)
        assert after <= idx.total_ms(start) + 1e-12
        # And never below the global optimum.
        assert after >= chain_dp(lut).best_ms - 1e-9
