"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.analysis.report import claim_checks, full_report, markdown_table2
from repro.analysis.speedup import Table2Row


def _row(network="lenet5", qsdnn_ms=1.0, bsl_ms=1.2, rs_ms=1.5):
    return Table2Row(
        network=network,
        mode="gpgpu",
        vanilla_ms=20.0,
        library_ms={"vanilla": 20.0, "nnpack": bsl_ms, "cudnn": 2.0},
        bsl_library="nnpack",
        bsl_ms=bsl_ms,
        qsdnn_ms=qsdnn_ms,
        rs_ms=rs_ms,
        qsdnn_libraries=["nnpack", "blas"],
        space_log10=8.0,
    )


class TestMarkdownTable2:
    def test_contains_networks_and_columns(self):
        out = markdown_table2([_row()], "Test title")
        assert "## Test title" in out
        assert "lenet5" in out
        assert "QS vs BSL" in out

    def test_pipe_table_structure(self):
        out = markdown_table2([_row()], "T")
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len(lines) == 3  # header, rule, one row
        assert lines[0].count("|") == lines[2].count("|")

    def test_empty_rows(self):
        assert "(no rows)" in markdown_table2([], "T")

    def test_missing_library_dash(self):
        row = _row()
        del row.library_ms["cudnn"]
        other = _row(network="b")
        out = markdown_table2([row, other], "T")
        assert " - " in out


class TestClaimChecks:
    def test_gpgpu_mentions_geomean(self):
        out = claim_checks([_row(), _row(network="x")], "gpgpu")
        assert "mean speedup over best vendor library" in out
        assert "yes" in out

    def test_cpu_mentions_max_vanilla_speedup(self):
        out = claim_checks([_row()], "cpu")
        assert "max speedup over Vanilla" in out

    def test_failing_claim_flagged(self):
        bad = _row(qsdnn_ms=2.0, bsl_ms=1.0)  # QS slower than BSL
        assert "NO" in claim_checks([bad], "gpgpu")


class TestFullReport:
    def test_assembles_both_halves(self):
        report = full_report([_row()], [_row()], "jetson_tx2", seed=0)
        assert report.count("Table II") == 2
        assert "jetson_tx2" in report
        assert "# QS-DNN reproduction report" in report
