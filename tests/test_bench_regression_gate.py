"""The CI bench-regression gate (scripts/check_bench_regression.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_regression", gate)
_spec.loader.exec_module(gate)


def _artifact(path, clocks):
    path.write_text(
        json.dumps(
            {
                "version": "1.0.0",
                "schema_version": 2,
                "platform": "jetson_tx2",
                "search_wall_clock_s": clocks,
            }
        )
    )
    return path


class TestCheck:
    def test_passes_within_threshold(self):
        base = {"lenet5": 0.10, "resnet50": 0.30}
        now = {"lenet5": 0.12, "resnet50": 0.40}
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05) == []

    def test_fails_on_regression(self):
        base = {"lenet5": 0.10, "resnet50": 0.30}
        now = {"lenet5": 0.10, "resnet50": 0.70}
        failures = gate.check(base, now, threshold=1.5, min_seconds=0.05)
        assert len(failures) == 1 and "resnet50" in failures[0]

    def test_noise_floor_skips_tiny_entries(self):
        base = {"lenet5": 0.001}
        now = {"lenet5": 0.004}  # 4x, but both under the floor
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05) == []
        # Above the floor on one side, the ratio counts again.
        now = {"lenet5": 0.2}
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05)

    def test_only_common_networks_compared(self):
        base = {"lenet5": 0.10}
        now = {"vgg19": 9.99}
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05) == []


class TestMain:
    def test_exit_zero_on_identical(self, tmp_path, capsys):
        artifact = _artifact(tmp_path / "a.json", {"lenet5": 0.1, "vgg19": 0.2})
        code = gate.main(
            ["--baseline", str(artifact), "--current", str(artifact)]
        )
        assert code == 0
        assert "passed" in capsys.readouterr().out

    def test_exit_one_on_injected_2x_slowdown(self, tmp_path, capsys):
        base = _artifact(tmp_path / "base.json", {"lenet5": 0.1, "vgg19": 0.2})
        slow = _artifact(tmp_path / "slow.json", {"lenet5": 0.2, "vgg19": 0.4})
        code = gate.main(["--baseline", str(base), "--current", str(slow)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_exit_one_when_nothing_overlaps(self, tmp_path):
        base = _artifact(tmp_path / "base.json", {"lenet5": 0.1})
        now = _artifact(tmp_path / "now.json", {"vgg19": 0.1})
        assert gate.main(["--baseline", str(base), "--current", str(now)]) == 1

    def test_missing_artifact_is_fatal(self, tmp_path):
        artifact = _artifact(tmp_path / "a.json", {"lenet5": 0.1})
        with pytest.raises(SystemExit):
            gate.main(
                ["--baseline", str(tmp_path / "nope.json"), "--current", str(artifact)]
            )

    def test_empty_clocks_fatal(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"search_wall_clock_s": {}}))
        good = _artifact(tmp_path / "good.json", {"lenet5": 0.1})
        with pytest.raises(SystemExit):
            gate.main(["--baseline", str(bad), "--current", str(good)])
