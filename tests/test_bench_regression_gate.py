"""The CI bench-regression gate (scripts/check_bench_regression.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_regression", gate)
_spec.loader.exec_module(gate)


def _artifact(path, clocks, multi_seed=None, mega_batch=None,
              warm_start=None, backend="reference"):
    path.write_text(
        json.dumps(
            {
                "version": "1.0.0",
                "schema_version": 4,
                "platform": "jetson_tx2",
                "kernel": {
                    "backend": backend,
                    "numba_available": backend == "numba",
                    "speedup": {},
                },
                "search_wall_clock_s": clocks,
                "multi_seed": multi_seed or {},
                "mega_batch": mega_batch or {},
                "warm_start": warm_start or {},
            }
        )
    )
    return path


def _ratio_entry(ratio, wall=1.0):
    return {"seeds": 8, "wall_clock_s": wall, "ratio": ratio}


class TestCheck:
    def test_passes_within_threshold(self):
        base = {"lenet5": 0.10, "resnet50": 0.30}
        now = {"lenet5": 0.12, "resnet50": 0.40}
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05) == []

    def test_fails_on_regression(self):
        base = {"lenet5": 0.10, "resnet50": 0.30}
        now = {"lenet5": 0.10, "resnet50": 0.70}
        failures = gate.check(base, now, threshold=1.5, min_seconds=0.05)
        assert len(failures) == 1 and "resnet50" in failures[0]

    def test_noise_floor_skips_tiny_entries(self):
        base = {"lenet5": 0.001}
        now = {"lenet5": 0.004}  # 4x, but both under the floor
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05) == []
        # Above the floor on one side, the ratio counts again.
        now = {"lenet5": 0.2}
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05)

    def test_only_common_networks_compared(self):
        base = {"lenet5": 0.10}
        now = {"vgg19": 9.99}
        assert gate.check(base, now, threshold=1.5, min_seconds=0.05) == []


class TestCheckRatios:
    def test_passes_within_threshold(self):
        base = {"mobilenet_v1": _ratio_entry(3.3)}
        now = {"mobilenet_v1": _ratio_entry(3.9)}
        assert gate.check_ratios(base, now, threshold=1.5, min_seconds=0.05) == []

    def test_fails_on_ratio_regression(self):
        base = {"mobilenet_v1": _ratio_entry(3.3)}
        now = {"mobilenet_v1": _ratio_entry(6.0)}
        failures = gate.check_ratios(base, now, threshold=1.5, min_seconds=0.05)
        assert len(failures) == 1
        assert "multi_seed" in failures[0] and "mobilenet_v1" in failures[0]

    def test_noise_floor_uses_multi_seed_wall_clock(self):
        base = {"mobilenet_v1": _ratio_entry(3.0, wall=0.002)}
        now = {"mobilenet_v1": _ratio_entry(9.0, wall=0.003)}
        assert gate.check_ratios(base, now, threshold=1.5, min_seconds=0.05) == []
        # Above the floor on one side, the growth counts again.
        now = {"mobilenet_v1": _ratio_entry(9.0, wall=0.4)}
        assert gate.check_ratios(base, now, threshold=1.5, min_seconds=0.05)

    def test_schema_v2_artifacts_not_ratio_gated(self, tmp_path):
        legacy = {"search_wall_clock_s": {"lenet5": 0.1}}
        assert gate.multi_seed_of(legacy) == {}
        assert gate.ratio_section_of(legacy, "mega_batch") == {}

    def test_mega_batch_section_labeled(self):
        base = {"mobilenet_v1": _ratio_entry(20.0)}
        now = {"mobilenet_v1": _ratio_entry(38.0)}
        failures = gate.check_ratios(
            base, now, threshold=1.5, min_seconds=0.05, section="mega_batch"
        )
        assert len(failures) == 1 and "mega_batch" in failures[0]


class TestMain:
    def test_exit_zero_on_identical(self, tmp_path, capsys):
        artifact = _artifact(tmp_path / "a.json", {"lenet5": 0.1, "vgg19": 0.2})
        code = gate.main(
            ["--baseline", str(artifact), "--current", str(artifact)]
        )
        assert code == 0
        assert "passed" in capsys.readouterr().out

    def test_exit_one_on_injected_2x_slowdown(self, tmp_path, capsys):
        base = _artifact(tmp_path / "base.json", {"lenet5": 0.1, "vgg19": 0.2})
        slow = _artifact(tmp_path / "slow.json", {"lenet5": 0.2, "vgg19": 0.4})
        code = gate.main(["--baseline", str(base), "--current", str(slow)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_exit_one_on_ratio_regression_alone(self, tmp_path, capsys):
        base = _artifact(
            tmp_path / "base.json",
            {"lenet5": 0.1},
            multi_seed={"resnet50": _ratio_entry(3.2, wall=0.4)},
        )
        slow = _artifact(
            tmp_path / "slow.json",
            {"lenet5": 0.1},
            multi_seed={"resnet50": _ratio_entry(6.5, wall=0.8)},
        )
        code = gate.main(["--baseline", str(base), "--current", str(slow)])
        assert code == 1
        assert "multi_seed" in capsys.readouterr().out

    def test_exit_one_on_mega_batch_regression_alone(self, tmp_path, capsys):
        base = _artifact(
            tmp_path / "base.json",
            {"lenet5": 0.1},
            mega_batch={"mobilenet_v1": _ratio_entry(18.0, wall=2.0)},
        )
        slow = _artifact(
            tmp_path / "slow.json",
            {"lenet5": 0.1},
            mega_batch={"mobilenet_v1": _ratio_entry(39.0, wall=4.5)},
        )
        code = gate.main(["--baseline", str(base), "--current", str(slow)])
        assert code == 1
        assert "mega_batch" in capsys.readouterr().out

    def test_exit_one_on_warm_start_regression_alone(self, tmp_path, capsys):
        """Transfer-quality regressions gate without a noise floor —
        episodes-to-match ratios are deterministic episode counts, so
        even sub-floor wall clocks must not mute the comparison."""
        warm = {"kind": "stored", "wall_clock_s": 0.01}
        base = _artifact(
            tmp_path / "base.json",
            {"lenet5": 0.1},
            warm_start={"tiny_yolo_v2": dict(warm, ratio=0.3)},
        )
        slow = _artifact(
            tmp_path / "slow.json",
            {"lenet5": 0.1},
            warm_start={"tiny_yolo_v2": dict(warm, ratio=0.5)},
        )
        code = gate.main(["--baseline", str(base), "--current", str(slow)])
        assert code == 1
        assert "warm_start" in capsys.readouterr().out

    def test_warm_start_growth_within_threshold_passes(self, tmp_path):
        warm = {"kind": "stored", "wall_clock_s": 0.01}
        base = _artifact(
            tmp_path / "base.json",
            {"lenet5": 0.1},
            warm_start={"tiny_yolo_v2": dict(warm, ratio=0.40)},
        )
        now = _artifact(
            tmp_path / "now.json",
            {"lenet5": 0.1},
            warm_start={"tiny_yolo_v2": dict(warm, ratio=0.50)},
        )
        assert gate.main(
            ["--baseline", str(base), "--current", str(now)]
        ) == 0

    def test_exit_one_when_nothing_overlaps(self, tmp_path):
        base = _artifact(tmp_path / "base.json", {"lenet5": 0.1})
        now = _artifact(tmp_path / "now.json", {"vgg19": 0.1})
        assert gate.main(["--baseline", str(base), "--current", str(now)]) == 1

    def test_backend_mismatch_skips_gate(self, tmp_path, capsys):
        """numba clocks vs a reference baseline are not comparable —
        the gate must skip (not pass vacuously, not fail spuriously)."""
        base = _artifact(tmp_path / "base.json", {"lenet5": 0.15})
        fast = _artifact(
            tmp_path / "fast.json", {"lenet5": 0.9}, backend="numba"
        )
        code = gate.main(["--baseline", str(base), "--current", str(fast)])
        assert code == 0
        assert "not comparable" in capsys.readouterr().out

    def test_legacy_schema_counts_as_reference_backend(self, tmp_path):
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"search_wall_clock_s": {"lenet5": 0.1}}))
        current = _artifact(tmp_path / "cur.json", {"lenet5": 0.1})
        assert gate.main(["--baseline", str(legacy), "--current", str(current)]) == 0

    def test_missing_baseline_fails_with_marching_orders(self, tmp_path, capsys):
        """A missing baseline must not pass silently — and the failure
        must tell the operator exactly how to regenerate the file."""
        artifact = _artifact(tmp_path / "a.json", {"lenet5": 0.1})
        code = gate.main(
            ["--baseline", str(tmp_path / "nope.json"), "--current", str(artifact)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "bench_search_runtime.py" in out  # the regeneration command
        assert "commit" in out

    def test_missing_current_fails_with_marching_orders(self, tmp_path, capsys):
        artifact = _artifact(tmp_path / "a.json", {"lenet5": 0.1})
        code = gate.main(
            ["--baseline", str(artifact), "--current", str(tmp_path / "nope.json")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "-k summary" in out

    def test_unreadable_artifact_is_fatal(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = _artifact(tmp_path / "good.json", {"lenet5": 0.1})
        with pytest.raises(SystemExit):
            gate.main(["--baseline", str(bad), "--current", str(good)])

    def test_empty_clocks_fatal(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"search_wall_clock_s": {}}))
        good = _artifact(tmp_path / "good.json", {"lenet5": 0.1})
        with pytest.raises(SystemExit):
            gate.main(["--baseline", str(bad), "--current", str(good)])


def _service_artifact(path, jobs_per_s, fleet_speedup=5.0):
    """A minimal service-throughput artifact (mode -> jobs/s)."""
    path.write_text(
        json.dumps(
            {
                "version": "1.0.0",
                "schema_version": 1,
                "kind": "service_throughput",
                "jobs": 60,
                "modes": {
                    name: {"jobs_per_s": value}
                    for name, value in jobs_per_s.items()
                },
                "speedup": {"fleet": fleet_speedup},
            }
        )
    )
    return path


_SERVICE_RATES = {"local": 240.0, "fleet_legacy": 80.0, "fleet_batched": 450.0}


class TestCheckService:
    def test_passes_within_threshold(self):
        failures = gate.check_service(
            {"local": 100.0}, {"local": 60.0}, threshold=2.0
        )
        assert failures == []

    def test_fails_on_throughput_drop(self):
        failures = gate.check_service(
            {"fleet_batched": 450.0}, {"fleet_batched": 100.0}, threshold=2.0
        )
        assert len(failures) == 1
        assert "fleet_batched" in failures[0]

    def test_speedups_never_fail(self):
        # jobs/s going UP is not a regression, whatever the factor.
        assert (
            gate.check_service({"local": 10.0}, {"local": 99.0}, threshold=1.1)
            == []
        )

    def test_only_common_modes_compared(self):
        failures = gate.check_service(
            {"gone_mode": 100.0}, {"new_mode": 1.0}, threshold=2.0
        )
        assert failures == []


class TestServiceMain:
    def test_exit_zero_on_identical(self, tmp_path, capsys):
        base = _service_artifact(tmp_path / "b.json", _SERVICE_RATES)
        cur = _service_artifact(tmp_path / "c.json", _SERVICE_RATES)
        code = gate.main(
            ["--baseline", str(base), "--current", str(cur)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet speedup" in out
        assert "passed" in out

    def test_exit_one_on_mode_slowdown(self, tmp_path, capsys):
        base = _service_artifact(tmp_path / "b.json", _SERVICE_RATES)
        slowed = dict(_SERVICE_RATES, fleet_batched=100.0)
        cur = _service_artifact(tmp_path / "c.json", slowed)
        code = gate.main(
            ["--baseline", str(base), "--current", str(cur), "--threshold", "2.0"]
        )
        assert code == 1
        assert "fleet_batched" in capsys.readouterr().out

    def test_exit_one_when_speedup_floor_broken(self, tmp_path, capsys):
        base = _service_artifact(tmp_path / "b.json", _SERVICE_RATES)
        cur = _service_artifact(
            tmp_path / "c.json", _SERVICE_RATES, fleet_speedup=1.4
        )
        code = gate.main(
            [
                "--baseline", str(base),
                "--current", str(cur),
                "--min-speedup", "2.5",
            ]
        )
        assert code == 1
        assert "below the 2.5x floor" in capsys.readouterr().out

    def test_exit_one_on_kind_mismatch(self, tmp_path, capsys):
        base = _artifact(tmp_path / "b.json", {"fig1_toy": 1.0})
        cur = _service_artifact(tmp_path / "c.json", _SERVICE_RATES)
        code = gate.main(["--baseline", str(base), "--current", str(cur)])
        assert code == 1
        assert "different" in capsys.readouterr().out

    def test_search_artifacts_keep_the_old_path(self, tmp_path, capsys):
        base = _artifact(tmp_path / "b.json", {"fig1_toy": 1.0})
        cur = _artifact(tmp_path / "c.json", {"fig1_toy": 1.0})
        code = gate.main(["--baseline", str(base), "--current", str(cur)])
        assert code == 0
        assert "service" not in capsys.readouterr().out.lower()
