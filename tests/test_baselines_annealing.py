"""Tests for the simulated-annealing baseline."""

from __future__ import annotations

import pytest

from repro.baselines import chain_dp, random_search, simulated_annealing
from repro.errors import ConfigError

from tests.helpers import synthetic_chain_lut, trap_lut


class TestSimulatedAnnealing:
    def test_deterministic_per_seed(self):
        lut = synthetic_chain_lut(8, 4, seed=1)
        a = simulated_annealing(lut, episodes=100, seed=3)
        b = simulated_annealing(lut, episodes=100, seed=3)
        assert a.best_ms == b.best_ms
        assert a.best_assignments == b.best_assignments

    def test_best_matches_assignments(self):
        lut = synthetic_chain_lut(8, 4, seed=2)
        result = simulated_annealing(lut, episodes=150, seed=0)
        assert lut.schedule_time(result.best_assignments) == pytest.approx(
            result.best_ms
        )

    def test_beats_random_search_at_equal_budget(self):
        """Local moves + cooling should dominate blind sampling."""
        wins = 0
        for seed in range(5):
            lut = synthetic_chain_lut(15, 6, seed=50 + seed)
            sa = simulated_annealing(lut, episodes=300, seed=seed)
            rs = random_search(lut, episodes=300, seed=seed)
            if sa.best_ms <= rs.best_ms:
                wins += 1
        assert wins >= 4

    def test_never_beats_exact_optimum(self):
        for seed in range(5):
            lut = synthetic_chain_lut(10, 4, seed=seed)
            sa = simulated_annealing(lut, episodes=200, seed=seed)
            assert sa.best_ms >= chain_dp(lut).best_ms - 1e-9

    def test_near_optimal_on_trap(self):
        result = simulated_annealing(trap_lut(), episodes=300, seed=0)
        assert result.best_ms == pytest.approx(10.0)

    def test_curve_length(self):
        lut = synthetic_chain_lut(5, 3, seed=4)
        result = simulated_annealing(lut, episodes=40, seed=0)
        assert len(result.curve_ms) == 40

    def test_bad_episodes_rejected(self):
        with pytest.raises(ConfigError):
            simulated_annealing(synthetic_chain_lut(3, 2), episodes=0)

    def test_incremental_objective_is_exact(self):
        """The drift guard: reported best equals a fresh evaluation."""
        lut = synthetic_chain_lut(12, 5, seed=5)
        result = simulated_annealing(lut, episodes=250, seed=1)
        idx = lut.indexed()
        import numpy as np

        choices = np.array(
            [
                lut.candidates[l].index(result.best_assignments[l])
                for l in lut.layers
            ],
            dtype=np.int64,
        )
        assert idx.total_ms(choices) == pytest.approx(result.best_ms)

    def test_works_on_real_branchy_network(self, squeezenet_lut_gpgpu):
        result = simulated_annealing(squeezenet_lut_gpgpu, episodes=200, seed=0)
        assert result.best_ms > 0
        assert set(result.best_assignments) == set(squeezenet_lut_gpgpu.layers)
